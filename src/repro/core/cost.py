"""Rent-or-not advisor (paper Section V-D).

Given a trained cross-architecture predictor, decide -- without touching
any cloud GPU -- which GPU is fastest for a stencil instance and which is
the most cost-efficient to rent, then score those decisions against the
measured ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..gpu.specs import RENTAL_GPUS, get_gpu
from .framework import StencilMART
from .prediction import CrossGPUInstance


@dataclass
class CaseStudyResult:
    """Per-GPU ground-truth shares and prediction accuracies (Fig. 14/15)."""

    gpus: tuple[str, ...]
    shares: dict[str, float]  # fraction of instances each GPU truly wins
    accuracies: dict[str, float]  # prediction accuracy among those instances
    overall_accuracy: float


class RentalAdvisor:
    """Wraps a fitted :class:`StencilMART` time predictor for GPU choice."""

    def __init__(self, mart: StencilMART, method: str = "mlp"):
        self.mart = mart
        self.method = method

    # ------------------------------------------------------------------
    def predicted_times(
        self, inst: CrossGPUInstance, gpus: "tuple[str, ...]"
    ) -> dict[str, float]:
        """Model-predicted time of the instance on each GPU."""
        return {
            g: self.mart.predict_time(
                inst.stencil, inst.oc, inst.setting, g, method=self.method
            )
            for g in gpus
        }

    def recommend_fastest(
        self, inst: CrossGPUInstance, gpus: "tuple[str, ...]"
    ) -> str:
        """GPU predicted to execute the instance fastest."""
        times = self.predicted_times(inst, gpus)
        return min(times, key=lambda g: (times[g], g))

    def recommend_cheapest(
        self, inst: CrossGPUInstance, gpus: "tuple[str, ...]" = RENTAL_GPUS
    ) -> str:
        """Rental GPU with the lowest predicted time x price."""
        times = self.predicted_times(inst, gpus)
        costs = {
            g: t * get_gpu(g).rental_per_hour
            for g, t in times.items()
            if get_gpu(g).rental_per_hour is not None
        }
        if not costs:
            raise DatasetError("no rentable GPU among candidates")
        return min(costs, key=lambda g: (costs[g], g))

    # ------------------------------------------------------------------
    def evaluate(
        self,
        instances: "list[CrossGPUInstance]",
        gpus: "tuple[str, ...]",
        by_cost: bool = False,
    ) -> CaseStudyResult:
        """Score GPU recommendations against ground truth (Fig. 14/15).

        ``shares[g]`` is the fraction of instances *g* truly wins;
        ``accuracies[g]`` is the prediction accuracy restricted to those
        instances (the number printed above each bar in the figures).
        """
        gpus = tuple(gpus)
        truth: list[str] = []
        pred: list[str] = []
        for inst in instances:
            if by_cost:
                truth.append(inst.best_gpu_by_cost())
                pred.append(self.recommend_cheapest(inst, gpus))
            else:
                truth.append(inst.best_gpu())
                pred.append(self.recommend_fastest(inst, gpus))
        truth_a, pred_a = np.array(truth), np.array(pred)
        shares: dict[str, float] = {}
        accuracies: dict[str, float] = {}
        for g in gpus:
            mask = truth_a == g
            shares[g] = float(mask.mean())
            accuracies[g] = (
                float((pred_a[mask] == g).mean()) if mask.any() else float("nan")
            )
        overall = float((truth_a == pred_a).mean())
        return CaseStudyResult(
            gpus=gpus, shares=shares, accuracies=accuracies, overall_accuracy=overall
        )
