"""The StencilMART facade (paper Fig. 5).

One object wires the full pipeline together:

1. random stencil generation (Algorithm 1),
2. multi-GPU profiling of every OC under random parameter search,
3. PCC-based OC merging into prediction classes,
4. classifier training / cross-validation for best-OC selection (Fig. 9),
5. regressor training / cross-validation for cross-architecture execution
   time prediction (Fig. 12),
6. end-to-end tuning that applies the predicted OC (Figs. 10-11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_SEED, MAX_ORDER, N_MERGED_CLASSES
from ..errors import DatasetError, ModelError, NotFittedError
from ..gpu.noise import DEFAULT_SIGMA
from ..gpu.simulator import GPUSimulator
from ..gpu.specs import GPU_ORDER
from ..ml import (
    ConvMLPRegressor,
    ConvNetClassifier,
    FcNetClassifier,
    GBDTClassifier,
    GBRegressor,
    LogTimeTransform,
    MLPRegressor,
    accuracy,
    mape,
)
from ..optimizations.combos import OC, OC_BY_NAME
from ..optimizations.params import ParamSetting
from ..profiling import (
    ClassificationDataset,
    OCGrouping,
    RandomSearch,
    RegressionDataset,
    build_classification_dataset,
    build_regression_dataset,
    cross_validate,
    kfold_indices,
    merge_ocs,
    run_campaign,
    stratified_kfold_indices,
)
from ..profiling.dataset import oc_flags
from ..gpu.specs import hardware_features
from ..stencil.features import extract_features
from ..stencil.generator import generate_population
from ..stencil.stencil import Stencil
from ..stencil.tensorize import assign_tensor

#: Classifier registry: name -> factory(n_classes, seed, **hyper).
CLASSIFIERS = ("gbdt", "convnet", "fcnet")

#: Regressor registry.  ``hybrid`` is a GBDT regressor over the standard
#: features augmented with static analytical-perfmodel columns.
REGRESSORS = ("gbr", "mlp", "convmlp", "hybrid")


def make_classifier(method: str, n_classes: int, seed: int, **hyper):
    """Construct a selection classifier by name.

    Module-level (not a :class:`StencilMART` method) so cross-validation
    fold workers in other processes build models through the same code
    path.  ``workers`` in *hyper* reaches only models that parallelize
    internally (currently GBDT); it is dropped for the rest.
    """
    method = method.lower()
    seed = hyper.pop("seed", seed)
    if method == "gbdt":
        defaults = dict(
            n_rounds=60, learning_rate=0.15, max_depth=3, subsample=0.8
        )
        defaults.update(hyper)
        return GBDTClassifier(seed=seed, **defaults)
    hyper.pop("workers", None)
    hyper.pop("pool_context", None)
    if method == "convnet":
        return ConvNetClassifier(n_classes=n_classes, seed=seed, **hyper)
    if method == "fcnet":
        return FcNetClassifier(n_classes=n_classes, seed=seed, **hyper)
    raise ModelError(f"unknown classifier {method!r}; known: {CLASSIFIERS}")


def make_regressor(method: str, seed: int, **hyper):
    """Construct a time-prediction regressor by name (see
    :func:`make_classifier` for why this is module-level)."""
    method = method.lower()
    seed = hyper.pop("seed", seed)
    hyper.pop("workers", None)
    hyper.pop("pool_context", None)
    if method in ("gbr", "hybrid"):
        defaults = dict(n_rounds=80, learning_rate=0.15, max_depth=5)
        defaults.update(hyper)
        return GBRegressor(seed=seed, **defaults)
    if method == "mlp":
        return MLPRegressor(seed=seed, **hyper)
    if method == "convmlp":
        return ConvMLPRegressor(seed=seed, **hyper)
    raise ModelError(f"unknown regressor {method!r}; known: {REGRESSORS}")


def _selector_fold(data: dict, train: np.ndarray, test: np.ndarray) -> float:
    """One stratified-CV fold of a selection classifier (picklable)."""
    model = make_classifier(
        data["method"], data["n_classes"], data["seed"], **dict(data["hyper"])
    )
    X, labels = data["X"], data["labels"]
    model.fit(X[train], labels[train])
    return accuracy(labels[test], model.predict(X[test]))


def _predictor_fold(data: dict, train: np.ndarray, test: np.ndarray) -> float:
    """One k-fold CV fold of a time predictor (picklable)."""
    method = data["method"]
    model = make_regressor(method, data["seed"], **dict(data["hyper"]))
    if method == "convmlp":
        model.fit(
            data["tensors"][train], data["aux"][train], data["times"][train]
        )
        pred = model.predict(data["tensors"][test], data["aux"][test])
    elif method in ("gbr", "hybrid"):
        # Hybrid rows arrive pre-augmented with analytical columns.
        model.fit(
            data["features"][train],
            LogTimeTransform.forward(data["times"][train]),
        )
        pred = LogTimeTransform.inverse(model.predict(data["features"][test]))
    else:
        model.fit(data["features"][train], data["times"][train])
        pred = model.predict(data["features"][test])
    return mape(data["times"][test], pred)


@dataclass
class SelectorResult:
    """Cross-validation outcome for one classification mechanism."""

    method: str
    gpu: str
    fold_accuracies: list[float]

    @property
    def accuracy(self) -> float:
        return float(np.mean(self.fold_accuracies))


@dataclass
class PredictorResult:
    """Cross-validation outcome for one regression mechanism."""

    method: str
    gpu: str
    fold_mapes: list[float]

    @property
    def mape(self) -> float:
        return float(np.mean(self.fold_mapes))


class StencilMART:
    """Automatic optimization selection and performance prediction.

    Parameters
    ----------
    ndim:
        Stencil dimensionality for this instance (the paper trains 2-D and
        3-D models separately).
    gpus:
        GPUs profiled into the dataset.
    n_settings:
        Random parameter settings per OC during profiling.
    n_classes:
        Merged OC classes (paper: 5).
    sigma:
        Measurement-noise level of the simulated profiler.
    seed:
        Master seed; every downstream stream derives from it.
    """

    def __init__(
        self,
        ndim: int,
        gpus: "tuple[str, ...] | list[str]" = GPU_ORDER,
        n_settings: int = 8,
        n_classes: int = N_MERGED_CLASSES,
        max_order: int = MAX_ORDER,
        sigma: float = DEFAULT_SIGMA,
        seed: int = DEFAULT_SEED,
    ):
        self.ndim = int(ndim)
        self.gpus = tuple(gpus)
        self.n_settings = int(n_settings)
        self.n_classes = int(n_classes)
        self.max_order = int(max_order)
        self.sigma = float(sigma)
        self.seed = int(seed)
        self.campaign = None
        self.grouping: OCGrouping | None = None
        self._selectors: dict[tuple[str, str], object] = {}
        self._selector_reps: dict[tuple[str, str], list[str]] = {}
        self._predictors: dict[str, object] = {}

    # ------------------------------------------------------------------
    # dataset construction
    # ------------------------------------------------------------------
    def build_dataset(
        self,
        n_stencils: int = 100,
        stencils: "list[Stencil] | None" = None,
    ) -> "StencilMART":
        """Generate (or accept) a stencil population and profile it."""
        if stencils is None:
            stencils = generate_population(
                self.ndim, n_stencils, max_order=self.max_order, seed=self.seed
            )
        self.campaign = run_campaign(
            stencils,
            gpus=self.gpus,
            n_settings=self.n_settings,
            seed=self.seed,
            sigma=self.sigma,
        )
        self.grouping = merge_ocs(self.campaign, n_classes=self.n_classes)
        return self

    def _require_dataset(self):
        if self.campaign is None or self.grouping is None:
            raise NotFittedError("call build_dataset() first")

    def classification_dataset(self, gpu: str) -> ClassificationDataset:
        """The per-GPU OC-selection dataset."""
        self._require_dataset()
        return build_classification_dataset(
            self.campaign, self.grouping, gpu, self.max_order
        )

    def regression_dataset(
        self, gpus: "tuple[str, ...] | None" = None
    ) -> RegressionDataset:
        """The (optionally multi-GPU) performance-prediction dataset."""
        self._require_dataset()
        return build_regression_dataset(self.campaign, gpus, self.max_order)

    # ------------------------------------------------------------------
    # classification: OC selection
    # ------------------------------------------------------------------
    def _make_classifier(self, method: str, **hyper):
        return make_classifier(method, self.n_classes, self.seed, **hyper)

    @staticmethod
    def _classifier_inputs(ds: ClassificationDataset, method: str) -> np.ndarray:
        return ds.features if method == "gbdt" else ds.tensors

    def fit_selector(self, method: str, gpu: str, **hyper) -> "StencilMART":
        """Train an OC-selection model on the full per-GPU dataset."""
        ds = self.classification_dataset(gpu)
        model = self._make_classifier(method, **hyper)
        model.fit(self._classifier_inputs(ds, method), ds.labels)
        self._selectors[(method, gpu)] = model
        return self

    def install_selector(
        self,
        method: str,
        gpu: str,
        model,
        representatives: "list[str] | None" = None,
    ) -> "StencilMART":
        """Adopt a pre-trained selection model (e.g. a serve artifact).

        *representatives* carries the merged-class decoding recorded at
        training time, so an installed model predicts without this
        instance ever profiling a campaign of its own.
        """
        self._selectors[(method, gpu)] = model
        if representatives is not None:
            self._selector_reps[(method, gpu)] = list(representatives)
        return self

    def install_predictor(self, method: str, model) -> "StencilMART":
        """Adopt a pre-trained time predictor (see :meth:`install_selector`)."""
        self._predictors[method] = model
        return self

    def predict_best_oc(self, stencil: Stencil, gpu: str, method: str = "gbdt") -> OC:
        """Predicted best OC (the representative of the predicted class)."""
        model = self._selectors.get((method, gpu))
        if model is None:
            raise NotFittedError(f"fit_selector({method!r}, {gpu!r}) first")
        if method == "gbdt":
            x = extract_features(stencil, self.max_order)[None, :]
        else:
            x = assign_tensor(stencil, self.max_order)[None, ...]
        cls = int(model.predict(x)[0])
        reps = self._selector_reps.get((method, gpu))
        if reps is None:
            if self.grouping is None:
                raise NotFittedError(
                    "no class representatives: build_dataset() or "
                    "install_selector(..., representatives=...) first"
                )
            reps = self.grouping.representatives
        return OC_BY_NAME[reps[cls]]

    def evaluate_selector(
        self,
        method: str,
        gpu: str,
        n_folds: int = 5,
        workers: int = 1,
        pool_context: str = "spawn",
        **hyper,
    ) -> SelectorResult:
        """Stratified k-fold accuracy of one mechanism on one GPU (Fig. 9).

        ``workers > 1`` fits the folds concurrently on a process pool;
        every fold's model is independently seeded, so the result is
        identical for any worker count.
        """
        ds = self.classification_dataset(gpu)
        data = {
            "method": method,
            "X": self._classifier_inputs(ds, method),
            "labels": ds.labels,
            "n_classes": self.n_classes,
            "seed": self.seed,
            "hyper": dict(hyper),
        }
        accs = cross_validate(
            _selector_fold,
            data,
            stratified_kfold_indices(ds.labels, n_folds, self.seed),
            workers=workers,
            context=pool_context,
        )
        return SelectorResult(method=method, gpu=gpu, fold_accuracies=accs)

    # ------------------------------------------------------------------
    # end-to-end tuning (Figs. 10-11)
    # ------------------------------------------------------------------
    def tune(
        self,
        stencil: Stencil,
        gpu: str,
        method: str = "gbdt",
        strategy: str = "random",
        budget: "float | None" = None,
        **strategy_options,
    ) -> tuple[OC, ParamSetting, float]:
        """Tune *stencil* on *gpu* using the predicted OC only.

        Runs the same search budget the baselines get, but spends it
        entirely on the OC the classifier selected.  Falls back to the
        next most likely class if the predicted OC cannot run at all.

        ``strategy`` picks a member of the tuning zoo (see
        :func:`repro.tuning.available_strategies`), with ``budget`` and
        ``**strategy_options`` forwarded to :func:`repro.tuning.tune`.
        The default (``"random"`` with no options) is the paper's tuner
        and reproduces the pre-front-door results bit for bit.
        """
        oc = self.predict_best_oc(stencil, gpu, method)
        if strategy == "random" and budget is None and not strategy_options:
            # The paper's path, via the legacy-pinned wrapper.
            search = RandomSearch(
                GPUSimulator(gpu, sigma=self.sigma), self.n_settings, self.seed
            )

            def run_oc(oc: OC):
                result, _ = search.tune_oc(stencil, -1, oc)
                return result

        else:
            from .. import tuning

            def run_oc(oc: OC):
                result = tuning.tune(
                    stencil,
                    oc=oc,
                    gpu=gpu,
                    sigma=self.sigma,
                    strategy=strategy,
                    budget=budget if budget is not None else self.n_settings,
                    seed=self.seed,
                    **strategy_options,
                )
                return result if result.ok else None

        result = run_oc(oc)
        if result is None:
            reps = self._selector_reps.get((method, gpu))
            if reps is None:
                self._require_dataset()
                reps = self.grouping.representatives
            for rep in reps:
                result = run_oc(OC_BY_NAME[rep])
                if result is not None:
                    oc = OC_BY_NAME[rep]
                    break
        if result is None:
            raise DatasetError(f"no runnable OC for stencil on {gpu}")
        return oc, result.best_setting, result.best_time_ms

    # ------------------------------------------------------------------
    # regression: cross-architecture performance prediction
    # ------------------------------------------------------------------
    def _make_regressor(self, method: str, **hyper):
        return make_regressor(method, self.seed, **hyper)

    def fit_predictor(
        self,
        method: str,
        gpus: "tuple[str, ...] | None" = None,
        max_rows: int | None = None,
        **hyper,
    ) -> "StencilMART":
        """Train a time predictor on measurements from *gpus* (default all).

        ``max_rows`` subsamples the instance set (deterministically) to
        bound CPU-only training time at large scales.
        """
        ds = self.regression_dataset(gpus)
        rows = self._row_subset(ds.n_samples, max_rows)
        model = self._make_regressor(method, **hyper)
        if method == "convmlp":
            model.fit(ds.tensors[rows], ds.aux[rows], ds.times_ms[rows])
        elif method == "hybrid":
            X = self._hybrid_features(ds)
            model.fit(X[rows], LogTimeTransform.forward(ds.times_ms[rows]))
        elif method == "gbr":
            model.fit(
                ds.features[rows], LogTimeTransform.forward(ds.times_ms[rows])
            )
        else:
            model.fit(ds.features[rows], ds.times_ms[rows])
        self._predictors[method] = model
        return self

    def _hybrid_features(self, ds: RegressionDataset) -> np.ndarray:
        """Standard regression features + per-row analytical columns."""
        from ..ml.preprocess import augment_features
        from ..profiling.dataset import analytical_feature_matrix

        return augment_features(ds.features, analytical_feature_matrix(self.campaign, ds))

    def _row_subset(self, n: int, max_rows: int | None) -> np.ndarray:
        if max_rows is None or n <= max_rows:
            return np.arange(n)
        rng = np.random.default_rng(self.seed)
        return np.sort(rng.choice(n, size=max_rows, replace=False))

    def predict_time(
        self,
        stencil: Stencil,
        oc: "OC | str",
        setting: ParamSetting,
        gpu: str,
        method: str = "mlp",
    ) -> float:
        """Predicted execution time (ms) without touching the target GPU."""
        model = self._predictors.get(method)
        if model is None:
            raise NotFittedError(f"fit_predictor({method!r}) first")
        oc_name = oc if isinstance(oc, str) else oc.name
        feats = extract_features(stencil, self.max_order)
        aux = np.concatenate(
            [oc_flags(oc_name), setting.encode(), np.array(hardware_features(gpu))]
        )
        if method == "convmlp":
            tensor = assign_tensor(stencil, self.max_order)[None, ...]
            return float(model.predict(tensor, aux[None, :])[0])
        x = np.concatenate([feats, aux])
        if method == "hybrid":
            from ..analysis.perfmodel import analytical_features
            from ..optimizations.combos import OC_BY_NAME

            oc_obj = OC_BY_NAME[oc_name] if isinstance(oc, str) else oc
            x = np.concatenate([x, analytical_features(stencil, oc_obj, setting, gpu)])
        x = x[None, :]
        if method in ("gbr", "hybrid"):
            return float(LogTimeTransform.inverse(model.predict(x))[0])
        return float(model.predict(x)[0])

    def evaluate_predictor(
        self,
        method: str,
        gpu: str,
        n_folds: int = 5,
        max_rows: int | None = 6000,
        workers: int = 1,
        pool_context: str = "spawn",
        **hyper,
    ) -> PredictorResult:
        """K-fold MAPE of one regression mechanism on one GPU (Fig. 12).

        ``workers > 1`` runs the folds on a process pool; results are
        identical for any worker count (fold fits are independent).
        """
        ds = self.regression_dataset((gpu,))
        rows = self._row_subset(ds.n_samples, max_rows)
        data = {
            "method": method,
            "features": self._hybrid_features(ds) if method == "hybrid" else ds.features,
            "tensors": ds.tensors if method == "convmlp" else None,
            "aux": ds.aux if method == "convmlp" else None,
            "times": ds.times_ms,
            "seed": self.seed,
            "hyper": dict(hyper),
        }
        folds = [
            (rows[tr_i], rows[te_i])
            for tr_i, te_i in kfold_indices(rows.shape[0], n_folds, self.seed)
        ]
        mapes = cross_validate(
            _predictor_fold, data, folds,
            workers=workers, context=pool_context,
        )
        return PredictorResult(method=method, gpu=gpu, fold_mapes=mapes)
