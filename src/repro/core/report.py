"""Human-readable reports over campaigns, groupings and selections.

These are the strings the CLI and examples print; keeping them in the
library (rather than scattered format strings) makes them testable and
uniform.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..profiling.merge import OCGrouping, oc_win_counts
from ..profiling.profiler import ProfileCampaign


def campaign_summary(campaign: ProfileCampaign) -> str:
    """Multi-line overview of a profiling campaign."""
    lines = [
        f"profiling campaign: {len(campaign.stencils)} {campaign.ndim}-D stencils, "
        f"{len(campaign.ocs)} OCs, GPUs: {', '.join(campaign.gpus)}",
    ]
    for gpu in campaign.gpus:
        n_meas = len(campaign.measurements(gpu))
        # Quarantined / all-crashing stencils have no best OC; count them
        # explicitly rather than letting best_oc raise mid-report.
        valid = [p for p in campaign.gpu_profiles(gpu) if p.oc_results]
        n_crashed = len(campaign.gpu_profiles(gpu)) - len(valid)
        if not valid:
            lines.append(f"  {gpu}: {n_meas} measurements; all "
                         f"{n_crashed} stencils crashed")
            continue
        best = Counter(p.best_oc for p in valid)
        top, top_n = best.most_common(1)[0]
        times = [p.best_time_ms for p in valid]
        crashed_note = f"; {n_crashed} crashed" if n_crashed else ""
        lines.append(
            f"  {gpu}: {n_meas} measurements; best-OC mode {top} "
            f"({top_n}/{len(times)}); median best time "
            f"{float(np.median(times)):.3f} ms{crashed_note}"
        )
    return "\n".join(lines)


def grouping_summary(grouping: OCGrouping) -> str:
    """One line per merged class: representative and members."""
    lines = [f"{grouping.n_classes} merged OC classes:"]
    for c, (rep, members) in enumerate(
        zip(grouping.representatives, grouping.groups)
    ):
        others = [m for m in members if m != rep]
        suffix = f" (+ {len(others)} merged: {', '.join(others[:4])}" + (
            ", ...)" if len(others) > 4 else ")"
        ) if others else ""
        lines.append(f"  class {c}: {rep}{suffix}")
    return "\n".join(lines)


def win_table(campaign: ProfileCampaign) -> str:
    """Fig. 2-style win counts, one line per OC that ever wins."""
    wins = oc_win_counts(campaign)
    lines = ["best-OC win counts across (stencil, GPU) cases:"]
    for name, count in sorted(wins.items(), key=lambda kv: (-kv[1], kv[0])):
        if count:
            lines.append(f"  {name}: {count}")
    return "\n".join(lines)


def gap_report(campaign: ProfileCampaign, gpu: str) -> str:
    """Fig. 1-style per-stencil best/worst gap summary for one GPU."""
    gaps = []
    for p in campaign.profiles[gpu]:
        times = [r.best_time_ms for r in p.oc_results.values()]
        gaps.append(max(times) / min(times))
    return (
        f"{gpu}: best/worst OC gap over {len(gaps)} stencils -- "
        f"mean {float(np.mean(gaps)):.2f}x, median {float(np.median(gaps)):.2f}x, "
        f"max {float(np.max(gaps)):.2f}x"
    )
