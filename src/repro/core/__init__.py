"""The StencilMART framework: selection, prediction and GPU choice."""

from .cost import CaseStudyResult, RentalAdvisor
from .report import campaign_summary, gap_report, grouping_summary, win_table
from .framework import (
    CLASSIFIERS,
    REGRESSORS,
    PredictorResult,
    SelectorResult,
    StencilMART,
)
from .prediction import (
    CrossGPUInstance,
    build_cross_gpu_instances,
    ground_truth_shares,
)

__all__ = [
    "CLASSIFIERS",
    "CaseStudyResult",
    "CrossGPUInstance",
    "PredictorResult",
    "REGRESSORS",
    "RentalAdvisor",
    "SelectorResult",
    "StencilMART",
    "campaign_summary",
    "gap_report",
    "grouping_summary",
    "win_table",
    "build_cross_gpu_instances",
    "ground_truth_shares",
]
