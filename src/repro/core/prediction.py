"""Cross-architecture instance evaluation for the case study (Figs. 14-15).

A *stencil instance* is one (stencil, OC, parameter setting).  The case
study asks: measured on every GPU, which is fastest (pure performance) or
cheapest per unit of work (cost efficiency) -- and does the regression
model, fed only hardware features, point at the same GPU?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError, KernelLaunchError
from ..gpu.noise import DEFAULT_SIGMA
from ..gpu.simulator import GPUSimulator
from ..gpu.specs import get_gpu
from ..optimizations.combos import ALL_OCS, OC
from ..optimizations.params import ParamSetting, sample_setting
from ..stencil.stencil import Stencil


@dataclass(frozen=True)
class CrossGPUInstance:
    """One (stencil, OC, setting) measured on every GPU."""

    stencil_id: int
    stencil: Stencil
    oc: str
    setting: ParamSetting
    times_ms: dict[str, float]  # gpu -> measured time

    def best_gpu(self) -> str:
        """GPU with the shortest measured time."""
        return min(self.times_ms, key=lambda g: (self.times_ms[g], g))

    def best_gpu_by_cost(self) -> str:
        """Rental GPU with the lowest time x price product.

        GPUs without a rental price (the desktop 2080Ti) are excluded,
        matching the paper's Fig. 15.
        """
        priced = {
            g: t * get_gpu(g).rental_per_hour
            for g, t in self.times_ms.items()
            if get_gpu(g).rental_per_hour is not None
        }
        if not priced:
            raise DatasetError("no rentable GPU in instance")
        return min(priced, key=lambda g: (priced[g], g))


def build_cross_gpu_instances(
    stencils: "list[Stencil]",
    gpus: "tuple[str, ...] | list[str]",
    n_per_stencil: int = 6,
    seed: int = 0,
    sigma: float = DEFAULT_SIGMA,
    ocs: "tuple[OC, ...]" = ALL_OCS,
) -> list[CrossGPUInstance]:
    """Sample instances and measure each on every GPU.

    An instance is kept only when it runs on *all* GPUs so the ground
    truth is well defined.  Sampling is deterministic per stencil.
    """
    sims = {g: GPUSimulator(g, sigma=sigma) for g in gpus}
    out: list[CrossGPUInstance] = []
    for sid, stencil in enumerate(stencils):
        rng = np.random.default_rng(np.random.SeedSequence((seed, sid)))
        kept = 0
        attempts = 0
        while kept < n_per_stencil and attempts < n_per_stencil * 10:
            attempts += 1
            oc = ocs[rng.integers(len(ocs))]
            setting = sample_setting(oc, stencil.ndim, rng)
            times: dict[str, float] = {}
            try:
                for g, sim in sims.items():
                    times[g] = sim.time(stencil, oc, setting)
            except KernelLaunchError:
                continue
            out.append(
                CrossGPUInstance(
                    stencil_id=sid,
                    stencil=stencil,
                    oc=oc.name,
                    setting=setting,
                    times_ms=times,
                )
            )
            kept += 1
    if not out:
        raise DatasetError("no instance ran on every GPU")
    return out


def ground_truth_shares(
    instances: "list[CrossGPUInstance]",
    gpus: "tuple[str, ...] | list[str]",
    by_cost: bool = False,
) -> dict[str, float]:
    """Fraction of instances each GPU wins (Fig. 14/15 ground-truth bars)."""
    wins = {g: 0 for g in gpus}
    total = 0
    for inst in instances:
        g = inst.best_gpu_by_cost() if by_cost else inst.best_gpu()
        if g in wins:
            wins[g] += 1
            total += 1
    if total == 0:
        raise DatasetError("no instances for the requested GPUs")
    return {g: wins[g] / total for g in gpus}
