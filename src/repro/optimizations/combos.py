"""Optimization combinations (OCs) under the Table I constraints.

An :class:`OC` is an immutable set of enabled optimizations with a
canonical name (``"naive"`` for the empty set, otherwise abbreviations
joined by underscores in Table I order, e.g. ``"ST_BM_RT_PR"``).
Enumerating all constraint-satisfying subsets of the six optimizations
yields 30 OCs; that full space is what the motivation study (Figures 1-3)
sweeps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property

from ..errors import ConstraintViolation
from .passes import Opt, constraint_violations

#: Canonical ordering of abbreviations inside an OC name.
_CANONICAL = (Opt.ST, Opt.BM, Opt.CM, Opt.RT, Opt.PR, Opt.TB)


@dataclass(frozen=True)
class OC:
    """A validated optimization combination."""

    opts: frozenset[Opt]

    def __post_init__(self) -> None:
        problems = constraint_violations(self.opts)
        if problems:
            raise ConstraintViolation("; ".join(problems))

    @classmethod
    def of(cls, *opts: "Opt | str") -> "OC":
        """Build an OC from optimization values or abbreviations.

        ``OC.of("ST", "RT")`` and ``OC.of(Opt.ST, Opt.RT)`` are equivalent;
        ``OC.of()`` is the naive (unoptimized) combination.
        """
        return cls(frozenset(Opt(o) for o in opts))

    @classmethod
    def parse(cls, name: str) -> "OC":
        """Parse a canonical OC name (``"naive"`` or ``"ST_PR"``)."""
        if name == "naive":
            return cls(frozenset())
        return cls.of(*name.split("_"))

    @cached_property
    def name(self) -> str:
        if not self.opts:
            return "naive"
        return "_".join(o.value for o in _CANONICAL if o in self.opts)

    def __contains__(self, opt: "Opt | str") -> bool:
        return Opt(opt) in self.opts

    def __len__(self) -> int:
        return len(self.opts)

    def __lt__(self, other: "OC") -> bool:
        return self.sort_key < other.sort_key

    @cached_property
    def sort_key(self) -> tuple:
        """Deterministic ordering: by size then canonical position."""
        positions = tuple(i for i, o in enumerate(_CANONICAL) if o in self.opts)
        return (len(self.opts), positions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OC({self.name})"


#: The naive (no optimization) combination.
NAIVE = OC(frozenset())


def enumerate_ocs() -> list[OC]:
    """All optimization combinations satisfying the Table I constraints.

    Returns the 30 valid subsets of the six optimizations in deterministic
    (size-major) order, starting with ``naive``.
    """
    out: list[OC] = []
    for r in range(len(_CANONICAL) + 1):
        for subset in itertools.combinations(_CANONICAL, r):
            opts = frozenset(subset)
            if not constraint_violations(opts):
                out.append(OC(opts))
    return sorted(out)


#: Cached full OC list (30 entries).
ALL_OCS: tuple[OC, ...] = tuple(enumerate_ocs())

#: Name -> OC lookup for the full space.
OC_BY_NAME: dict[str, OC] = {oc.name: oc for oc in ALL_OCS}
