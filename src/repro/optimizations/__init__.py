"""Stencil optimizations, combinations and kernel characterization."""

from .combos import ALL_OCS, NAIVE, OC, OC_BY_NAME, enumerate_ocs
from .kernelmodel import (
    TIME_STEPS,
    KernelProfile,
    build_profile,
    default_grid,
    reuse_window_bytes,
)
from .params import (
    N_PARAM_FEATURES,
    PARAM_NAMES,
    PARAM_SPECS,
    ParamKind,
    ParamSetting,
    ParamSpec,
    default_setting,
    param_space_size,
    relevant_params,
    sample_setting,
    sample_settings,
)
from .passes import MUTUALLY_EXCLUSIVE, REQUIRES_ST, TABLE_I, Opt, constraint_violations

__all__ = [
    "ALL_OCS",
    "MUTUALLY_EXCLUSIVE",
    "NAIVE",
    "N_PARAM_FEATURES",
    "OC",
    "OC_BY_NAME",
    "Opt",
    "PARAM_NAMES",
    "PARAM_SPECS",
    "ParamKind",
    "ParamSetting",
    "ParamSpec",
    "REQUIRES_ST",
    "TABLE_I",
    "TIME_STEPS",
    "KernelProfile",
    "build_profile",
    "constraint_violations",
    "default_grid",
    "default_setting",
    "enumerate_ocs",
    "param_space_size",
    "relevant_params",
    "reuse_window_bytes",
    "sample_setting",
    "sample_settings",
]
