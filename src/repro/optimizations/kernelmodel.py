"""Analytical kernel characterization for (stencil, OC, parameter setting).

This module is the bridge between the optimization layer and the GPU
simulator: it derives, for one kernel variant, the quantities a timing model
needs -- launch geometry, per-thread registers, per-block shared memory,
DRAM and L2 traffic, floating-point work, coalescing efficiency and
streaming synchronization structure.

The model captures the first-order mechanics of each optimization:

Streaming (ST)
    Blocks become (d-1)-dimensional tiles swept along the stream axis; each
    input plane is loaded once, removing the stream-axis redundancy.
    Concurrent streaming (``stream_tiles``) splits the stream axis to
    restore block-level parallelism; ``stream_unroll`` adds register-level
    reuse at register cost.  A per-plane ``__syncthreads()`` exposes memory
    latency, modeled as a per-iteration stall.
Block merging (BM) / cyclic merging (CM)
    A thread computes ``merge_factor`` outputs.  BM merges *adjacent*
    points, so neighbor loads overlap and are reused from registers, but
    merging along the contiguous axis breaks coalescing.  CM merges
    *strided* points: coalescing is preserved for any merge axis and the
    register cost is lower, but there is no load overlap to harvest.
Retiming (RT)
    Decomposes the stencil into accumulating sub-computations along the
    stream axis, shrinking the live register queue (a win for high-order
    stencils, a small constant loss for low-order ones).
Prefetching (PR)
    Double-buffers the next plane into registers, hiding most of the
    per-iteration synchronization stall at a register cost.
Temporal blocking (TB)
    Fuses ``temporal_steps`` sweeps per launch: DRAM traffic divides by the
    fuse degree while halos grow by ``extent x (t-1)`` per blocked axis,
    adding redundant compute and loads.  Staging the time planes requires
    shared memory, so TB kernels always allocate it -- which is exactly why
    temporal blocking crashes for 3-D order-4 stencils without streaming
    (Section III-A): the widened 3-D tile exceeds the per-block shared
    memory limit on every evaluated GPU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..config import GRID_2D, GRID_3D
from ..errors import KernelLaunchError, OptimizationError
from ..stencil.stencil import Stencil
from .combos import OC
from .params import ParamSetting
from .passes import Opt

#: Number of time steps a profiling run sweeps (execution time is reported
#: per step).  Must be divisible by every temporal fuse degree.
TIME_STEPS = 8

#: Bytes per grid cell (double precision throughout the paper).
WORD = 8


def default_grid(ndim: int) -> tuple[int, ...]:
    """The paper's input grids: 8192^2 for 2-D, 512^3 for 3-D."""
    return (GRID_2D,) * 2 if ndim == 2 else (GRID_3D,) * 3


def register_queue_planes(stencil: Stencil, oc: OC, setting: ParamSetting) -> int:
    """Stream-axis planes the reuse queue must hold (register streaming).

    This is the **contract** with the code generator: the emitted register
    queue (or the reuse portion of the shared plane buffer) must hold
    exactly this many planes.  Plain streaming keeps the full stencil
    footprint ``2*extent + 1``; retiming accumulates partial sums so only
    the leading ``extent + 1`` planes (at least a rolling pair) stay live.
    """
    stream_axis = setting["stream_dim"] - 1
    es = stencil.axis_extents[stream_axis]
    planes = 2 * es + 1
    if Opt.RT in oc.opts:
        planes = max(2, es + 1)
    return planes


def smem_plane_count(stencil: Stencil, oc: OC, setting: ParamSetting) -> int:
    """Planes of the shared-memory queue of a streaming smem kernel.

    Also part of the codegen contract: the reuse queue
    (:func:`register_queue_planes`) plus one prefetch landing plane (PR)
    plus two staging planes per fused time step beyond the first (TB).
    """
    planes = register_queue_planes(stencil, oc, setting)
    if Opt.PR in oc.opts:
        planes += 1
    if Opt.TB in oc.opts:
        planes += 2 * (setting["temporal_steps"] - 1)
    return planes


@dataclass(frozen=True)
class KernelProfile:
    """Everything the timing simulator needs to know about one kernel.

    Traffic and FLOP counts are totals *per launch*; ``launches`` says how
    many launches cover :data:`TIME_STEPS` sweeps.  Axis 0 of the grid is
    the innermost (contiguous) dimension.
    """

    # Launch geometry.
    threads_per_block: int
    n_blocks: int
    launches: int

    # Per-thread / per-block resources.
    regs_per_thread: int
    spilled_regs: int
    smem_per_block: int

    # Work and traffic per launch.  DRAM reads depend on the GPU's L2
    # capacity for cache-served schemes, so they are carried as a base
    # (perfect-reuse) volume plus a worst-case amplification and the L2
    # window needed to avoid it; the simulator combines them.
    flops: float
    read_bytes_base: float
    read_amplification: float
    reuse_window_bytes: float
    write_bytes: float
    l2_bytes: float
    smem_bytes: float

    # Memory behaviour.
    coalescing: float  # in (0, 1]
    scattered: bool  # cache-served scheme: many concurrent row streams

    # Streaming synchronization structure (zeros when not streaming).
    stream_iters: int
    prefetch: bool

    # Bookkeeping for reports.
    temporal_steps: int
    points: int


@lru_cache(maxsize=262144)
def build_profile(
    stencil: Stencil,
    oc: OC,
    setting: ParamSetting,
    grid: tuple[int, ...] | None = None,
    warp_size: int = 32,
) -> KernelProfile:
    """Characterise the kernel implementing *stencil* under *oc*/*setting*.

    Profiles are GPU-*model*-independent given the scheduling width, so
    results are memoized: a multi-GPU profiling campaign re-times the
    same (stencil, OC, setting) triples on each architecture and pays
    the characterization cost once per ``warp_size`` (32 for every
    NVIDIA device, 64 for AMD wavefronts -- the width only affects the
    coalescing estimate).

    Raises
    ------
    OptimizationError
        For geometry that cannot be expressed (e.g. a merge/stream
        dimension beyond the grid's rank).  Hardware-limit violations are
        *not* checked here; the simulator owns those (they depend on the
        GPU).
    """
    ndim = stencil.ndim
    dims = default_grid(ndim) if grid is None else tuple(grid)
    if len(dims) != ndim:
        raise OptimizationError(f"grid rank {len(dims)} != stencil ndim {ndim}")

    extents = stencil.axis_extents
    nnz = stencil.nnz

    streaming = Opt.ST in oc.opts
    merging = Opt.BM in oc.opts or Opt.CM in oc.opts
    block_merge = Opt.BM in oc.opts
    retiming = Opt.RT in oc.opts
    prefetch = Opt.PR in oc.opts
    temporal = Opt.TB in oc.opts

    t = setting["temporal_steps"] if temporal else 1
    if TIME_STEPS % t:
        raise OptimizationError(f"temporal_steps={t} does not divide {TIME_STEPS}")
    launches = TIME_STEPS // t

    m = setting["merge_factor"] if merging else 1
    merge_axis = setting["merge_dim"] - 1 if merging else -1
    if merging and merge_axis >= ndim:
        raise OptimizationError(f"merge_dim={setting['merge_dim']} on {ndim}-D grid")

    stream_axis = setting["stream_dim"] - 1 if streaming else -1
    if streaming and stream_axis >= ndim:
        raise OptimizationError(f"stream_dim={setting['stream_dim']} on {ndim}-D grid")

    # Merging along the stream axis cannot be expressed: the stream loop
    # already walks that axis, so codegen emits a plain streaming kernel
    # (see ``CudaEmitter._merge_loop``).  Price what is actually emitted.
    if merging and streaming and merge_axis == stream_axis:
        merging = False
        block_merge = False
        m = 1
        merge_axis = -1

    # TB kernels stage time planes in shared memory regardless of the
    # use_smem parameter (see module docstring).
    use_smem = bool(setting["use_smem"]) or temporal

    # ------------------------------------------------------------------
    # launch geometry: per-axis thread coverage c[i] and block dims
    # ------------------------------------------------------------------
    if streaming:
        plane_axes = [a for a in range(ndim) if a != stream_axis]
        block_dims = [1] * ndim
        block_dims[plane_axes[0]] = setting["block_x"]
        if len(plane_axes) > 1:
            block_dims[plane_axes[1]] = setting["block_y"]
    else:
        block_dims = [setting["block_x"], setting["block_y"], setting["block_z"]][
            :ndim
        ]
        block_dims += [1] * (ndim - len(block_dims))

    threads_per_block = math.prod(block_dims)

    # Cyclic merging strides the merged outputs by the block extent; a
    # unit block dimension degenerates the stride to 1, which is exactly
    # adjacent (block) merging -- price the register/overlap structure
    # the emitted kernel actually has.
    if merging and not block_merge and block_dims[merge_axis] == 1:
        block_merge = True

    coverage = list(block_dims)
    if merging and merge_axis != stream_axis:
        coverage[merge_axis] *= m

    n_blocks = 1
    for a in range(ndim):
        if a == stream_axis:
            continue
        n_blocks *= math.ceil(dims[a] / coverage[a])
    if streaming:
        n_blocks *= setting["stream_tiles"]

    points = math.prod(dims)

    # Temporal blocking shrinks the valid interior of a tile by the stencil
    # extent per fused step (trapezoidal halo); a tile whose halo consumes
    # it computes nothing, so such configurations cannot run.  This is why
    # temporal blocking without streaming fails for high-order 3-D stencils
    # (Section III-A): no in-range block shape keeps all three axes wider
    # than their temporal halos.
    if temporal and t > 1:
        for a in range(ndim):
            if a == stream_axis:
                continue
            halo = 2 * extents[a] * (t - 1)
            if coverage[a] <= halo:
                raise KernelLaunchError(
                    f"temporal halo {halo} consumes the tile "
                    f"(coverage {coverage[a]}) along axis {a}"
                )

    # ------------------------------------------------------------------
    # registers per thread
    # ------------------------------------------------------------------
    regs_per_thread, spilled = register_estimate(
        nnz,
        merge_factor=m if merging else 1,
        block_merge=block_merge,
        streaming=streaming,
        use_smem=use_smem,
        retiming=retiming,
        stream_extent=extents[stream_axis] if streaming else 0,
        unroll=setting["stream_unroll"] if streaming else 1,
        prefetch=prefetch,
        temporal_steps=t,
        temporal=temporal,
    )

    # ------------------------------------------------------------------
    # shared memory per block
    # ------------------------------------------------------------------
    smem = 0
    if use_smem:
        if streaming:
            plane_cells = 1
            for a in range(ndim):
                if a == stream_axis:
                    continue
                plane_cells *= coverage[a] + 2 * extents[a] * t
            smem = plane_cells * smem_plane_count(stencil, oc, setting) * WORD
        else:
            tile_cells = 1
            for a in range(ndim):
                tile_cells *= coverage[a] + 2 * extents[a] * t
            smem = tile_cells * WORD * (2 if temporal else 1)

    # ------------------------------------------------------------------
    # floating-point work per launch
    # ------------------------------------------------------------------
    flops_per_point = float(stencil.flops_per_point())
    redundancy = 1.0
    if temporal:
        for a in range(ndim):
            if a == stream_axis:
                continue
            redundancy *= (coverage[a] + 2 * extents[a] * (t - 1)) / coverage[a]
    flops = points * flops_per_point * t * redundancy

    # ------------------------------------------------------------------
    # memory traffic per launch
    # ------------------------------------------------------------------
    write_bytes = float(WORD * points)  # final time plane of the fused group

    if use_smem:
        halo = 1.0
        for a in range(ndim):
            if a == stream_axis:
                continue
            halo *= (coverage[a] + 2 * extents[a] * t) / coverage[a]
        read_base = WORD * points * halo
        read_amp = 1.0
        window = 0.0
        l2_read = read_base
    elif streaming:
        # Register streaming: stream-axis reuse is perfect; in-plane reuse
        # rides the cache like the naive scheme restricted to plane axes.
        plane_axes = [a for a in range(ndim) if a != stream_axis]
        read_base = float(WORD * points)
        read_amp = _worst_case_amplification(stencil, plane_axes)
        window = reuse_window_bytes(stencil, dims, stream_axis)
        l2_read = WORD * points * _row_accesses(stencil, tuple(plane_axes), m, merge_axis)
    else:
        axes = list(range(ndim))
        read_base = float(WORD * points)
        read_amp = _worst_case_amplification(stencil, axes)
        window = reuse_window_bytes(stencil, dims, None)
        l2_read = WORD * points * _row_accesses(stencil, tuple(axes), m, merge_axis)

    # Shared-memory traffic: tiled kernels re-read each accessed neighbor
    # from shared memory, so dense (high-nnz) stencils become
    # smem-bandwidth-bound -- the reason AN5D-style frameworks work to
    # reduce shared memory usage for high-order stencils.  Retiming
    # accumulates partial sums in registers so each staged plane value is
    # read once per stream-axis position instead of once per tap; block
    # merging reuses overlapping taps across the merged outputs.
    smem_bytes = 0.0
    if use_smem:
        taps = smem_traffic_taps(
            stencil.offsets,
            stream_axis=stream_axis if streaming else None,
            retiming=retiming,
            block_merge=block_merge,
            merge_axis=merge_axis,
            merge_factor=m,
        )
        smem_bytes = taps * WORD * points * t * redundancy

    # Register spills round-trip through L1/L2 (and partly DRAM).
    if spilled:
        spill_traffic = spilled * WORD * 2 * 0.25 * points * t
        l2_read += spill_traffic
        read_base += 0.3 * spill_traffic

    l2_bytes = max(l2_read, read_base) + write_bytes

    # ------------------------------------------------------------------
    # coalescing efficiency
    # ------------------------------------------------------------------
    if streaming and stream_axis == 0:
        # Threads cover (y[,z]) while x is swept: every warp access is a
        # strided row fetch and only a quarter of each sector is used.
        coalesce = 0.25
    else:
        x_threads = block_dims[0]
        coalesce = (
            1.0
            if x_threads >= warp_size
            else max(x_threads / float(warp_size), 0.25)
        )
    if block_merge and merge_axis == 0:
        coalesce *= 1.0 / min(m, 4)
    coalesce = max(coalesce, 0.15)

    # ------------------------------------------------------------------
    # streaming synchronization structure
    # ------------------------------------------------------------------
    stream_iters = 0
    if streaming:
        tile_len = math.ceil(dims[stream_axis] / setting["stream_tiles"])
        stream_iters = math.ceil(tile_len / setting["stream_unroll"])

    return KernelProfile(
        threads_per_block=threads_per_block,
        n_blocks=n_blocks,
        launches=launches,
        regs_per_thread=regs_per_thread,
        spilled_regs=spilled,
        smem_per_block=int(smem),
        flops=flops,
        read_bytes_base=read_base,
        read_amplification=read_amp,
        reuse_window_bytes=window,
        write_bytes=write_bytes,
        l2_bytes=l2_bytes,
        smem_bytes=smem_bytes,
        coalescing=coalesce,
        scattered=not use_smem,
        stream_iters=stream_iters,
        prefetch=prefetch,
        temporal_steps=t,
        points=points,
    )


def register_estimate(
    nnz: int,
    *,
    merge_factor: int = 1,
    block_merge: bool = False,
    streaming: bool = False,
    use_smem: bool = False,
    retiming: bool = False,
    stream_extent: int = 0,
    unroll: int = 1,
    prefetch: bool = False,
    temporal_steps: int = 1,
    temporal: "bool | None" = None,
) -> "tuple[int, int]":
    """Per-thread register pressure from the kernel's *structure* alone.

    Returns ``(regs_per_thread, spilled)`` with the per-thread count
    capped at the hardware's 255.  This is the single register model of
    the repo: :func:`build_profile` calls it with intent-derived
    arguments, and the static analyzer's register pass calls it with the
    same facts recovered from generated source, so both sides price
    occupancy identically.
    """
    regs = 24.0 + 3.0 * math.sqrt(nnz)
    if merge_factor > 1:
        per_point = 5.0 + 1.1 * math.sqrt(nnz)
        regs += (merge_factor - 1) * per_point * (1.1 if block_merge else 0.85)
    if streaming:
        queue = (2 * stream_extent + 1) * unroll * 2.2
        if use_smem:
            queue *= 0.35
        if retiming:
            queue *= 0.45
            regs += 6.0
        regs += queue * (1.0 if use_smem else 1.6)
        regs += (unroll - 1) * 5.0
        if prefetch:
            regs += 8.0 * unroll + 6.0
    if temporal is None:
        temporal = temporal_steps > 1
    if temporal:
        if streaming:
            regs += 10.0 * temporal_steps
        else:
            regs *= 1.0 + 0.4 * (temporal_steps - 1)

    regs_needed = int(round(regs))
    return min(regs_needed, 255), max(0, regs_needed - 255)


def smem_traffic_taps(
    taps: "tuple[tuple[int, ...], ...]",
    *,
    stream_axis: "int | None" = None,
    retiming: bool = False,
    block_merge: bool = False,
    merge_axis: "int | None" = None,
    merge_factor: int = 1,
) -> float:
    """Shared-memory reads per output point for a tiled kernel.

    Tiled kernels re-read each accessed neighbor from shared memory
    (plus ~2 accesses for the store/rotate bookkeeping), so dense
    stencils become smem-bandwidth-bound.  Retiming accumulates
    stream-axis taps in registers, leaving only the in-plane taps plus
    the rolling update; block merging serves overlapping taps of the
    merged outputs from registers.  Shared between :func:`build_profile`
    (stencil offsets) and the analyzer's volume pass (extracted taps).
    """
    eff = float(len(taps))
    if retiming and stream_axis is not None:
        off_stream = sum(1 for p in taps if p[stream_axis] == 0)
        eff = float(off_stream) + 2.0
    if block_merge and merge_axis is not None and merge_factor > 1:
        eff /= tap_overlap_factor(tuple(taps), merge_axis, merge_factor)
    return eff + 2.0


@lru_cache(maxsize=65536)
def tap_overlap_factor(
    taps: "tuple[tuple[int, ...], ...]", axis: int, m: int
) -> float:
    """Tap-reuse factor of block merging *m* outputs along *axis*.

    Adjacent outputs share exactly the taps whose translates along the
    merge axis are also taps, so the per-output tap count of the merged
    thread is ``|union of m shifted tap sets| / m``.  Dense-along-axis
    stencils (boxes) overlap heavily and love BM; stencils sparse along
    the axis gain nothing (and then cyclic merging's lower register cost
    wins instead).
    """
    union: set = set()
    for k in range(m):
        union.update(tuple(c + k if d == axis else c for d, c in enumerate(p)) for p in taps)
    return m * len(taps) / len(union)


def _bm_overlap_factor(stencil: Stencil, axis: int, m: int) -> float:
    return tap_overlap_factor(stencil.offsets, axis, m)


@lru_cache(maxsize=65536)
def _row_accesses(
    stencil: Stencil, axes: tuple[int, ...], merge: int, merge_axis: int
) -> float:
    """SM <-> L2 traffic multiplier: distinct offset rows touched per point.

    Accesses that differ only along the contiguous axis coalesce into the
    same cache lines, so the L2 transaction count per point is the number
    of unique offset projections onto the remaining axes.  Block merging
    along a non-contiguous axis overlaps adjacent points' rows and serves
    the repeats from registers.
    """
    outer = [a for a in axes if a != 0]
    if not outer:
        return 1.0
    rows = {tuple(p[a] for a in outer) for p in stencil.offsets}
    n_rows = float(len(rows))
    if merge > 1 and merge_axis in outer:
        # Adjacent merged points share all but ~2*extent of their rows.
        n_rows = 1.0 + (n_rows - 1.0) / merge
    return n_rows


def _worst_case_amplification(stencil: Stencil, axes: list[int]) -> float:
    """DRAM read amplification for cache-served schemes with a cold L2.

    Reuse along the outermost axis requires the L2 to hold a window of
    ``2*extent + 1`` inner slabs; when it cannot, each of the extra slab
    visits becomes a re-fetch.  The simulator interpolates between 1 and
    this value using the actual L2 capacity against
    :func:`reuse_window_bytes`.
    """
    if len(axes) == 1:
        return 1.0
    outer_axis = axes[-1]
    return 1.0 + 2.0 * stencil.axis_extents[outer_axis]


def reuse_window_bytes(
    stencil: Stencil, dims: tuple[int, ...], streaming_axis: int | None
) -> float:
    """Bytes the L2 must hold to serve outer-axis reuse for cache schemes.

    For the naive scheme on a 3-D grid this is ``(2*ez + 1)`` full planes;
    with streaming along ``z`` the relevant window drops to ``(2*ey + 1)``
    rows of the 2-D plane, and so on.
    """
    ndim = stencil.ndim
    axes = [a for a in range(ndim) if a != streaming_axis]
    outer_axis = axes[-1]
    inner = 1.0
    for a in axes[:-1]:
        inner *= dims[a]
    return (2 * stencil.axis_extents[outer_axis] + 1) * inner * WORD
