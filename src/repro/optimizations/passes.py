"""The six stencil optimizations and their Table I constraints.

=====  ==================  ============================================
No.    Optimization        Constraint
=====  ==================  ============================================
1      Streaming (ST)      --
2      Block Merging (BM)  not valid when CM enabled
3      Cyclic Merging (CM) not valid when BM enabled
4      Retiming (RT)       only valid when ST enabled
5      Prefetching (PR)    only valid when ST enabled
6      Temporal Blocking   --
       (TB)
=====  ==================  ============================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Opt(str, Enum):
    """Optimization abbreviations from Table I."""

    ST = "ST"  # streaming (2.5-D spatial blocking, concurrent streaming)
    BM = "BM"  # block merging: adjacent output points per thread
    CM = "CM"  # cyclic merging: strided output points per thread
    RT = "RT"  # retiming: decompose into accumulating sub-computations
    PR = "PR"  # prefetching: overlap next-plane loads with compute
    TB = "TB"  # temporal blocking: fuse time steps

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OptInfo:
    """Descriptive metadata for one optimization (Table I row)."""

    number: int
    opt: Opt
    full_name: str
    constraint: str


TABLE_I: tuple[OptInfo, ...] = (
    OptInfo(1, Opt.ST, "Streaming", "-"),
    OptInfo(2, Opt.BM, "Block Merging", "Not valid when CM enabled."),
    OptInfo(3, Opt.CM, "Cyclic Merging", "Not valid when BM enabled."),
    OptInfo(4, Opt.RT, "Retiming", "Only valid when ST enabled."),
    OptInfo(5, Opt.PR, "Prefetching", "Only valid when ST enabled."),
    OptInfo(6, Opt.TB, "Temporal Blocking", "-"),
)

#: Optimizations that require streaming to be enabled.
REQUIRES_ST = frozenset({Opt.RT, Opt.PR})

#: Mutually exclusive optimization pairs.
MUTUALLY_EXCLUSIVE: tuple[frozenset[Opt], ...] = (frozenset({Opt.BM, Opt.CM}),)


def constraint_violations(opts: frozenset[Opt]) -> list[str]:
    """Return human-readable Table I violations for a set of optimizations.

    An empty list means the combination is valid.
    """
    problems: list[str] = []
    for pair in MUTUALLY_EXCLUSIVE:
        if pair <= opts:
            a, b = sorted(p.value for p in pair)
            problems.append(f"{a} and {b} are mutually exclusive")
    for opt in sorted(opts & REQUIRES_ST, key=lambda o: o.value):
        if Opt.ST not in opts:
            problems.append(f"{opt.value} requires ST")
    return problems
