"""Parameter spaces for optimization combinations (Section IV-E).

The parameter space of an OC mixes three kinds (the paper's taxonomy):

- **numeric** parameters restricted to powers of two (block dimensions,
  merging factor, streaming unroll/tile counts, temporal fuse degree);
- **Boolean** parameters (shared-memory usage);
- **enumeration** parameters numbered from 1 with unit stride (merging
  dimension, streaming dimension -- dimension 1 is the innermost /
  contiguous axis).

Every OC shares one *global* parameter vector layout so settings can feed a
fixed-width regression input: parameters irrelevant to an OC take a neutral
default.  When encoded as model features, numeric parameters are
``log2``-transformed for training stability (Section IV-E).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from types import MappingProxyType
from typing import Iterator, Mapping

import numpy as np

from ..errors import OptimizationError
from .combos import OC
from .passes import Opt


class ParamKind(str, Enum):
    """The three parameter types of Section IV-E."""

    POW2 = "pow2"
    BOOL = "bool"
    ENUM = "enum"


@dataclass(frozen=True)
class ParamSpec:
    """One tunable parameter: its kind, legal choices and neutral default."""

    name: str
    kind: ParamKind
    choices: tuple[int, ...]
    default: int

    def __post_init__(self) -> None:
        if self.kind is ParamKind.POW2:
            bad = [c for c in self.choices if c < 1 or c & (c - 1)]
            if bad:
                raise OptimizationError(f"{self.name}: non-power-of-two choices {bad}")
        if self.kind is ParamKind.BOOL and set(self.choices) - {0, 1}:
            raise OptimizationError(f"{self.name}: boolean choices must be 0/1")

    def encode(self, value: int) -> float:
        """Feature encoding: log2 for numeric, identity for bool/enum."""
        if self.kind is ParamKind.POW2:
            return math.log2(value) if value > 0 else -1.0
        return float(value)


#: Global parameter layout, shared by every OC (order is the feature order).
PARAM_SPECS: tuple[ParamSpec, ...] = (
    ParamSpec("block_x", ParamKind.POW2, (16, 32, 64, 128, 256), 32),
    ParamSpec("block_y", ParamKind.POW2, (1, 2, 4, 8, 16), 4),
    ParamSpec("block_z", ParamKind.POW2, (1, 2, 4, 8), 1),
    ParamSpec("merge_factor", ParamKind.POW2, (2, 4, 8), 1),
    ParamSpec("merge_dim", ParamKind.ENUM, (1, 2, 3), 0),
    ParamSpec("use_smem", ParamKind.BOOL, (0, 1), 0),
    ParamSpec("stream_dim", ParamKind.ENUM, (1, 2, 3), 0),
    ParamSpec("stream_unroll", ParamKind.POW2, (1, 2, 4), 1),
    ParamSpec("stream_tiles", ParamKind.POW2, (1, 2, 4, 8), 1),
    ParamSpec("temporal_steps", ParamKind.POW2, (2, 4), 1),
)

PARAM_NAMES: tuple[str, ...] = tuple(s.name for s in PARAM_SPECS)
_SPEC_BY_NAME: dict[str, ParamSpec] = {s.name: s for s in PARAM_SPECS}

#: Number of entries in the encoded parameter feature vector.
N_PARAM_FEATURES = len(PARAM_SPECS)


class ParamSetting(Mapping[str, int]):
    """An immutable, validated assignment of the global parameter vector.

    Unspecified parameters take their neutral default; values must come
    from each parameter's choice list (or be the default).
    """

    __slots__ = ("_values", "_tuple")

    def __init__(self, **values: int):
        assigned: dict[str, int] = {}
        for name, value in values.items():
            spec = _SPEC_BY_NAME.get(name)
            if spec is None:
                raise OptimizationError(f"unknown parameter {name!r}")
            v = int(value)
            if v != spec.default and v not in spec.choices:
                raise OptimizationError(
                    f"{name}={v} not in choices {spec.choices} "
                    f"(default {spec.default})"
                )
            assigned[name] = v
        full = {s.name: assigned.get(s.name, s.default) for s in PARAM_SPECS}
        object.__setattr__(self, "_values", MappingProxyType(full))
        # as_tuple is on the hot path of every backend (noise keying,
        # dedup sets, batch assembly), so the layout-order tuple is built
        # once up front.
        object.__setattr__(self, "_tuple", tuple(full[n] for n in PARAM_NAMES))

    @classmethod
    def _trusted(
        cls, full: "dict[str, int]", tup: "tuple[int, ...]"
    ) -> "ParamSetting":
        """Construct from pre-validated values, skipping the checks.

        *full* must be a fresh dict covering every parameter in
        ``PARAM_NAMES`` order with values from the choice lists (or
        defaults), and *tup* its layout-order tuple.  Only callers that
        uphold this invariant (space sampling, :meth:`replace`) may use
        it -- settings built here are indistinguishable from validated
        ones.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "_values", MappingProxyType(full))
        object.__setattr__(self, "_tuple", tup)
        return self

    def __getitem__(self, key: str) -> int:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ParamSetting) and self.as_tuple() == other.as_tuple()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        non_default = {
            k: v for k, v in self._values.items() if v != _SPEC_BY_NAME[k].default
        }
        return f"ParamSetting({non_default})"

    def as_tuple(self) -> tuple[int, ...]:
        """Values in global layout order (hashable identity)."""
        return self._tuple

    def replace(self, **changes: int) -> "ParamSetting":
        """A copy with some parameters changed.

        Only the *changes* are validated -- the carried-over values were
        checked when this setting was built.  replace() sits on the hot
        path of every coordinate-descent frontier, so this matters.
        """
        merged = dict(self._values)
        for name, value in changes.items():
            spec = _SPEC_BY_NAME.get(name)
            if spec is None:
                raise OptimizationError(f"unknown parameter {name!r}")
            v = int(value)
            if v != spec.default and v not in spec.choices:
                raise OptimizationError(
                    f"{name}={v} not in choices {spec.choices} "
                    f"(default {spec.default})"
                )
            merged[name] = v
        return ParamSetting._trusted(
            merged, tuple(merged[n] for n in PARAM_NAMES)
        )

    def encode(self) -> np.ndarray:
        """Fixed-width feature vector (log2 numeric, raw bool/enum)."""
        return np.array(
            [s.encode(self._values[s.name]) for s in PARAM_SPECS],
            dtype=np.float64,
        )


def relevant_params(oc: OC, ndim: int) -> tuple[str, ...]:
    """Names of parameters that actually influence *oc* on a *ndim*-D grid.

    The remaining parameters are pinned to their defaults by the sampler so
    random search does not waste budget on dead dimensions.
    """
    names: list[str] = ["block_x", "use_smem"]
    if ndim == 3 or Opt.ST not in oc.opts:
        names.append("block_y")
    if ndim == 3 and Opt.ST not in oc.opts:
        names.append("block_z")
    if Opt.BM in oc.opts or Opt.CM in oc.opts:
        names += ["merge_factor", "merge_dim"]
    if Opt.ST in oc.opts:
        names += ["stream_dim", "stream_unroll", "stream_tiles"]
    if Opt.TB in oc.opts:
        names.append("temporal_steps")
    order = {n: i for i, n in enumerate(PARAM_NAMES)}
    return tuple(sorted(set(names), key=order.__getitem__))


def _choices_for(name: str, ndim: int) -> tuple[int, ...]:
    spec = _SPEC_BY_NAME[name]
    if spec.kind is ParamKind.ENUM and name in ("merge_dim", "stream_dim"):
        return tuple(c for c in spec.choices if c <= ndim)
    return spec.choices


def sample_setting(oc: OC, ndim: int, rng: np.random.Generator) -> ParamSetting:
    """Draw one random parameter setting for *oc* (uniform per parameter).

    Mirrors the paper's random search: only OC-relevant parameters vary.
    """
    values: dict[str, int] = {}
    for name in relevant_params(oc, ndim):
        choices = _choices_for(name, ndim)
        values[name] = int(choices[rng.integers(len(choices))])
    return ParamSetting(**values)


def sample_settings(
    oc: OC, ndim: int, count: int, rng: np.random.Generator
) -> list[ParamSetting]:
    """Draw *count* distinct settings (deduplicated, bounded retries)."""
    out: list[ParamSetting] = []
    seen: set[tuple[int, ...]] = set()
    attempts = 0
    while len(out) < count and attempts < count * 40:
        attempts += 1
        s = sample_setting(oc, ndim, rng)
        key = s.as_tuple()
        if key in seen:
            continue
        seen.add(key)
        out.append(s)
    return out


def param_space_size(oc: OC, ndim: int) -> int:
    """Cardinality of the OC's relevant parameter space."""
    size = 1
    for name in relevant_params(oc, ndim):
        size *= len(_choices_for(name, ndim))
    return size


def default_setting() -> ParamSetting:
    """The all-defaults setting (naive kernel launch configuration)."""
    return ParamSetting()
