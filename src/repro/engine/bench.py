"""Engine throughput measurement: points/second per backend.

The workload is a representative campaign slice -- random stencils x
every OC x sampled settings, crashes included -- evaluated through each
backend with cold per-process model caches, the state a fresh profiling
campaign actually starts from.  ``repro profile`` spends essentially all
of its time in exactly this loop, so points/second here is campaign
throughput.

Used by ``benchmarks/test_engine_throughput.py`` (asserts the vectorized
speedup) and ``tools/bench_engine.py`` (writes ``BENCH_engine.json``).
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from ..optimizations.combos import ALL_OCS
from ..optimizations.kernelmodel import (
    _bm_overlap_factor,
    _row_accesses,
    build_profile,
)
from ..optimizations.params import default_setting, sample_setting
from ..stencil.generator import generate_population
from . import make_backend
from .core import EvalRequest


def make_workload(
    ndim: int = 2,
    n_stencils: int = 3,
    settings_per_oc: int = 8,
    seed: int = 123,
) -> "list[EvalRequest]":
    """A campaign-shaped request list (stencils x OCs x settings)."""
    rng = np.random.default_rng(seed)
    requests: list[EvalRequest] = []
    for stencil in generate_population(ndim, n_stencils, seed=seed):
        for oc in ALL_OCS:
            settings = [default_setting()] + [
                sample_setting(oc, stencil.ndim, rng)
                for _ in range(settings_per_oc - 1)
            ]
            requests.extend(EvalRequest(stencil, oc, s) for s in settings)
    return requests


def _clear_model_caches() -> None:
    """Reset per-process memoization so every backend starts cold.

    Tolerates functions whose ``lru_cache`` has been refactored away --
    the bench only cares that whatever caches *do* exist start cold.
    """
    for fn in (build_profile, _bm_overlap_factor, _row_accesses):
        clear = getattr(fn, "cache_clear", None)
        if clear is not None:
            clear()


def run_throughput_bench(quick: bool = False, gpu: str = "V100") -> dict:
    """Measure evaluation throughput of every backend kind.

    Returns a JSON-ready document::

        {"gpu", "n_points", "quick",
         "backends": {kind: {"seconds", "points_per_sec",
                             "speedup_vs_scalar"}},
         "cached_replay": {...}}   # second pass over a warm cache

    ``quick`` shrinks the workload for CI smoke runs.
    """
    workload = make_workload(
        n_stencils=1 if quick else 3,
        settings_per_oc=4 if quick else 32,
    )
    reps = 1 if quick else 3
    doc: dict = {
        "gpu": gpu,
        "n_points": len(workload),
        "quick": bool(quick),
        "backends": {},
    }

    def measure(backend, prepare) -> float:
        """Best-of-``reps`` wall time; ``prepare`` runs before every rep
        (cold runs reset the caches so each rep measures a fresh
        campaign start; the replay run keeps them warm)."""
        best = math.inf
        for _ in range(reps):
            prepare()
            start = time.perf_counter()
            results = backend.evaluate_batch(workload)
            elapsed = time.perf_counter() - start
            assert len(results) == len(workload)
            best = min(best, elapsed)
        return best

    for kind in ("scalar", "vector", "cached"):
        backend = make_backend(kind, gpu)

        def cold():
            _clear_model_caches()
            if kind == "cached":
                backend.clear()

        seconds = measure(backend, cold)
        doc["backends"][kind] = {
            "seconds": seconds,
            "points_per_sec": len(workload) / seconds,
        }
        if kind == "cached":
            backend.clear()
            backend.evaluate_batch(workload)  # warm the memo cache
            replay = measure(backend, lambda: None)
            doc["cached_replay"] = {
                "seconds": replay,
                "points_per_sec": len(workload) / replay,
            }

    scalar_s = doc["backends"]["scalar"]["seconds"]
    for kind, row in doc["backends"].items():
        row["speedup_vs_scalar"] = scalar_s / row["seconds"]
    doc["cached_replay"]["speedup_vs_scalar"] = (
        scalar_s / doc["cached_replay"]["seconds"]
    )
    return doc


def run_parallel_bench(
    quick: bool = False,
    gpu: str = "V100",
    workers_sweep: "tuple[int, ...]" = (1, 2, 4),
    context: str = "spawn",
    transports: "tuple[str, ...]" = ("shm", "pickle"),
) -> dict:
    """Worker-count sweep per transport + sharded campaigns.

    Returns a JSON-ready document::

        {"gpu", "quick", "cpu_count", "n_points",
         "backend_sweep": {transport: {workers: {"seconds",
                                                 "points_per_sec",
                                                 "speedup_vs_1"}}},
         "shm_vs_pickle": {workers: shm_points_per_sec /
                                    pickle_points_per_sec},
         "campaign": {"n_units", "n_measurements",
                      "sweep": {workers: {"seconds",
                                          "measurements_per_sec",
                                          "speedup_vs_1"}}}}

    Speedups are relative to ``workers=1`` of the same code path (the
    pool-free bypass for the backend, the sequential runner for the
    campaign), so they isolate the win from process-level parallelism;
    ``shm_vs_pickle`` compares the two transports at equal worker
    counts.  The campaign sweep shards whole (gpu, stencil) units, a
    code path where only profile rows cross the pipe, so it carries no
    transport axis.  Workers beyond ``cpu_count`` cannot help -- the
    host's CPU count is recorded so readers can judge the numbers.
    """
    from ..profiling.runner import CampaignRunner
    from .parallel import BackendSpec, ParallelBackend

    workload = make_workload(
        n_stencils=1 if quick else 3,
        settings_per_oc=4 if quick else 16,
    )
    reps = 1 if quick else 3
    doc: dict = {
        "gpu": gpu,
        "quick": bool(quick),
        "cpu_count": os.cpu_count() or 1,
        "n_points": len(workload),
        "backend_sweep": {},
    }

    # Untimed warm-up: the first measured configuration must not pay
    # process-wide one-time costs (imports, stencil interning) the later
    # ones inherit.  The lru caches in ``_clear_model_caches`` are still
    # reset before every rep, so reps stay cache-cold and comparable.
    make_backend("vector", gpu).evaluate_batch(workload)

    for transport in transports:
        sweep: dict = {}
        for workers in workers_sweep:
            backend = ParallelBackend(
                BackendSpec(kind="vector", gpu=gpu),
                workers=workers,
                context=context,
                transport=transport,
            )
            try:
                best = math.inf
                for _ in range(reps):
                    _clear_model_caches()
                    start = time.perf_counter()
                    results = backend.evaluate_batch(workload)
                    elapsed = time.perf_counter() - start
                    assert len(results) == len(workload)
                    best = min(best, elapsed)
            finally:
                backend.close()
            sweep[str(workers)] = {
                "seconds": best,
                "points_per_sec": len(workload) / best,
            }
        base = sweep[str(workers_sweep[0])]["seconds"]
        for row in sweep.values():
            row["speedup_vs_1"] = base / row["seconds"]
        doc["backend_sweep"][transport] = sweep
    if "shm" in doc["backend_sweep"] and "pickle" in doc["backend_sweep"]:
        doc["shm_vs_pickle"] = {
            w: (
                doc["backend_sweep"]["shm"][w]["points_per_sec"]
                / doc["backend_sweep"]["pickle"][w]["points_per_sec"]
            )
            for w in doc["backend_sweep"]["shm"]
        }

    stencils = generate_population(2, 2 if quick else 6, seed=7)
    sweep: dict = {}
    n_meas = 0
    for workers in workers_sweep:
        best = math.inf
        for _ in range(1 if quick else 2):
            runner = CampaignRunner(
                stencils,
                gpus=(gpu,),
                n_settings=2 if quick else 4,
                seed=7,
                backend="vector",
                workers=workers,
                mp_context=context,
            )
            _clear_model_caches()
            start = time.perf_counter()
            campaign = runner.run()
            elapsed = time.perf_counter() - start
            n_meas = len(campaign.measurements(gpu))
            best = min(best, elapsed)
        sweep[str(workers)] = {
            "seconds": best,
            "measurements_per_sec": n_meas / best,
        }
    base = sweep[str(workers_sweep[0])]["seconds"]
    for row in sweep.values():
        row["speedup_vs_1"] = base / row["seconds"]
    doc["campaign"] = {
        "n_units": len(stencils),
        "n_measurements": n_meas,
        "sweep": sweep,
    }
    return doc
