"""Retry-with-backoff as a backend decorator.

``RetryBackend`` reproduces the campaign runner's call-level guard (the
pre-engine ``_GuardedSimulator``) on the batched protocol: transient
errors recorded by a fault-injecting inner backend are retried with
exponential backoff on the simulated clock, implausible timings are
rejected and re-measured, and health counters account for every event.

The retry loop is round-based: each round re-submits only the requests
that still need a value, so the clean bulk of a batch is measured once
(vectorized, if the inner backend supports it) while the faulted tail
retries.  Per-request retry budgets and backoff schedules are identical
to the sequential guard; only the interleaving of inner calls differs,
which is unobservable because fault draws are keyed per identity and
attempt, never by global call order.

Exhaustion semantics are also unchanged: a request that fails its last
permitted retry raises its transient error out of ``evaluate_batch``,
which the campaign runner's point-retry loop turns into a fresh attempt
or a quarantine entry.  :class:`~repro.errors.DeviceLostError` counts
and re-raises immediately, voiding the batch.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import (
    DeviceLostError,
    MeasurementTimeout,
    TransientMeasurementError,
)
from ..gpu.faults import is_valid_time
from .core import BackendBase, BackendInfo, EvalRequest, EvalResult, as_backend


class RetryBackend(BackendBase):
    """Absorb transient faults from an inner backend with bounded retries.

    Parameters
    ----------
    inner:
        The (typically fault-injecting) backend to guard.
    policy:
        A :class:`~repro.profiling.runner.RetryPolicy` (or compatible):
        ``max_call_retries``, ``backoff_base_s``, ``backoff_factor``,
        ``backoff_max_s``.
    clock:
        A :class:`~repro.profiling.runner.SimClock` (or compatible
        ``sleep``/``now``) charged for backoff waits.
    health:
        A :class:`~repro.profiling.runner.CampaignHealth` ledger whose
        counters (``timeouts``, ``transients``, ``corrupt_rejected``,
        ``device_lost``, ``call_retries``, ``backoff_s``) this decorator
        increments.
    """

    def __init__(self, inner, policy, clock, health):
        self.inner = as_backend(inner)
        self.policy = policy
        self.clock = clock
        self.health = health

    @property
    def spec(self):
        return self.inner.spec

    @property
    def sigma(self) -> float:
        return self.inner.sigma

    @property
    def info(self) -> BackendInfo:
        inner = self.inner.info
        return BackendInfo(
            name=f"retry({inner.name})",
            vectorized=inner.vectorized,
            caching=inner.caching,
            batch_limit=inner.batch_limit,
        )

    def begin_unit(self, unit_key: object) -> None:
        begin = getattr(self.inner, "begin_unit", None)
        if begin is not None:
            begin(unit_key)

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        policy, health = self.policy, self.health
        n = len(requests)
        out: list[EvalResult | None] = [None] * n
        pending = list(range(n))
        retries_left = dict.fromkeys(pending, policy.max_call_retries)
        delay = dict.fromkeys(pending, policy.backoff_base_s)
        while pending:
            try:
                results = self.inner.evaluate_batch([requests[i] for i in pending])
            except DeviceLostError:
                health.device_lost += 1
                raise
            still: list[int] = []
            for i, res in zip(pending, results):
                err = res.error
                if err is None:
                    if is_valid_time(res.time_ms):
                        out[i] = res
                        continue
                    health.corrupt_rejected += 1
                    req = requests[i]
                    err = TransientMeasurementError(
                        f"implausible timing {res.time_ms!r} rejected "
                        f"({self.spec.name}, {req.oc.name})"
                    )
                elif isinstance(err, MeasurementTimeout):
                    health.timeouts += 1
                elif isinstance(err, TransientMeasurementError):
                    health.transients += 1
                else:
                    # Deterministic crashes (and anything else) pass
                    # through: they are data, not transient trouble.
                    out[i] = res
                    continue
                if retries_left[i] == 0:
                    raise err
                retries_left[i] -= 1
                health.call_retries += 1
                self.clock.sleep(delay[i])
                health.backoff_s += delay[i]
                delay[i] = min(
                    delay[i] * policy.backoff_factor, policy.backoff_max_s
                )
                still.append(i)
            pending = still
        return out  # type: ignore[return-value]
