"""Batched evaluation engine: the measurement substrate behind tuning.

Every tuner, campaign and baseline in this repo measures stencil
configurations through a :class:`Backend` -- an object that evaluates
*batches* of (stencil, OC, setting) requests and advertises its
capabilities.  Concrete backends:

- :class:`ScalarBackend` -- the per-point reference path (wraps a
  :class:`~repro.gpu.simulator.GPUSimulator` or any ``time``-shaped
  object); defines the engine's semantics.
- :class:`VectorBackend` -- NumPy-vectorized evaluation of whole
  frontiers, observationally equivalent to the scalar path (identical
  crashes, bit-identical noise, times within 1e-9 relative).
- :class:`CachingBackend` -- content-keyed memoization decorator.
- :class:`FaultBackend` / :class:`RetryBackend` -- deterministic fault
  injection and retry-with-backoff decorators used by the campaign
  runner.

See ``docs/engine.md`` for the protocol contract and composition rules.
"""

from __future__ import annotations

from .cache import CachingBackend
from .core import (
    Backend,
    BackendBase,
    BackendInfo,
    EvalRequest,
    EvalResult,
    as_backend,
    iter_chunks,
)
from .fault import FaultBackend
from .parallel import BackendSpec, ParallelBackend
from .retry import RetryBackend
from .scalar import ScalarBackend
from .vector import VectorBackend

#: Backend kinds selectable from the CLI / campaign runner.
BACKEND_KINDS = ("scalar", "vector", "cached", "parallel")


def make_backend(
    kind: str,
    gpu,
    sigma: float = 0.03,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    context: str = "spawn",
    transport: str = "shm",
) -> Backend:
    """Construct a measurement backend by name.

    ``scalar`` is the reference per-point path; ``vector`` evaluates
    batches with array math; ``cached`` memoizes on top of ``vector``;
    ``parallel`` shards batches across a worker pool of ``workers``
    processes, each running its own vector backend (see
    :class:`~repro.engine.parallel.ParallelBackend`; results are
    bit-identical for every worker count, chunk size and *transport* --
    ``"shm"`` shared-memory arrays by default, ``"pickle"`` the codec
    fallback).  *gpu* may be a GPU name, a
    :class:`~repro.gpu.specs.GPUSpec` or an existing simulator.
    """
    if kind == "scalar":
        return ScalarBackend(gpu, sigma=sigma)
    if kind == "vector":
        return VectorBackend(gpu, sigma=sigma)
    if kind == "cached":
        return CachingBackend(VectorBackend(gpu, sigma=sigma))
    if kind == "parallel":
        from .parallel import BackendSpec, ParallelBackend

        name = gpu if isinstance(gpu, str) else getattr(gpu, "name", None) or gpu.spec.name
        return ParallelBackend(
            BackendSpec(kind="vector", gpu=name, sigma=sigma),
            workers=workers,
            chunk_size=chunk_size,
            context=context,
            transport=transport,
        )
    raise ValueError(f"unknown backend kind {kind!r} (choose from {BACKEND_KINDS})")


__all__ = [
    "Backend",
    "BackendBase",
    "BackendInfo",
    "BACKEND_KINDS",
    "BackendSpec",
    "CachingBackend",
    "EvalRequest",
    "EvalResult",
    "FaultBackend",
    "ParallelBackend",
    "RetryBackend",
    "ScalarBackend",
    "VectorBackend",
    "as_backend",
    "iter_chunks",
    "make_backend",
]
