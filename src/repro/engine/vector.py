"""NumPy-vectorized batch evaluation of the analytical timing model.

``VectorBackend`` evaluates whole frontiers of tuning points at once:
requests are grouped by (stencil, grid) -- OCs mix freely within a group
-- the per-group stencil-level quantities (extents, tap sets, reuse
windows, row-access counts) are computed once, and the per-setting
kernel characterization, occupancy math, latency-hiding curves,
memory-hierarchy phases, wave quantization and streaming stalls run as
array expressions over the whole group.  Optimization flags (streaming,
merging, retiming, prefetch, temporal) become per-point boolean masks,
so a campaign slice covering every OC amortizes the fixed cost of the
array pipeline over hundreds of points instead of one OC's handful.

Equivalence contract (enforced by ``tests/engine``):

- Every arithmetic step mirrors the scalar path op for op -- same IEEE
  operations in the same order -- so batched times match
  :class:`~repro.engine.scalar.ScalarBackend` to ~1 ulp (well inside the
  1e-9 relative tolerance the engine guarantees).  Masked steps stay
  exact because a lane either receives the identical operation sequence
  or an identity operation (``+ 0.0``, ``/ 1.0``, ``np.where`` select).
- Measurement noise is *bit-identical*: the blake2b keying of
  :func:`repro.gpu.noise.noise_factor` is reproduced exactly via a
  shared digest prefix per (stencil, OC).
- Crash behavior is *identical*: points whose configuration violates a
  hardware limit (and any degenerate parameter combination outside the
  sampled space) are detected by vectorized masks and delegated to the
  scalar reference path, so the raised/recorded
  :class:`~repro.errors.KernelLaunchError` carries the exact message the
  scalar path produces.
- Results are per-point pure: every expression is elementwise, so a
  request's result never depends on what else shares its batch.
"""

from __future__ import annotations

import math
import struct
from hashlib import blake2b
from typing import Sequence

import numpy as np

from ..errors import KernelLaunchError
from ..optimizations.kernelmodel import (
    TIME_STEPS,
    WORD,
    _bm_overlap_factor,
    _row_accesses,
    _worst_case_amplification,
    default_grid,
    reuse_window_bytes,
)
from ..optimizations.params import PARAM_NAMES
from ..optimizations.passes import Opt
from ..gpu.simulator import (
    _BW_HALF_OCC,
    _COMPUTE_HALF_OCC,
    _EXPOSED_LATENCY_CYCLES,
    _L2_USABLE,
    _PREFETCH_HIDING,
    _SCATTER_EFF,
    _SMOOTH_P,
    _SYNC_CYCLES,
    GPUSimulator,
)
from .core import BackendBase, BackendInfo, EvalRequest, EvalResult

_COL = {name: i for i, name in enumerate(PARAM_NAMES)}


def _round_up(values: np.ndarray, unit: int) -> np.ndarray:
    return ((values + unit - 1) // unit) * unit


class VectorBackend(BackendBase):
    """Vectorized analytical backend for one GPU.

    Parameters mirror :class:`~repro.gpu.simulator.GPUSimulator`; the
    wrapped simulator doubles as the delegation target for crashing and
    degenerate points.
    """

    def __init__(self, gpu, sigma: float = 0.03):
        self.sim = gpu if isinstance(gpu, GPUSimulator) else GPUSimulator(gpu, sigma=sigma)

    @property
    def spec(self):
        return self.sim.spec

    @property
    def sigma(self) -> float:
        return self.sim.sigma

    @property
    def info(self) -> BackendInfo:
        return BackendInfo(name="vector", vectorized=True)

    # ------------------------------------------------------------------
    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        out: list[EvalResult | None] = [None] * len(requests)
        # Identity-based grouping: results are per-point pure, so finer
        # groups are never wrong, and id() avoids hashing stencil content
        # per request on the hot path.  OCs vary freely inside a group --
        # their flags become per-point masks -- so a whole campaign slice
        # for one stencil is a single array pipeline pass.
        groups: dict[tuple, list[int]] = {}
        for i, req in enumerate(requests):
            key = (id(req.stencil), req.grid)
            groups.setdefault(key, []).append(i)
        for idxs in groups.values():
            first = requests[idxs[0]]
            ocs = [requests[i].oc for i in idxs]
            tuples = [requests[i].setting.as_tuple() for i in idxs]
            times, errors, fallback = self._evaluate_group(
                first.stencil, ocs, first.grid, tuples
            )
            for j, i in enumerate(idxs):
                if fallback[j]:
                    out[i] = self._scalar_eval(requests[i])
                elif errors[j] is not None:
                    out[i] = EvalResult(error=errors[j])
                else:
                    out[i] = EvalResult(time_ms=float(times[j]))
        return out  # type: ignore[return-value]

    def _scalar_eval(self, req: EvalRequest) -> EvalResult:
        """Reference path for points the vector math cannot (or must not)
        time: reproduces the exact scalar result, including the exact
        :class:`KernelLaunchError` for crashing configurations."""
        try:
            t = self.sim.time(req.stencil, req.oc, req.setting, grid=req.grid)
        except KernelLaunchError as e:
            return EvalResult(error=e)
        return EvalResult(time_ms=t)

    # ------------------------------------------------------------------
    def _evaluate_group(self, stencil, ocs, grid, tuples):
        """Vector-time one (stencil, grid) group of (OC, setting) points.

        Returns ``(times, errors, fallback)``: per-point times (garbage
        where crashed or delegated), per-point synthesized
        :class:`KernelLaunchError` (or ``None``), and the mask of points
        to delegate to the scalar path.  Crashes are detected by masks
        applied in the scalar path's exact precedence order (geometry ->
        occupancy -> grid) and carry the scalar path's exact messages;
        degenerate parameter values outside the sampled space (which the
        scalar path answers with :class:`OptimizationError`) are
        delegated instead, preserving correctness at a small speed cost
        for such points.
        """
        spec = self.spec
        ndim = stencil.ndim
        dims = default_grid(ndim) if grid is None else tuple(grid)
        n = len(tuples)
        errors: list = [None] * n
        if len(dims) != ndim:
            # build_profile raises OptimizationError; let the scalar
            # reference produce it.
            return np.zeros(n), errors, np.ones(n, dtype=bool)

        extents = stencil.axis_extents
        ext_arr = np.asarray(extents, dtype=np.int64)
        dims_arr = np.asarray(dims, dtype=np.int64)
        nnz = stencil.nnz

        # Per-point optimization flags: one row of booleans per distinct
        # OC, fancy-indexed out to the group.
        oc_index: dict[int, int] = {}
        oc_list: list = []
        oc_idx = np.empty(n, dtype=np.int64)
        for j, oc in enumerate(ocs):
            k = oc_index.get(id(oc))
            if k is None:
                k = oc_index[id(oc)] = len(oc_list)
                oc_list.append(oc)
            oc_idx[j] = k
        flags = np.array(
            [
                (
                    Opt.ST in oc.opts,
                    Opt.BM in oc.opts or Opt.CM in oc.opts,
                    Opt.BM in oc.opts,
                    Opt.RT in oc.opts,
                    Opt.PR in oc.opts,
                    Opt.TB in oc.opts,
                )
                for oc in oc_list
            ],
            dtype=bool,
        )
        per_oc = flags[oc_idx]
        streaming = per_oc[:, 0]
        merging = per_oc[:, 1]
        block_merge = per_oc[:, 2]
        retiming = per_oc[:, 3]
        prefetch = per_oc[:, 4]
        temporal = per_oc[:, 5]

        S = np.asarray(tuples, dtype=np.int64)
        bx = S[:, _COL["block_x"]]
        by = S[:, _COL["block_y"]]
        bz = S[:, _COL["block_z"]]
        ones = np.ones(n, dtype=np.int64)
        fallback = np.zeros(n, dtype=bool)

        t = np.where(temporal, S[:, _COL["temporal_steps"]], 1)
        fallback |= (TIME_STEPS % np.maximum(t, 1)) != 0
        fallback |= t < 1
        launches = TIME_STEPS // np.maximum(t, 1)

        # Axis -1 (the parameter default, ``merge_dim``/``stream_dim`` 0)
        # is legal: the scalar path indexes with it, so Python wrap
        # semantics select the last axis wherever an axis is *indexed*,
        # while ``== axis`` comparisons keep the raw -1 (matching no
        # axis).  Only >= ndim is degenerate (scalar raises
        # OptimizationError; delegated).
        m = np.where(merging, S[:, _COL["merge_factor"]], 1)
        merge_axis = np.where(merging, S[:, _COL["merge_dim"]] - 1, -1)
        fallback |= merging & (merge_axis >= ndim)
        ma_pos = np.where(merge_axis < 0, merge_axis + ndim, merge_axis)

        stream_axis = np.where(streaming, S[:, _COL["stream_dim"]] - 1, -1)
        fallback |= streaming & (stream_axis >= ndim)
        # Safe fancy index: -1 wraps like the scalar path; out-of-range
        # lanes (already fallback) are clamped to 0.
        sa_ix = np.where(stream_axis >= ndim, 0, stream_axis)

        use_smem = (S[:, _COL["use_smem"]] != 0) | temporal
        su = S[:, _COL["stream_unroll"]]
        stl = S[:, _COL["stream_tiles"]]
        fallback |= (su < 1) | (stl < 1)
        su = np.maximum(su, 1)
        stl = np.maximum(stl, 1)

        # Merging along the stream axis cannot be expressed: codegen
        # drops the merge loop, so the emitted kernel is plain streaming
        # (mirrors build_profile).
        phantom = merging & streaming & (merge_axis == stream_axis)
        merging = merging & ~phantom
        block_merge = block_merge & ~phantom
        m = np.where(phantom, 1, m)
        merge_axis = np.where(phantom, -1, merge_axis)
        ma_pos = np.where(merge_axis < 0, merge_axis + ndim, merge_axis)

        # --- launch geometry ------------------------------------------
        # Streaming lanes launch planes: block_x/block_y land on the
        # first/second surviving axes (all axes survive for axis -1);
        # others use the block dims directly.
        first_plane = np.where(stream_axis == 0, 1, 0)
        if ndim == 3:
            second_plane = np.where(
                (stream_axis == 0) | (stream_axis == 1), 2, 1
            )
        else:
            # Two surviving axes only when no axis is consumed.
            second_plane = np.where(stream_axis < 0, 1, ndim)
        plain = [bx, by, bz]
        bd = []
        for a in range(ndim):
            val = np.where(first_plane == a, bx, ones)
            val = np.where(second_plane == a, by, val)
            bd.append(np.where(streaming, val, plain[a]))
        fallback |= np.any(np.stack(bd) < 1, axis=0)

        threads = bd[0].copy()
        for a in range(1, ndim):
            threads = threads * bd[a]

        # Cyclic merging with a unit block dimension along the merge
        # axis strides the outputs by 1, i.e. adjacent (block) merging
        # (mirrors build_profile).
        bd_ma = np.stack(bd)[ma_pos, np.arange(n)]
        block_merge = block_merge | (merging & (bd_ma == 1))

        cov = []
        for a in range(ndim):
            c = np.where(
                (ma_pos == a) & (merge_axis != stream_axis), bd[a] * m, bd[a]
            )
            cov.append(np.maximum(c, 1))

        nb = ones.copy()
        for a in range(ndim):
            term = np.ceil(dims[a] / cov[a]).astype(np.int64)
            nb = nb * np.where(stream_axis == a, 1, term)
        nb = nb * np.where(streaming, stl, 1)
        points = math.prod(dims)

        # Temporal halo consuming the tile: a deterministic launch crash,
        # reported for the first failing axis exactly as build_profile does.
        crashed = np.zeros(n, dtype=bool)
        if temporal.any():
            for a in range(ndim):
                halo = 2 * extents[a] * (t - 1)
                mask = (t > 1) & (stream_axis != a) & (cov[a] <= halo)
                for i in np.flatnonzero(mask & ~crashed & ~fallback):
                    errors[i] = KernelLaunchError(
                        f"temporal halo {halo[i]} consumes the tile "
                        f"(coverage {cov[a][i]}) along axis {a}"
                    )
                crashed |= mask

        # --- registers per thread -------------------------------------
        # Masked lanes add 0.0 / keep their value, so every lane sees the
        # scalar path's exact operation sequence.
        regs = np.full(n, 24.0 + 3.0 * math.sqrt(nnz))
        per_point = 5.0 + 1.1 * math.sqrt(nnz)
        regs = regs + np.where(
            merging,
            (m - 1) * per_point * np.where(block_merge, 1.1, 0.85),
            0.0,
        )
        ext_sa = ext_arr[sa_ix]
        queue = (2 * ext_sa + 1) * su * 2.2
        queue = np.where(use_smem, queue * 0.35, queue)
        queue = np.where(retiming, queue * 0.45, queue)
        regs = regs + np.where(streaming & retiming, 6.0, 0.0)
        regs = regs + np.where(
            streaming, np.where(use_smem, queue * 1.0, queue * 1.6), 0.0
        )
        regs = regs + np.where(streaming, (su - 1) * 5.0, 0.0)
        regs = regs + np.where(streaming & prefetch, 8.0 * su + 6.0, 0.0)
        regs = np.where(
            temporal & streaming,
            regs + 10.0 * t,
            np.where(temporal, regs * (1.0 + 0.4 * (t - 1)), regs),
        )

        regs_needed = np.rint(regs).astype(np.int64)
        spilled = np.maximum(0, regs_needed - 255)
        regs_pt = np.minimum(regs_needed, 255)

        # --- shared memory per block ----------------------------------
        plane_cells = ones.copy()
        tile_cells = ones.copy()
        for a in range(ndim):
            cells = cov[a] + 2 * extents[a] * t
            plane_cells = plane_cells * np.where(stream_axis == a, 1, cells)
            tile_cells = tile_cells * cells
        planes = 2 * ext_arr[sa_ix] + 1
        planes = np.where(retiming, np.maximum(2, ext_arr[sa_ix] + 1), planes)
        planes = planes + np.where(prefetch, 1, 0)
        planes = planes + 2 * (t - 1)
        smem = np.where(
            streaming,
            plane_cells * planes * WORD,
            tile_cells * WORD * np.where(temporal, 2, 1),
        )
        smem = np.where(use_smem, smem, 0)

        # --- floating-point work --------------------------------------
        fp = float(stencil.flops_per_point())
        red = np.ones(n)
        if temporal.any():
            for a in range(ndim):
                factor = (cov[a] + 2 * extents[a] * (t - 1)) / cov[a]
                red = red * np.where(stream_axis == a, 1.0, factor)
        flops = points * fp * t * red

        # --- memory traffic -------------------------------------------
        write_bytes = float(WORD * points)

        halo_f = np.ones(n)
        for a in range(ndim):
            f = (cov[a] + 2 * extents[a] * t) / cov[a]
            halo_f = halo_f * np.where(stream_axis == a, 1.0, f)
        rb_smem = WORD * points * halo_f
        l2_smem = rb_smem

        # Worst-case amplification and reuse window depend only on the
        # stream axis (index 0 = not streaming): small per-group tables.
        amp_tab = np.empty(ndim + 1)
        win_tab = np.empty(ndim + 1)
        amp_tab[0] = _worst_case_amplification(stencil, list(range(ndim)))
        win_tab[0] = reuse_window_bytes(stencil, dims, None)
        for s in range(ndim):
            amp_tab[s + 1] = _worst_case_amplification(
                stencil, [a for a in range(ndim) if a != s]
            )
            win_tab[s + 1] = reuse_window_bytes(stencil, dims, s)
        sa_tab = np.where(stream_axis >= ndim, 0, stream_axis + 1)
        amp_plain = amp_tab[sa_tab]
        window_plain = win_tab[sa_tab]

        # SM<->L2 row-access multipliers depend on the small discrete key
        # (stream axis, merge factor, merge axis); evaluate the cached
        # scalar helper once per distinct key for bit-identical values.
        # Keys are packed into one int so np.unique stays 1-D (fast).
        combo = ((stream_axis + 1) * 16 + m) * 4 + (merge_axis + 1)
        uniq, inv = np.unique(combo, return_inverse=True)
        ra_vals = np.empty(len(uniq))
        for u, packed in enumerate(uniq.tolist()):
            ma_ = packed % 4 - 1
            s_ = packed // 64 - 1
            m_ = packed // 4 % 16
            if s_ >= 0:
                axes = tuple(a for a in range(ndim) if a != s_)
            else:
                axes = tuple(range(ndim))
            ra_vals[u] = _row_accesses(stencil, axes, m_, ma_)
        l2_plain = WORD * points * ra_vals[inv]

        read_base = np.where(use_smem, rb_smem, float(WORD * points))
        read_amp = np.where(use_smem, 1.0, amp_plain)
        window = np.where(use_smem, 0.0, window_plain)
        l2_read = np.where(use_smem, l2_smem, l2_plain)

        # Shared-memory traffic.
        taps = np.full(n, float(nnz))
        rt_st = retiming & streaming
        if rt_st.any():
            off_by_sa = np.array(
                [
                    float(sum(1 for p in stencil.offsets if p[s] == 0)) + 2.0
                    for s in range(ndim)
                ]
            )
            taps = np.where(rt_st, off_by_sa[sa_ix], taps)
        # Block-merge overlap divides the tap count; other lanes divide
        # by 1.0, which is exact.
        bm_factor = np.ones(n)
        if block_merge.any():
            bm_combo = np.where(block_merge, (merge_axis + 1) * 16 + m, -1)
            bm_uniq, bm_inv = np.unique(bm_combo, return_inverse=True)
            bm_vals = np.ones(len(bm_uniq))
            for u, packed in enumerate(bm_uniq.tolist()):
                if packed >= 0:
                    bm_vals[u] = _bm_overlap_factor(
                        stencil, packed // 16 - 1, packed % 16
                    )
            bm_factor = bm_vals[bm_inv]
        taps = taps / bm_factor
        smem_bytes = (taps + 2.0) * WORD * points * t * red
        smem_bytes = np.where(use_smem, smem_bytes, 0.0)

        # Register spills (adding the zero spill term is exact).
        spill = spilled * WORD * 2 * 0.25 * points * t
        l2_read = l2_read + spill
        read_base = read_base + 0.3 * spill
        l2_bytes = np.maximum(l2_read, read_base) + write_bytes

        # --- coalescing -----------------------------------------------
        x_threads = bd[0]
        warp = float(spec.warp_size)
        coalesce = np.where(
            x_threads >= warp, 1.0, np.maximum(x_threads / warp, 0.25)
        )
        coalesce = np.where(stream_axis == 0, 0.25, coalesce)
        coalesce = np.where(
            block_merge & (merge_axis == 0),
            coalesce * (1.0 / np.minimum(m, 4)),
            coalesce,
        )
        coalesce = np.maximum(coalesce, 0.15)

        # --- streaming synchronization structure ----------------------
        tile_len = np.ceil(dims_arr[sa_ix] / stl).astype(np.int64)
        stream_iters = np.where(
            streaming, np.ceil(tile_len / su).astype(np.int64), 0
        )

        # --- occupancy: hardware-limit crashes, in compute_occupancy's
        # check order, with its exact messages ------------------------
        fallback |= threads < 1  # cannot happen for validated settings

        def _synth(mask, fmt):
            nonlocal crashed
            for i in np.flatnonzero(mask & ~crashed & ~fallback):
                errors[i] = KernelLaunchError(fmt(i))
            crashed |= mask

        _synth(
            threads > spec.max_threads_per_block,
            lambda i: f"block of {threads[i]} threads exceeds "
            f"{spec.max_threads_per_block} on {spec.name}",
        )
        _synth(
            regs_pt > spec.max_registers_per_thread,
            lambda i: f"{regs_pt[i]} registers/thread exceeds "
            f"{spec.max_registers_per_thread} on {spec.name}",
        )
        _synth(
            smem > spec.smem_per_block_max,
            lambda i: f"{smem[i]} B shared memory/block exceeds "
            f"{spec.smem_per_block_max} B on {spec.name}",
        )

        wpb = np.ceil(threads / spec.warp_size).astype(np.int64)
        wpb_safe = np.maximum(wpb, 1)
        lim_threads = spec.max_warps_per_sm // wpb_safe
        regs_per_warp = _round_up(
            np.maximum(regs_pt, 1) * spec.warp_size, spec.reg_alloc_unit
        )
        regs_per_block = regs_per_warp * wpb_safe
        lim_regs = spec.registers_per_sm // np.maximum(regs_per_block, 1)
        smem_rounded = _round_up(smem, spec.smem_alloc_unit)
        lim_smem = np.where(
            smem > 0,
            spec.smem_per_sm // np.maximum(smem_rounded, 1),
            spec.max_blocks_per_sm,
        )
        blocks = np.minimum(
            np.minimum(lim_threads, spec.max_blocks_per_sm),
            np.minimum(lim_regs, lim_smem),
        )

        def _limiter(i):
            # compute_occupancy's tie-break: min limit, priority order
            # threads < blocks < registers < smem.
            pairs = (
                (lim_threads[i], "threads"),
                (spec.max_blocks_per_sm, "blocks"),
                (lim_regs[i], "registers"),
                (lim_smem[i], "smem"),
            )
            return min(pairs, key=lambda kv: kv[0])[1]

        _synth(
            blocks < 1,
            lambda i: f"zero occupancy on {spec.name}: "
            f"limited by {_limiter(i)} "
            f"(threads/block={threads[i]}, regs={regs_pt[i]}, "
            f"smem={smem[i]})",
        )
        _synth(nb < 1, lambda i: "empty grid: zero thread blocks")

        # --- phases, on the valid subset only -------------------------
        times = np.zeros(n)
        v = ~(fallback | crashed)
        if not v.any():
            return times, errors, fallback

        blocks_v = blocks[v]
        nb_v = nb[v]
        wpb_v = wpb[v]
        eff = np.minimum(blocks_v, np.maximum(1, -(-nb_v // spec.sms)))
        occ_ach = np.minimum(1.0, eff * wpb_v / spec.max_warps_per_sm)
        bw_frac = occ_ach / (occ_ach + _BW_HALF_OCC)
        comp_frac = occ_ach / (occ_ach + _COMPUTE_HALF_OCC)

        slots = blocks_v * spec.sms
        n_waves = -(-nb_v // slots)
        util = np.maximum(nb_v / (n_waves * slots), 1e-3)

        window_v = window[v]
        l2_budget = _L2_USABLE * spec.l2_bytes
        p_hit = np.where(
            window_v > 0,
            np.minimum(1.0, l2_budget / np.where(window_v > 0, window_v, 1.0)),
            1.0,
        )
        reads = read_base[v] * (1.0 + (read_amp[v] - 1.0) * (1.0 - p_hit))
        dram_bytes = reads + write_bytes
        dram_bw = (
            spec.dram_bytes_per_s * spec.memory_efficiency * bw_frac * coalesce[v]
        )
        dram_bw = np.where(use_smem[v], dram_bw, dram_bw * _SCATTER_EFF)
        dram_s = dram_bytes / dram_bw

        l2_bw = spec.dram_bytes_per_s * spec.l2_bw_ratio * bw_frac
        l2_s = l2_bytes[v] / l2_bw

        smem_bw = (
            spec.sms
            * spec.smem_bytes_per_clk
            * spec.boost_clock_mhz
            * 1e6
            * 0.35
            * comp_frac
        )
        smem_s = smem_bytes[v] / smem_bw

        flops_rate = spec.peak_fp64_flops * spec.compute_efficiency * comp_frac
        compute_s = flops[v] / flops_rate

        p = _SMOOTH_P
        main_s = (dram_s**p + l2_s**p + compute_s**p + smem_s**p) ** (1.0 / p)
        main_s = main_s / util

        # Streaming stalls: stream_iters is zero off the streaming lanes,
        # so their cycle count (and stall time) is exactly zero.
        exposed = np.where(
            prefetch[v],
            _EXPOSED_LATENCY_CYCLES * (1.0 - _PREFETCH_HIDING),
            _EXPOSED_LATENCY_CYCLES,
        )
        exposed_v = exposed / np.maximum(1.0, wpb_v / 4.0)
        cycles = stream_iters[v] * (_SYNC_CYCLES + exposed_v)
        stream_s = n_waves * cycles / (spec.boost_clock_mhz * 1e6)

        launch_s = spec.kernel_launch_us * 1e-6
        per_launch_s = main_s + stream_s + launch_s
        per_step_ms = per_launch_s * launches[v] / TIME_STEPS * 1e3

        sigma = self.sigma
        if sigma > 0:
            per_step_ms = per_step_ms * self._noise_factors(
                stencil, oc_list, oc_idx, tuples, np.flatnonzero(v), sigma
            )
        times[v] = per_step_ms
        return times, errors, fallback

    # ------------------------------------------------------------------
    def _noise_factors(self, stencil, oc_list, oc_idx, tuples, valid_idx, sigma):
        """Bit-exact lognormal jitter for the valid points of a group.

        Reproduces :func:`repro.gpu.noise.noise_factor` for the key
        ``(gpu, stencil, oc, setting)`` by feeding blake2b the same byte
        stream; the per-OC key prefix is hashed once and copied per
        point.
        """
        prefixes = []
        for oc in oc_list:
            h = blake2b(digest_size=16)
            for part in (self.spec.name, stencil.cache_key(), oc.name):
                h.update(repr(part).encode())
                h.update(b"\x1f")
            prefixes.append(h)
        out = np.empty(len(valid_idx))
        sqrt, log, cos, exp = math.sqrt, math.log, math.cos, math.exp
        two_pi = 2.0 * math.pi
        for j, i in enumerate(valid_idx):
            h = prefixes[oc_idx[i]].copy()
            h.update(repr(tuples[i]).encode())
            h.update(b"\x1f")
            a, b = struct.unpack("<QQ", h.digest())
            u1 = (a + 1) / (2**64 + 1)
            u2 = b / 2**64
            z = sqrt(-2.0 * log(u1)) * cos(two_pi * u2)
            out[j] = exp(sigma * z)
        return out
