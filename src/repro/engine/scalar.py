"""Reference backend: the per-point simulator path, one request at a time.

``ScalarBackend`` defines the engine's semantics.  Every other backend --
vectorized, caching, fault-injecting -- must be observationally
equivalent to it (see ``tests/engine/test_backend_equivalence.py``); it
is also the adapter that lets any simulator-shaped object (a
:class:`~repro.gpu.simulator.GPUSimulator`, a
:class:`~repro.gpu.faults.FaultInjector`, a test stub with a ``time``
method) serve a batched caller.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import KernelLaunchError
from .core import BackendBase, BackendInfo, EvalRequest, EvalResult


class ScalarBackend(BackendBase):
    """Wraps a per-point simulator behind the batched protocol.

    Parameters
    ----------
    sim:
        GPU name, :class:`~repro.gpu.specs.GPUSpec` or any object with a
        simulator-compatible ``time(stencil, oc, setting, grid=None)``.
    sigma:
        Noise level, used only when *sim* is a name/spec and a simulator
        must be constructed.
    """

    def __init__(self, sim, sigma: float = 0.03):
        if isinstance(sim, str) or not hasattr(sim, "time"):
            from ..gpu.simulator import GPUSimulator

            sim = GPUSimulator(sim, sigma=sigma)
        self.sim = sim

    @property
    def spec(self):
        return self.sim.spec

    @property
    def sigma(self) -> float:
        return self.sim.sigma

    @property
    def info(self) -> BackendInfo:
        return BackendInfo(name="scalar")

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        """Evaluate requests sequentially through the wrapped simulator.

        Deterministic launch failures become crash results; anything else
        the simulator raises (transient faults, geometry errors)
        propagates and voids the batch, exactly as the pre-engine
        sequential code path behaved.
        """
        out: list[EvalResult] = []
        for req in requests:
            try:
                t = self.sim.time(req.stencil, req.oc, req.setting, grid=req.grid)
            except KernelLaunchError as e:
                out.append(EvalResult(error=e))
            else:
                out.append(EvalResult(time_ms=t))
        return out
