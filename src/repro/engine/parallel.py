"""Multi-core evaluation: sharding request batches across a process pool.

``ParallelBackend`` is a :class:`~repro.engine.core.Backend` decorator
that splits an :class:`EvalRequest` batch into chunks, ships them to a
persistent worker pool (:class:`repro.parallel.WorkerPool`), and
reassembles the per-chunk results in request order.  Each worker builds
its own inner backend once, from a declarative :class:`BackendSpec`, so
the vector / cached / fault / retry stacks compose *underneath* the
process boundary exactly as they do in a single process.

Why this is allowed to exist: results are pure, content-keyed functions
of (GPU, stencil, OC, setting, grid) -- the measurement noise is keyed
by blake2b over the same identity, never by call order or process --
so any partition of a batch across any number of workers reassembles to
**bit-identical** results (times, crash classes, crash messages).  The
determinism suite (``tests/engine/test_parallel.py``) verifies this
against :class:`~repro.engine.scalar.ScalarBackend` for every worker
count, chunk size and transport it sweeps.

Two transports move requests across the process boundary:

``shm`` (default)
    The batch is packed **once** into flat NumPy arrays in a
    ``multiprocessing.shared_memory`` segment (stencil-table indices, OC
    ids, setting columns, grid ids); workers attach and evaluate slices
    by index, writing times into a shared ``(time_ms, status)`` array.
    Only chunk bounds, two segment names and a short error side-table
    travel over the pipe.  See :mod:`repro.engine.shm` for the layout
    and segment lifecycle.  Falls back to ``pickle`` automatically where
    POSIX shared memory is unavailable.

``pickle``
    The original codec (:func:`encode_requests` / ``decode_requests``):
    stencils deduplicated into a table of offset lists -- built once per
    batch and shared across its chunks -- OCs by name, settings as
    layout-order tuples; results return as ``(time | error-class +
    message)`` rows (:func:`encode_results` / :func:`decode_results`).

Both transports reassemble to bit-identical results; the choice is pure
throughput plumbing and is therefore *not* part of any checkpoint
identity.

Composition caveat: fault injection draws are scoped per *work unit*
(``begin_unit``).  ``ParallelBackend`` forwards the unit key with every
chunk, so unit scoping is preserved **as long as one unit's requests
are evaluated under one ``begin_unit`` epoch**, which is how the
sharded campaign runner uses it (whole (gpu, stencil) units per
worker).  Splitting a single faulted unit's batch across workers with
nonzero fault rates would advance per-worker attempt counters
independently; compose faults under ``ParallelBackend`` only through
the campaign runner's unit-level sharding.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Sequence

from .. import errors as _errors
from ..errors import ReproError, TransientError, WorkerLostError
from ..parallel import WorkerPool
from ..stencil.stencil import Stencil
from . import shm as shm_transport
from .core import BackendBase, BackendInfo, EvalRequest, EvalResult

#: Per-transport caps on requests per worker task.  The effective chunk
#: is ``min(cap, ceil(n / workers))``, so small batches still spread
#: across every worker.  The pickle codec pays a per-row encode/decode
#: cost, so its chunks stay small enough to load balance; shm chunks are
#: index ranges -- near-zero marginal cost -- so they run larger to
#: amortize pool dispatch.
DEFAULT_CHUNK_SIZE = 256
SHM_CHUNK_SIZE = 1024
TRANSPORT_CHUNK_CAPS = {"pickle": DEFAULT_CHUNK_SIZE, "shm": SHM_CHUNK_SIZE}

#: Request transports selectable on :class:`ParallelBackend`.
TRANSPORTS = ("shm", "pickle")

#: Exit status of the worker-crash test hook (any nonzero breaks the
#: pool identically; the value aids debugging).
CRASH_EXIT_CODE = 19

#: Test hook: when set (pre-fork, inherited by fork-context workers) the
#: next worker to start a chunk creates this flag file and ``_exit``\ s,
#: simulating a mid-chunk kill.  ``O_EXCL`` on the flag file makes the
#: crash fire exactly once across the pool and across pool restarts.
_CRASH_FLAG_PATH: "str | None" = None


def _maybe_crash() -> None:
    if _CRASH_FLAG_PATH is None:
        return
    try:
        fd = os.open(_CRASH_FLAG_PATH, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(CRASH_EXIT_CODE)


# ----------------------------------------------------------------------
# declarative backend construction (what a worker builds at startup)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendSpec:
    """A picklable recipe for one worker's measurement stack.

    ``build()`` composes, innermost first: the base backend
    (``scalar`` / ``vector`` / ``cached``), then optional deterministic
    fault injection, then an optional retry guard.  The recipe -- not a
    live backend -- crosses the process boundary, so every worker owns
    an isolated stack (its own caches, fault attempt counters, clock)
    while all stacks are content-identical.
    """

    kind: str = "vector"
    gpu: str = "V100"
    sigma: float = 0.03
    faults: "object | None" = None  # FaultConfig
    fault_seed: int = 0
    retry: "object | None" = None  # RetryPolicy

    def __post_init__(self) -> None:
        gpu = self.gpu
        if not isinstance(gpu, str):  # accept a GPUSpec for convenience
            object.__setattr__(self, "gpu", gpu.name)

    def build(self, clock=None, health=None):
        """Construct the backend stack this spec describes.

        *clock* / *health* feed the retry layer when one is requested;
        fresh worker-local instances are created when omitted (their
        counters are shipped back to the parent as deltas).
        """
        from . import make_backend
        from .fault import FaultBackend
        from .retry import RetryBackend

        be = make_backend(self.kind, self.gpu, sigma=self.sigma)
        if self.faults is not None and getattr(self.faults, "enabled", False):
            be = FaultBackend(be, self.faults, seed=self.fault_seed)
        if self.retry is not None:
            from ..profiling.runner import CampaignHealth, SimClock

            be = RetryBackend(
                be,
                self.retry,
                clock if clock is not None else SimClock(),
                health if health is not None else CampaignHealth(),
            )
        return be


# ----------------------------------------------------------------------
# request / result codec (pickle transport)
# ----------------------------------------------------------------------
def encode_requests(requests: Sequence[EvalRequest]) -> dict:
    """Compact picklable form of a request batch.

    Stencils are deduplicated (by object identity, then content) into a
    table of ``(ndim, offsets, name)`` rows; each request becomes
    ``(stencil_index, oc_name, setting_tuple, grid)``.
    ``ParallelBackend`` encodes the whole batch once and slices the row
    list per chunk, so the table is built once per batch, not per chunk.
    """
    table: list[tuple] = []
    index_by_id: dict[int, int] = {}
    index_by_key: dict[tuple, int] = {}
    rows: list[tuple] = []
    for req in requests:
        s = req.stencil
        idx = index_by_id.get(id(s))
        if idx is None:
            key = s.cache_key()
            idx = index_by_key.get(key)
            if idx is None:
                idx = len(table)
                table.append((s.ndim, s.sorted_offsets, s.name))
                index_by_key[key] = idx
            index_by_id[id(s)] = idx
        rows.append((idx, req.oc.name, req.setting.as_tuple(), req.grid))
    return {"stencils": table, "requests": rows}


def decode_requests(doc: dict) -> "list[EvalRequest]":
    """Inverse of :func:`encode_requests`.

    Reconstruction is content-exact: stencil offsets, OC identity (via
    the canonical registry) and setting tuples reproduce the same cache
    keys -- hence the same noise, crashes and times -- as the originals.
    """
    from ..optimizations.combos import OC_BY_NAME
    from ..optimizations.params import PARAM_NAMES, ParamSetting

    stencils = [
        Stencil(ndim=ndim, offsets=frozenset(offs), name=name)
        for ndim, offs, name in doc["stencils"]
    ]
    settings: dict[tuple, ParamSetting] = {}
    out: list[EvalRequest] = []
    for idx, oc_name, values, grid in doc["requests"]:
        setting = settings.get(values)
        if setting is None:
            setting = ParamSetting(**dict(zip(PARAM_NAMES, values)))
            settings[values] = setting
        out.append(EvalRequest(stencils[idx], OC_BY_NAME[oc_name], setting, grid))
    return out


def encode_results(results: Sequence[EvalResult]) -> list:
    """Picklable rows: ``(0, time_ms)`` or ``(1, error_class, args)``."""
    rows: list[tuple] = []
    for res in results:
        if res.error is None:
            rows.append((0, res.time_ms))
        else:
            rows.append((1, type(res.error).__name__, res.error.args))
    return rows


def decode_results(rows: list) -> "list[EvalResult]":
    """Inverse of :func:`encode_results` (error classes by name)."""
    out: list[EvalResult] = []
    for row in rows:
        if row[0] == 0:
            out.append(EvalResult(time_ms=row[1]))
        else:
            cls = getattr(_errors, row[1], ReproError)
            out.append(EvalResult(error=cls(*row[2])))
    return out


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_WORKER_BACKEND = None
_WORKER_UNIT = None
#: Attached request segments, decoded once per (worker, batch); at most
#: one batch is live at a time, so a new segment evicts the old views.
_WORKER_SHM: "dict[str, shm_transport.DecodedBatch]" = {}
_WORKER_RES: "dict[str, dict]" = {}


def _init_worker(spec: BackendSpec) -> None:
    """Pool initializer: build this worker's backend stack once."""
    global _WORKER_BACKEND, _WORKER_UNIT
    _WORKER_BACKEND = spec.build()
    _WORKER_UNIT = None
    _WORKER_SHM.clear()
    _WORKER_RES.clear()


def _health_counters(backend) -> "dict | None":
    health = getattr(backend, "health", None)
    if health is None:
        return None
    doc = health.to_dict()
    doc.pop("quarantined", None)
    return doc


def _begin_unit(backend, unit_key) -> None:
    global _WORKER_UNIT
    if unit_key is not None and unit_key != _WORKER_UNIT:
        begin = getattr(backend, "begin_unit", None)
        if begin is not None:
            begin(unit_key)
        _WORKER_UNIT = unit_key


def _eval_chunk(payload: tuple) -> tuple:
    """Evaluate one pickle-encoded chunk through the worker's backend.

    Returns ``("ok", rows, health_delta)`` or ``("err", class, args,
    health_delta)`` for exceptions the parent must re-raise (device
    losses, exhausted retries).  Health deltas carry the worker-local
    retry layer's counters back to the parent.
    """
    doc, unit_key = payload
    _maybe_crash()
    backend = _WORKER_BACKEND
    assert backend is not None, "worker used before initialization"
    _begin_unit(backend, unit_key)
    before = _health_counters(backend)
    try:
        results = backend.evaluate_batch(decode_requests(doc))
    except TransientError as e:
        after = _health_counters(backend)
        delta = _delta(before, after)
        return ("err", type(e).__name__, e.args, delta)
    after = _health_counters(backend)
    return ("ok", encode_results(results), _delta(before, after))


def _attached_batch(req_name: str) -> "shm_transport.DecodedBatch":
    batch = _WORKER_SHM.get(req_name)
    if batch is None:
        for name in list(_WORKER_SHM):
            _WORKER_SHM.pop(name).close()
        batch = shm_transport.DecodedBatch(shm_transport.attach_segment(req_name))
        _WORKER_SHM[req_name] = batch
    return batch


def _attached_results(res_name: str, n: int) -> dict:
    entry = _WORKER_RES.get(res_name)
    if entry is None:
        for name in list(_WORKER_RES):
            old = _WORKER_RES.pop(name)
            old["times"] = old["status"] = None
            old["seg"].close()
        seg = shm_transport.attach_segment(res_name)
        times, status = shm_transport.result_views(seg, n)
        entry = {"seg": seg, "times": times, "status": status}
        _WORKER_RES[res_name] = entry
    return entry


def _eval_chunk_shm(payload: tuple) -> tuple:
    """Evaluate one shared-memory chunk: attach, slice by index, write back.

    Returns ``("ok", error_rows, health_delta)`` -- times land directly
    in the shared result array; only ``(index, class, args)`` error rows
    return over the pipe -- or ``("err", class, args, health_delta)``
    exactly like :func:`_eval_chunk`.
    """
    req_name, res_name, n, lo, hi, unit_key = payload
    _maybe_crash()
    backend = _WORKER_BACKEND
    assert backend is not None, "worker used before initialization"
    _begin_unit(backend, unit_key)
    batch = _attached_batch(req_name)
    res = _attached_results(res_name, n)
    before = _health_counters(backend)
    try:
        results = backend.evaluate_batch(batch.requests(lo, hi))
    except TransientError as e:
        after = _health_counters(backend)
        return ("err", type(e).__name__, e.args, _delta(before, after))
    errors = shm_transport.write_results(res["times"], res["status"], lo, results)
    after = _health_counters(backend)
    return ("ok", errors, _delta(before, after))


def _delta(before: "dict | None", after: "dict | None") -> "dict | None":
    if before is None or after is None:
        return None
    return {k: after[k] - before[k] for k in after if after[k] != before[k]}


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ParallelBackend(BackendBase):
    """Shard request batches across a persistent worker pool.

    Parameters
    ----------
    spec:
        The :class:`BackendSpec` every worker builds its inner stack
        from (also built once in-parent for metadata and the
        ``workers=1`` bypass).
    workers:
        Process count; ``1`` evaluates inline through the parent-built
        stack (exactly the wrapped backend's behavior), ``None``/``0``
        auto-sizes to the CPU count.
    chunk_size:
        Max requests per worker task.  ``None`` picks
        ``min(cap, ceil(n / workers))`` per batch, where the cap is
        transport-dependent (:data:`TRANSPORT_CHUNK_CAPS`).  Results are
        chunking-invariant; this knob trades IPC overhead against load
        balance only.
    context:
        Pool context (``"spawn"`` default, ``"fork"`` for cheap startup
        on POSIX).
    transport:
        ``"shm"`` (default): zero-copy shared-memory arrays, see the
        module docstring; ``"pickle"``: the per-row codec.  Results are
        bit-identical either way; ``shm`` silently falls back to
        ``pickle`` where POSIX shared memory is unavailable.
    health:
        Optional health ledger (``CampaignHealth``-shaped); worker-side
        retry counters and pool restarts are merged into it.
    max_pool_restarts:
        Times a batch survives a worker death (the pool is restarted and
        the batch re-dispatched) before :class:`WorkerLostError`
        propagates.  Shared segments stay alive across restarts -- a
        re-dispatched chunk overwrites its slice with the same
        deterministic values -- and are unlinked when the batch settles,
        success or failure.
    """

    def __init__(
        self,
        spec: BackendSpec,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
        context: str = "spawn",
        transport: str = "shm",
        health=None,
        max_pool_restarts: int = 2,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r} (choose from {TRANSPORTS})"
            )
        self.backend_spec = spec
        self._local = spec.build()
        self._pool = WorkerPool(
            workers, context=context, initializer=_init_worker, initargs=(spec,)
        )
        self.workers = self._pool.workers
        self.chunk_size = None if chunk_size is None else max(1, int(chunk_size))
        self.requested_transport = transport
        if transport == "shm" and not shm_transport.shm_available():
            transport = "pickle"
        self.transport = transport
        self.health = health
        self.max_pool_restarts = int(max_pool_restarts)
        self.worker_deaths = 0
        self._unit_key = None

    # -- metadata ------------------------------------------------------
    @property
    def spec(self):
        return self._local.spec

    @property
    def sigma(self) -> float:
        return self._local.sigma

    @property
    def info(self) -> BackendInfo:
        inner = self._local.info
        return BackendInfo(
            name=(
                f"parallel({inner.name}, workers={self.workers}, "
                f"transport={self.transport})"
            ),
            vectorized=inner.vectorized,
            caching=inner.caching,
            batch_limit=inner.batch_limit,
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "ParallelBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- unit scoping --------------------------------------------------
    def begin_unit(self, unit_key: object) -> None:
        self._unit_key = unit_key
        begin = getattr(self._local, "begin_unit", None)
        if begin is not None:
            begin(unit_key)

    # -- evaluation ----------------------------------------------------
    def _chunks(self, n: int) -> "list[tuple[int, int]]":
        size = self.chunk_size
        if size is None:
            cap = TRANSPORT_CHUNK_CAPS[self.transport]
            size = min(cap, math.ceil(n / self.workers))
        return [(i, min(i + size, n)) for i in range(0, n, size)]

    def _dispatch(self, fn, payloads: list) -> list:
        """Pool-map with worker-death recovery (restart + re-dispatch)."""
        for restart in range(self.max_pool_restarts + 1):
            try:
                return self._pool.map(fn, payloads)
            except WorkerLostError:
                self.worker_deaths += 1
                if self.health is not None:
                    self.health.worker_deaths += 1
                if restart == self.max_pool_restarts:
                    raise
        raise AssertionError("unreachable")

    def _merge_reply_meta(self, replies: list) -> "BaseException | None":
        """Fold health deltas into the ledger; return the first failure.

        Deterministic propagation: the first failing chunk in request
        order raises, matching where the sequential path would have
        stopped.
        """
        failure: "BaseException | None" = None
        for reply in replies:
            if reply[0] == "ok":
                delta = reply[2]
            else:
                cls = getattr(_errors, reply[1], TransientError)
                if failure is None:
                    failure = cls(*reply[2])
                delta = reply[3]
            if delta and self.health is not None:
                for name, value in delta.items():
                    setattr(self.health, name, getattr(self.health, name) + value)
        return failure

    def _evaluate_pickle(
        self, requests: Sequence[EvalRequest], spans: list
    ) -> "list[EvalResult]":
        doc = encode_requests(requests)  # stencil table built once per batch
        table, rows = doc["stencils"], doc["requests"]
        payloads = [
            ({"stencils": table, "requests": rows[a:b]}, self._unit_key)
            for a, b in spans
        ]
        replies = self._dispatch(_eval_chunk, payloads)
        failure = self._merge_reply_meta(replies)
        if failure is not None:
            raise failure
        out: list[EvalResult] = []
        for reply in replies:
            out.extend(decode_results(reply[1]))
        return out

    def _evaluate_shm(
        self, requests: Sequence[EvalRequest], spans: list
    ) -> "list[EvalResult]":
        n = len(requests)
        req_seg = shm_transport.pack_requests(requests)
        res_seg = shm_transport.create_segment(
            shm_transport.result_segment_size(n), tag="res"
        )
        times = status = None
        try:
            times, status = shm_transport.result_views(res_seg, n)
            payloads = [
                (req_seg.name, res_seg.name, n, a, b, self._unit_key)
                for a, b in spans
            ]
            replies = self._dispatch(_eval_chunk_shm, payloads)
            failure = self._merge_reply_meta(replies)
            if failure is not None:
                raise failure
            error_rows = [row for reply in replies for row in reply[1]]
            return shm_transport.read_results(times, status, error_rows)
        finally:
            # Release the array views before closing the buffer they alias.
            times = status = None
            shm_transport.unlink_segment(req_seg)
            shm_transport.unlink_segment(res_seg)

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> "list[EvalResult]":
        n = len(requests)
        if self.workers <= 1 or n <= 1:
            return self._local.evaluate_batch(requests)
        spans = self._chunks(n)
        if self.transport == "shm":
            return self._evaluate_shm(requests, spans)
        return self._evaluate_pickle(requests, spans)
