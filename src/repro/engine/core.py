"""Core vocabulary of the batched evaluation engine.

The engine decouples *what to measure* from *how it is measured*: search
strategies (random search, coordinate descent, genetic tuning), campaign
runners and baselines all describe work as batches of
:class:`EvalRequest` and hand them to a :class:`Backend`, the pluggable
measurement substrate.  Today's backends are the analytical simulator in
three flavors (scalar reference, NumPy-vectorized, memoizing); the same
seam is where a real-GPU or remote profiling backend plugs in later.

Design rules every backend follows:

- ``evaluate_batch`` returns one :class:`EvalResult` per request, in
  request order.  A deterministic launch failure
  (:class:`~repro.errors.KernelLaunchError`) is *data*, not an exception:
  it is carried in the result so one crashing point cannot abort a
  frontier of valid ones.
- Transient trouble (timeouts, device loss, ...) is exceptional: fault
  decorators either record a retryable error on the affected result or
  raise (:class:`~repro.errors.DeviceLostError` voids the whole batch).
- Results are pure functions of (GPU, stencil, OC, setting, grid) --
  including the deterministic measurement noise -- so backends are free
  to reorder, parallelize or memoize work inside a batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

from ..errors import KernelLaunchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu.specs import GPUSpec
    from ..optimizations.combos import OC
    from ..optimizations.params import ParamSetting
    from ..stencil.stencil import Stencil


@dataclass(frozen=True, slots=True)
class EvalRequest:
    """One point of the tuning space to measure: (stencil, OC, setting).

    ``grid`` overrides the paper's default input grid; ``None`` means the
    default for the stencil's dimensionality.
    """

    stencil: "Stencil"
    oc: "OC"
    setting: "ParamSetting"
    grid: "tuple[int, ...] | None" = None

    def key(self) -> tuple:
        """Content identity of the request (memoization key, GPU excluded)."""
        return (
            self.stencil.cache_key(),
            self.oc.name,
            self.setting.as_tuple(),
            self.grid,
        )


@dataclass(frozen=True, slots=True)
class EvalResult:
    """Outcome of one evaluated request.

    Exactly one of ``time_ms`` / ``error`` is meaningful.  ``error`` is a
    :class:`KernelLaunchError` for deterministic crashes, or a transient
    fault recorded by a fault-injecting decorator for a retry layer to
    absorb.
    """

    time_ms: "float | None" = None
    error: "BaseException | None" = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def crashed(self) -> bool:
        """True for a deterministic launch failure of this configuration."""
        return isinstance(self.error, KernelLaunchError)

    def value(self) -> float:
        """The time in ms; re-raises the recorded error if there is one."""
        if self.error is not None:
            raise self.error
        assert self.time_ms is not None
        return self.time_ms


@dataclass(frozen=True)
class BackendInfo:
    """Capability metadata a backend advertises.

    ``vectorized``
        Batches are evaluated with array math rather than a per-point
        loop; callers benefit from submitting large frontiers.
    ``caching``
        Repeated identical requests are served from memory; callers need
        not deduplicate across batches.
    ``batch_limit``
        Largest batch the backend accepts per call (``None``: unbounded).
    """

    name: str
    vectorized: bool = False
    caching: bool = False
    batch_limit: "int | None" = None


@runtime_checkable
class Backend(Protocol):
    """The measurement substrate behind every tuner and campaign.

    Implementations expose the GPU they measure (``spec``), their noise
    level (``sigma``), capability metadata (``info``) and the single
    evaluation entry point ``evaluate_batch``.  Decorator backends
    (caching, fault injection, retry) wrap another backend and may also
    expose ``begin_unit`` for work-unit-scoped state.
    """

    @property
    def spec(self) -> "GPUSpec": ...  # pragma: no cover - protocol

    @property
    def sigma(self) -> float: ...  # pragma: no cover - protocol

    @property
    def info(self) -> BackendInfo: ...  # pragma: no cover - protocol

    def evaluate_batch(
        self, requests: Sequence[EvalRequest]
    ) -> "list[EvalResult]": ...  # pragma: no cover - protocol


class BackendBase:
    """Shared conveniences for concrete backends.

    Subclasses implement ``evaluate_batch`` (and the ``spec`` / ``sigma``
    / ``info`` properties); the scalar helpers here are derived from it.
    """

    def evaluate_one(self, stencil, oc, setting, grid=None) -> EvalResult:
        """Evaluate a single point (a batch of one)."""
        return self.evaluate_batch([EvalRequest(stencil, oc, setting, grid)])[0]

    def time(self, stencil, oc, setting, grid=None) -> float:
        """Simulator-compatible scalar entry point: time or raise.

        Mirrors :meth:`repro.gpu.simulator.GPUSimulator.time` so a
        backend can stand wherever a simulator was accepted before.
        """
        return self.evaluate_one(stencil, oc, setting, grid=grid).value()


def as_backend(obj) -> "Backend":
    """Coerce *obj* to a :class:`Backend`.

    Accepts an existing backend (anything exposing ``evaluate_batch``) or
    a simulator-like object (anything exposing ``time``), which is
    wrapped in a :class:`~repro.engine.scalar.ScalarBackend`.  This keeps
    every pre-engine call site -- ``RandomSearch(GPUSimulator(...))`` and
    friends -- working unchanged.
    """
    if hasattr(obj, "evaluate_batch"):
        return obj
    if hasattr(obj, "time"):
        from .scalar import ScalarBackend

        return ScalarBackend(obj)
    raise TypeError(
        f"{type(obj).__name__} is neither a Backend (evaluate_batch) "
        "nor a simulator (time)"
    )


def iter_chunks(requests: Sequence[EvalRequest], limit: "int | None") -> Iterable:
    """Split *requests* into backend-sized chunks (identity when unbounded)."""
    if limit is None or len(requests) <= limit:
        yield requests
        return
    for i in range(0, len(requests), limit):
        yield requests[i : i + limit]
