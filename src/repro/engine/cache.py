"""Content-keyed memoization of evaluation results.

``CachingBackend`` wraps any backend and serves repeated requests from
memory: search restarts, cross-validation folds and genetic generations
re-visit the same (stencil, OC, setting, grid) points constantly, and
results are pure functions of that identity (noise included), so replays
are free.

Only settled outcomes are cached -- times and deterministic
:class:`~repro.errors.KernelLaunchError` crashes.  Transient errors a
fault-injecting backend may record are *not* cached (a retry must re-hit
the device), which is also why fault decorators wrap *around* the cache,
never inside it.
"""

from __future__ import annotations

from typing import Sequence

from .core import BackendBase, BackendInfo, EvalRequest, EvalResult, as_backend


class CachingBackend(BackendBase):
    """Memoizing decorator around another backend.

    The cache key is :meth:`EvalRequest.key` -- GPU identity is implicit
    because a backend instance measures exactly one GPU.  Duplicate
    requests inside one batch are deduplicated before reaching the inner
    backend (the first occurrence is the miss; the rest are hits).
    """

    def __init__(self, inner):
        self.inner = as_backend(inner)
        self._cache: dict[tuple, EvalResult] = {}
        self.hits = 0
        self.misses = 0

    @property
    def spec(self):
        return self.inner.spec

    @property
    def sigma(self) -> float:
        return self.inner.sigma

    @property
    def info(self) -> BackendInfo:
        inner = self.inner.info
        return BackendInfo(
            name=f"cached({inner.name})",
            vectorized=inner.vectorized,
            caching=True,
            batch_limit=inner.batch_limit,
        )

    def cache_info(self) -> dict:
        """Hit/miss accounting: ``{"hits", "misses", "size"}``."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._cache)}

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        out: list[EvalResult | None] = [None] * len(requests)
        keys = [r.key() for r in requests]
        miss_pos: dict[tuple, int] = {}
        miss_requests: list[EvalRequest] = []
        for i, key in enumerate(keys):
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                out[i] = cached
            elif key in miss_pos:
                self.hits += 1  # intra-batch duplicate of a pending miss
            else:
                self.misses += 1
                miss_pos[key] = len(miss_requests)
                miss_requests.append(requests[i])
        if miss_requests:
            results = self.inner.evaluate_batch(miss_requests)
            for key, pos in miss_pos.items():
                res = results[pos]
                if res.ok or res.crashed:
                    self._cache[key] = res
            for i, key in enumerate(keys):
                if out[i] is None:
                    out[i] = results[miss_pos[key]]
        return out  # type: ignore[return-value]
