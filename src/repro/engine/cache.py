"""Content-keyed memoization of evaluation results.

``CachingBackend`` wraps any backend and serves repeated requests from
memory: search restarts, cross-validation folds and genetic generations
re-visit the same (stencil, OC, setting, grid) points constantly, and
results are pure functions of that identity (noise included), so replays
are free.

Only settled outcomes are cached -- times and deterministic
:class:`~repro.errors.KernelLaunchError` crashes.  Transient errors a
fault-injecting backend may record are *not* cached (a retry must re-hit
the device), which is also why fault decorators wrap *around* the cache,
never inside it.
"""

from __future__ import annotations

from typing import Sequence

from .core import BackendBase, BackendInfo, EvalRequest, EvalResult, as_backend


class CachingBackend(BackendBase):
    """Memoizing decorator around another backend.

    The cache key is equivalent to :meth:`EvalRequest.key` -- GPU
    identity is implicit because a backend instance measures exactly one
    GPU.  Duplicate requests inside one batch are deduplicated before
    reaching the inner backend (the first occurrence is the miss; the
    rest are hits).

    Key construction is the cache's hot path (on a cold workload it runs
    once per request with zero amortizing hits), so stencil identities
    are interned to small integer tokens: hashing a key then costs a few
    machine words instead of re-hashing the stencil's full offset tuple
    on every lookup.  The intern table is keyed by object id with the
    stencil kept referenced (ids are only stable while the object is
    alive), falling back to content identity so equal stencils behind
    different objects share one token.
    """

    def __init__(self, inner):
        self.inner = as_backend(inner)
        self._cache: dict[tuple, EvalResult] = {}
        self._token_by_id: dict[int, tuple] = {}
        self._token_by_content: dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0

    def _stencil_token(self, stencil) -> int:
        entry = self._token_by_id.get(id(stencil))
        if entry is not None:
            return entry[1]
        content = stencil.cache_key()
        token = self._token_by_content.get(content)
        if token is None:
            token = len(self._token_by_content)
            self._token_by_content[content] = token
        self._token_by_id[id(stencil)] = (stencil, token)
        return token

    def _request_key(self, r: EvalRequest) -> tuple:
        # Same identity as EvalRequest.key() with the stencil component
        # collapsed to its intern token; setting.as_tuple() returns the
        # setting's stored tuple, so no per-request allocation there.
        return (
            self._stencil_token(r.stencil),
            r.oc.name,
            r.setting.as_tuple(),
            r.grid,
        )

    @property
    def spec(self):
        return self.inner.spec

    @property
    def sigma(self) -> float:
        return self.inner.sigma

    @property
    def info(self) -> BackendInfo:
        inner = self.inner.info
        return BackendInfo(
            name=f"cached({inner.name})",
            vectorized=inner.vectorized,
            caching=True,
            batch_limit=inner.batch_limit,
        )

    def cache_info(self) -> dict:
        """Hit/miss accounting: ``{"hits", "misses", "size"}``."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._cache)}

    def clear(self) -> None:
        self._cache.clear()
        self._token_by_id.clear()
        self._token_by_content.clear()
        self.hits = 0
        self.misses = 0

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        # Cold-path discipline: each request's key is hashed at most
        # three times (lookup, miss registration, result insertion) and
        # the per-request work is inlined -- on an all-miss batch this
        # loop is pure overhead on top of the inner backend, so it must
        # stay a small fraction of the inner backend's per-point cost.
        out: list[EvalResult | None] = [None] * len(requests)
        cache = self._cache
        token_by_id = self._token_by_id
        intern = self._stencil_token
        miss_pos: dict[tuple, int] = {}
        miss_requests: list[EvalRequest] = []
        miss_keys: list[tuple] = []
        slots: list[tuple[int, int]] = []
        hits = 0
        for i, r in enumerate(requests):
            entry = token_by_id.get(id(r.stencil))
            token = entry[1] if entry is not None else intern(r.stencil)
            key = (token, r.oc.name, r.setting.as_tuple(), r.grid)
            cached = cache.get(key)
            if cached is not None:
                hits += 1
                out[i] = cached
                continue
            n_miss = len(miss_requests)
            pos = miss_pos.setdefault(key, n_miss)
            if pos == n_miss:
                miss_requests.append(r)
                miss_keys.append(key)
            else:
                hits += 1  # intra-batch duplicate of a pending miss
            slots.append((i, pos))
        self.hits += hits
        self.misses += len(miss_requests)
        if miss_requests:
            results = self.inner.evaluate_batch(miss_requests)
            for key, res in zip(miss_keys, results):
                if res.ok or res.crashed:
                    cache[key] = res
            for i, pos in slots:
                out[i] = results[pos]
        return out  # type: ignore[return-value]
