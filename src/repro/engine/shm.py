"""Shared-memory transport for the parallel engine.

The pickle codec (:func:`~repro.engine.parallel.encode_requests`) ships
every request and result through the pool pipe; at campaign scale that
serialization is most of what the parent and workers do.  This module
replaces the hot path with ``multiprocessing.shared_memory``: the parent
packs a whole batch *once* into flat NumPy arrays inside one shared
segment (stencil-table indices, OC ids, setting columns, grid ids), the
workers attach and evaluate slices by index, and times come back through
a second shared ``(time_ms, status)`` array -- only chunk bounds, the two
segment names and a short error side-table ever cross the pipe.

Segment layout (request segment)::

    [ meta_len : uint64 ]
    [ meta JSON : meta_len bytes ]           stencil table, OC names,
    [ pad to 8-byte alignment ]              grid table, array offsets
    [ stencil_idx : int32[n]  ]
    [ oc_idx      : int32[n]  ]
    [ grid_idx    : int32[n]  ]
    [ settings    : int64[n, n_params] ]     layout-order columns

Result segment::

    [ times  : float64[n] ]                  NaN for non-ok rows
    [ status : uint8[n]   ]                  0 = ok, 1 = error

Error rows are rare (deterministic crashes plus injected faults), so
their ``(index, class_name, args)`` details travel back over the pipe
per chunk -- identical to the pickle codec's error rows, which keeps the
reassembled results bit-identical across transports.

Lifecycle rules: the parent creates both segments per batch, keeps them
alive across pool restarts (a re-dispatched chunk just overwrites its
disjoint slice with the same deterministic values) and unlinks them when
the batch settles -- success or propagated failure.  Workers only ever
attach and ``close()``; they never unlink.  Python's shared
``resource_tracker`` (inherited by both spawn and fork pool children)
provides the backstop unlink if the parent dies without cleanup, and
:func:`reap_stale_segments` sweeps segments whose embedded creator pid
is dead -- the case a SIGKILLed tree can leave behind.
"""

from __future__ import annotations

import atexit
import json
import os
import struct
import uuid
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from ..stencil.stencil import Stencil
from .core import EvalRequest, EvalResult

#: Every segment this repo creates is named ``repro-shm-<pid>-<tag>-<hex>``
#: so leak checks and the stale-segment reaper can tell ours apart (and
#: read the creator pid) from a bare ``/dev/shm`` listing.
SEGMENT_PREFIX = "repro-shm"

#: Where POSIX shared memory appears as files (Linux); leak detection is
#: a directory listing there.
SHM_DIR = "/dev/shm"

#: Parent-side ledger of segments created (name -> SharedMemory); the
#: atexit sweep unlinks anything a crashed batch left behind.
_CREATED: "dict[str, shared_memory.SharedMemory]" = {}

_HEADER = struct.Struct("<Q")


def _segment_name(tag: str) -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{tag}-{uuid.uuid4().hex[:8]}"


def create_segment(nbytes: int, tag: str = "seg") -> shared_memory.SharedMemory:
    """Create a tracked shared segment with this repo's naming scheme."""
    shm = shared_memory.SharedMemory(
        name=_segment_name(tag), create=True, size=max(1, int(nbytes))
    )
    _CREATED[shm.name] = shm
    return shm


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment (worker side; never unlinks)."""
    return shared_memory.SharedMemory(name=name)


def unlink_segment(shm: shared_memory.SharedMemory) -> bool:
    """Close and unlink a segment, tolerating double unlinks.

    Returns whether this call performed the unlink; a segment already
    removed (by a previous call, the resource tracker, or the reaper) is
    not an error -- cleanup paths may overlap after crashes.
    """
    _CREATED.pop(shm.name, None)
    try:
        shm.close()
    except OSError:
        pass
    try:
        shm.unlink()
        return True
    except FileNotFoundError:
        return False


def live_segments() -> "list[str]":
    """Names of segments this process created and has not unlinked."""
    return sorted(_CREATED)


def list_host_segments() -> "list[str]":
    """All ``repro-shm-*`` segments visible on the host (Linux)."""
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX + "-"))


def _creator_pid(name: str) -> "int | None":
    parts = name.split("-")
    try:
        return int(parts[2])
    except (IndexError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def reap_stale_segments() -> "list[str]":
    """Unlink ``repro-shm-*`` segments whose creator process is dead.

    The resource tracker already unlinks leaks on any orderly interpreter
    exit; this sweep covers the remaining case -- a whole process tree
    killed with SIGKILL -- by reading the creator pid out of the segment
    name.  Returns the names it removed.
    """
    reaped: list[str] = []
    for name in list_host_segments():
        if name in _CREATED:
            continue  # ours and still in use
        pid = _creator_pid(name)
        if pid is None or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(SHM_DIR, name))
            reaped.append(name)
        except OSError:
            pass
    return reaped


def _cleanup_created() -> None:  # pragma: no cover - atexit path
    for shm in list(_CREATED.values()):
        unlink_segment(shm)


atexit.register(_cleanup_created)


_AVAILABLE: "bool | None" = None


def shm_available() -> bool:
    """Whether POSIX shared memory actually works on this host (memoized)."""
    global _AVAILABLE
    if _AVAILABLE is not None:
        return _AVAILABLE
    _AVAILABLE = _probe_shm()
    return _AVAILABLE


def _probe_shm() -> bool:
    try:
        probe = shared_memory.SharedMemory(
            name=_segment_name("probe"), create=True, size=8
        )
    except (OSError, ValueError):
        return False
    probe.close()
    try:
        probe.unlink()
    except FileNotFoundError:
        pass
    return True


# ----------------------------------------------------------------------
# request packing (parent side)
# ----------------------------------------------------------------------
def pack_requests(requests: Sequence[EvalRequest]) -> shared_memory.SharedMemory:
    """Pack a request batch into one shared segment (see module layout).

    Stencils are deduplicated by object identity then content into a
    table -- built once for the whole batch, shared by every chunk --
    exactly like the pickle codec's per-chunk table, hoisted.
    """
    from ..optimizations.params import PARAM_NAMES

    n = len(requests)
    n_params = len(PARAM_NAMES)
    table: list[tuple] = []
    index_by_id: dict[int, int] = {}
    index_by_key: dict[tuple, int] = {}
    oc_ids: dict[str, int] = {}
    oc_names: list[str] = []
    grid_ids: dict["tuple | None", int] = {}
    grids: list = []

    stencil_idx = np.empty(n, dtype=np.int32)
    oc_idx = np.empty(n, dtype=np.int32)
    grid_idx = np.empty(n, dtype=np.int32)
    settings = np.empty((n, n_params), dtype=np.int64)

    for i, req in enumerate(requests):
        s = req.stencil
        idx = index_by_id.get(id(s))
        if idx is None:
            key = s.cache_key()
            idx = index_by_key.get(key)
            if idx is None:
                idx = len(table)
                table.append((s.ndim, [list(p) for p in s.sorted_offsets], s.name))
                index_by_key[key] = idx
            index_by_id[id(s)] = idx
        stencil_idx[i] = idx
        oi = oc_ids.get(req.oc.name)
        if oi is None:
            oi = oc_ids[req.oc.name] = len(oc_names)
            oc_names.append(req.oc.name)
        oc_idx[i] = oi
        gi = grid_ids.get(req.grid)
        if gi is None:
            gi = grid_ids[req.grid] = len(grids)
            grids.append(None if req.grid is None else list(req.grid))
        grid_idx[i] = gi
        settings[i] = req.setting.as_tuple()

    meta = json.dumps(
        {
            "n": n,
            "n_params": n_params,
            "stencils": table,
            "ocs": oc_names,
            "grids": grids,
        }
    ).encode()
    base = _HEADER.size + len(meta)
    base += (-base) % 8  # align the arrays
    arrays = (stencil_idx, oc_idx, grid_idx, settings)
    offsets = []
    off = base
    for a in arrays:
        offsets.append(off)
        off += a.nbytes

    shm = create_segment(off, tag="req")
    buf = shm.buf
    _HEADER.pack_into(buf, 0, len(meta))
    buf[_HEADER.size:_HEADER.size + len(meta)] = meta
    for a, o in zip(arrays, offsets):
        dst = np.ndarray(a.shape, dtype=a.dtype, buffer=buf, offset=o)
        dst[...] = a
    return shm


class DecodedBatch:
    """Worker-side view of a packed request segment.

    Decodes the meta block once per (worker, segment) -- stencil objects,
    canonical OC registry entries, grid tuples -- and serves request
    slices by index.  Settings are memoized per distinct tuple, mirroring
    :func:`~repro.engine.parallel.decode_requests`.
    """

    def __init__(self, shm: shared_memory.SharedMemory):
        from ..optimizations.combos import OC_BY_NAME

        self.shm = shm
        buf = shm.buf
        (meta_len,) = _HEADER.unpack_from(buf, 0)
        meta = json.loads(bytes(buf[_HEADER.size:_HEADER.size + meta_len]))
        self.n = int(meta["n"])
        n_params = int(meta["n_params"])
        self.stencils = [
            Stencil(ndim=ndim, offsets=frozenset(tuple(p) for p in offs), name=name)
            for ndim, offs, name in meta["stencils"]
        ]
        self.ocs = [OC_BY_NAME[name] for name in meta["ocs"]]
        self.grids = [None if g is None else tuple(g) for g in meta["grids"]]
        base = _HEADER.size + meta_len
        base += (-base) % 8
        off = base
        self.stencil_idx = np.ndarray(self.n, dtype=np.int32, buffer=buf, offset=off)
        off += self.stencil_idx.nbytes
        self.oc_idx = np.ndarray(self.n, dtype=np.int32, buffer=buf, offset=off)
        off += self.oc_idx.nbytes
        self.grid_idx = np.ndarray(self.n, dtype=np.int32, buffer=buf, offset=off)
        off += self.grid_idx.nbytes
        self.settings = np.ndarray(
            (self.n, n_params), dtype=np.int64, buffer=buf, offset=off
        )
        self._setting_memo: dict[tuple, object] = {}

    def requests(self, lo: int, hi: int) -> "list[EvalRequest]":
        from ..optimizations.params import PARAM_NAMES, ParamSetting

        memo = self._setting_memo
        out: list[EvalRequest] = []
        rows = self.settings[lo:hi].tolist()  # Python ints: exact key parity
        for k, values in enumerate(rows):
            i = lo + k
            key = tuple(values)
            setting = memo.get(key)
            if setting is None:
                setting = ParamSetting(**dict(zip(PARAM_NAMES, key)))
                memo[key] = setting
            out.append(
                EvalRequest(
                    self.stencils[self.stencil_idx[i]],
                    self.ocs[self.oc_idx[i]],
                    setting,
                    self.grids[self.grid_idx[i]],
                )
            )
        return out

    def close(self) -> None:
        # Drop the array views before closing the buffer they alias.
        self.stencil_idx = self.oc_idx = self.grid_idx = self.settings = None
        self.shm.close()


# ----------------------------------------------------------------------
# result array (both sides)
# ----------------------------------------------------------------------
def result_segment_size(n: int) -> int:
    return n * 8 + n  # float64 times + uint8 status


def result_views(
    shm: shared_memory.SharedMemory, n: int
) -> "tuple[np.ndarray, np.ndarray]":
    """(times, status) views over a result segment."""
    times = np.ndarray(n, dtype=np.float64, buffer=shm.buf, offset=0)
    status = np.ndarray(n, dtype=np.uint8, buffer=shm.buf, offset=n * 8)
    return times, status


def write_results(
    times: np.ndarray,
    status: np.ndarray,
    lo: int,
    results: Sequence[EvalResult],
) -> "list[tuple]":
    """Store a chunk's results at ``lo``; return its error side-table.

    Error rows are ``(global_index, class_name, args)`` -- the same
    identity the pickle codec ships, so reassembly is transport-exact.
    """
    errors: list[tuple] = []
    for k, res in enumerate(results):
        i = lo + k
        if res.error is None:
            times[i] = res.time_ms
            status[i] = 0
        else:
            times[i] = np.nan
            status[i] = 1
            errors.append((i, type(res.error).__name__, res.error.args))
    return errors


def read_results(
    times: np.ndarray, status: np.ndarray, error_rows: "list[tuple]"
) -> "list[EvalResult]":
    """Reassemble the full batch from the shared arrays + error rows."""
    from .. import errors as _errors
    from ..errors import ReproError

    out: "list[EvalResult | None]" = [None] * len(times)
    for i, cls_name, args in error_rows:
        cls = getattr(_errors, cls_name, ReproError)
        out[i] = EvalResult(error=cls(*args))
    ok_times = times.tolist()  # one bulk conversion to Python floats
    for i, r in enumerate(out):
        if r is None:
            assert status[i] == 0, f"row {i} has no result"
            out[i] = EvalResult(time_ms=ok_times[i])
    return out  # type: ignore[return-value]
