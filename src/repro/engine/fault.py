"""Fault injection as a backend decorator.

``FaultBackend`` lifts :class:`~repro.gpu.faults.FaultInjector` onto the
batched protocol: it draws the *same* deterministic fault decisions from
the *same* blake2b-keyed streams -- ``(seed, kind, unit, gpu, stencil,
oc, setting, attempt)`` -- but lets the clean subset of a batch flow to
a vectorized inner backend in one call.

Semantics relative to the sequential injector:

- A device loss raises :class:`~repro.errors.DeviceLostError` at the
  first affected request (in batch order) and voids the whole batch,
  just as it voided everything in flight before.
- Timeouts and transient failures are recorded as retryable errors on
  their result (the retry layer absorbs them); the affected request is
  withheld from the inner backend for that attempt.
- Corruption applies only to successfully measured times -- a
  deterministic :class:`~repro.errors.KernelLaunchError` crash never
  drew a corruption decision before and still does not.

Per-identity attempt counters advance exactly once per requested
evaluation, so retry convergence (the property the robustness suite
leans on: at sub-certainty rates a retried campaign reproduces the
fault-free one bit for bit) carries over unchanged.
"""

from __future__ import annotations

from typing import Sequence

from ..gpu.faults import FaultConfig, FaultInjector
from .core import BackendBase, BackendInfo, EvalRequest, EvalResult, as_backend


class FaultBackend(BackendBase):
    """Deterministic fault injection around another backend.

    Parameters
    ----------
    inner:
        The backend (or simulator-like object) that produces true
        timings.  Wrap the cache *inside* this decorator, never outside:
        transient faults must not be memoized.
    config:
        Per-class injection rates; with all rates zero the decorator is
        a transparent pass-through.
    seed:
        Fault-stream seed, independent of the measurement-noise seed.
    """

    def __init__(self, inner, config: FaultConfig, seed: int = 0):
        self.inner = as_backend(inner)
        self.injector = FaultInjector(self.inner, config, seed=seed)

    @property
    def spec(self):
        return self.inner.spec

    @property
    def sigma(self) -> float:
        return self.inner.sigma

    @property
    def config(self) -> FaultConfig:
        return self.injector.config

    @property
    def info(self) -> BackendInfo:
        inner = self.inner.info
        return BackendInfo(
            name=f"faulted({inner.name})",
            vectorized=inner.vectorized,
            caching=inner.caching,
            batch_limit=inner.batch_limit,
        )

    def begin_unit(self, unit_key: object) -> None:
        """Scope fault draws to one work unit (see FaultInjector)."""
        self.injector.begin_unit(unit_key)
        begin = getattr(self.inner, "begin_unit", None)
        if begin is not None:
            begin(unit_key)

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        inj = self.injector
        if not inj.config.enabled:
            return self.inner.evaluate_batch(requests)
        out: list[EvalResult | None] = [None] * len(requests)
        clean: list[int] = []
        meta: list[tuple[tuple, int]] = []
        for i, req in enumerate(requests):
            identity = inj.identity(req.stencil, req.oc, req.setting)
            attempt = inj.next_attempt(identity)
            err = inj.pre_fault(identity, attempt, req.oc)  # may raise DeviceLostError
            if err is not None:
                out[i] = EvalResult(error=err)
            else:
                clean.append(i)
                meta.append((identity, attempt))
        if clean:
            results = self.inner.evaluate_batch([requests[i] for i in clean])
            for (identity, attempt), i, res in zip(meta, clean, results):
                if res.ok:
                    t = inj.maybe_corrupt(identity, attempt, res.time_ms)
                    out[i] = EvalResult(time_ms=t)
                else:
                    out[i] = res
        return out  # type: ignore[return-value]
