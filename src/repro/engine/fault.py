"""Fault injection as a backend decorator.

``FaultBackend`` lifts :class:`~repro.gpu.faults.FaultInjector` onto the
batched protocol: it draws the *same* deterministic fault decisions from
the *same* blake2b-keyed streams -- ``(seed, kind, unit, gpu, stencil,
oc, setting, attempt)`` -- but lets the clean subset of a batch flow to
a vectorized inner backend in one call.

Semantics relative to the sequential injector:

- A device loss raises :class:`~repro.errors.DeviceLostError` at the
  first affected request (in batch order) and voids the whole batch,
  just as it voided everything in flight before.
- Timeouts and transient failures are recorded as retryable errors on
  their result (the retry layer absorbs them); the affected request is
  withheld from the inner backend for that attempt.
- Corruption applies only to successfully measured times -- a
  deterministic :class:`~repro.errors.KernelLaunchError` crash never
  drew a corruption decision before and still does not.

Per-identity attempt counters advance exactly once per requested
evaluation, so retry convergence (the property the robustness suite
leans on: at sub-certainty rates a retried campaign reproduces the
fault-free one bit for bit) carries over unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import (
    DeviceLostError,
    MeasurementTimeout,
    TransientMeasurementError,
)
from ..gpu.faults import _CORRUPT_VALUES, FaultConfig, FaultInjector
from .core import BackendBase, BackendInfo, EvalRequest, EvalResult, as_backend


class FaultBackend(BackendBase):
    """Deterministic fault injection around another backend.

    Parameters
    ----------
    inner:
        The backend (or simulator-like object) that produces true
        timings.  Wrap the cache *inside* this decorator, never outside:
        transient faults must not be memoized.
    config:
        Per-class injection rates; with all rates zero the decorator is
        a transparent pass-through.
    seed:
        Fault-stream seed, independent of the measurement-noise seed.
    """

    def __init__(self, inner, config: FaultConfig, seed: int = 0):
        self.inner = as_backend(inner)
        self.injector = FaultInjector(self.inner, config, seed=seed)

    @property
    def spec(self):
        return self.inner.spec

    @property
    def sigma(self) -> float:
        return self.inner.sigma

    @property
    def config(self) -> FaultConfig:
        return self.injector.config

    @property
    def info(self) -> BackendInfo:
        inner = self.inner.info
        return BackendInfo(
            name=f"faulted({inner.name})",
            vectorized=inner.vectorized,
            caching=inner.caching,
            batch_limit=inner.batch_limit,
        )

    def begin_unit(self, unit_key: object) -> None:
        """Scope fault draws to one work unit (see FaultInjector)."""
        self.injector.begin_unit(unit_key)
        begin = getattr(self.inner, "begin_unit", None)
        if begin is not None:
            begin(unit_key)

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        """Batched fault injection: draws computed per-batch, not per-request.

        Draw decisions come from :meth:`FaultInjector.batch_uniform`
        arrays (prefix-cached blake2b, one row per request) compared
        against the rates with NumPy; the per-request work that remains
        is building identity keys and materializing the -- rare -- fault
        rows.  Every draw uses the same ``(seed, kind, unit, gpu,
        stencil, oc, setting, attempt)`` key and every counter commits
        exactly as far as the sequential injector would, so the result
        stream is bit-identical to the scalar path.
        """
        inj = self.injector
        cfg = inj.config
        if not cfg.enabled:
            return self.inner.evaluate_batch(requests)
        n = len(requests)
        gpu = inj.sim.spec.name
        identities = inj.batch_identities(requests)
        attempts = inj.batch_attempts(identities)
        if cfg.device_lost_rate > 0:
            u = inj.batch_uniform("lost", identities, attempts)
            hit = np.nonzero(u < cfg.device_lost_rate)[0]
            if hit.size:
                k = int(hit[0])
                # The scalar loop advanced counters up to and including
                # the lost request before raising; replicate, then void.
                inj.commit_attempts(identities, attempts, upto=k + 1)
                raise DeviceLostError(
                    f"device {gpu} lost (unit {inj._unit_key!r}, "
                    f"attempt {attempts[k]})"
                )
        inj.commit_attempts(identities, attempts)
        out: list[EvalResult | None] = [None] * n
        faulted = np.zeros(n, dtype=bool)
        if cfg.timeout_rate > 0:
            u = inj.batch_uniform("timeout", identities, attempts)
            for i in np.nonzero(u < cfg.timeout_rate)[0].tolist():
                faulted[i] = True
                out[i] = EvalResult(
                    error=MeasurementTimeout(
                        f"kernel hung on {gpu} "
                        f"({requests[i].oc.name}, attempt {attempts[i]})"
                    )
                )
        if cfg.transient_rate > 0:
            u = inj.batch_uniform("transient", identities, attempts)
            # Timeout preempts transient for the same request.
            for i in np.nonzero(~faulted & (u < cfg.transient_rate))[0].tolist():
                faulted[i] = True
                out[i] = EvalResult(
                    error=TransientMeasurementError(
                        f"sporadic failure on {gpu} "
                        f"({requests[i].oc.name}, attempt {attempts[i]})"
                    )
                )
        clean = np.nonzero(~faulted)[0].tolist()
        if clean:
            results = self.inner.evaluate_batch([requests[i] for i in clean])
            corrupted: dict[int, float] = {}
            if cfg.corrupt_rate > 0:
                # Corruption only ever applied to successful measurements.
                ok_idx = [i for i, res in zip(clean, results) if res.ok]
                if ok_idx:
                    idents = [identities[i] for i in ok_idx]
                    atts = [attempts[i] for i in ok_idx]
                    u = inj.batch_uniform("corrupt", idents, atts)
                    hits = np.nonzero(u < cfg.corrupt_rate)[0].tolist()
                    if hits:
                        u2 = inj.batch_uniform(
                            "corrupt-kind",
                            [idents[j] for j in hits],
                            [atts[j] for j in hits],
                        )
                        kinds = np.minimum(
                            (u2 * len(_CORRUPT_VALUES)).astype(np.int64),
                            len(_CORRUPT_VALUES) - 1,
                        ).tolist()
                        for j, kind in zip(hits, kinds):
                            corrupted[ok_idx[j]] = _CORRUPT_VALUES[kind]
            for i, res in zip(clean, results):
                if res.ok:
                    out[i] = EvalResult(time_ms=corrupted.get(i, res.time_ms))
                else:
                    out[i] = res
        return out  # type: ignore[return-value]
