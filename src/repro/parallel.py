"""Shared multi-core worker-pool utility.

Everything in this repo that fans work out across processes -- the
:class:`~repro.engine.parallel.ParallelBackend`, the sharded
:class:`~repro.profiling.runner.CampaignRunner`, per-class GBDT tree
fitting and fold-parallel cross-validation -- goes through one
:class:`WorkerPool` so process lifecycle, context selection and
worker-death reporting behave identically everywhere.

Design rules:

- ``workers=1`` never touches :mod:`multiprocessing` at all: tasks run
  in-process, in order, through exactly the same function objects, so
  the sequential path *is* the parallel path with the pool removed.
- The pool is **spawn-safe**: task functions and payloads must be
  picklable (module-level functions, plain-data arguments).  ``spawn``
  is the default context because it works on every platform and never
  inherits ad-hoc parent state; ``fork`` is available where process
  startup cost matters (tests, Linux-only tools).
- A worker that dies (killed, segfaulted, OOM) surfaces as
  :class:`~repro.errors.WorkerLostError` -- a :class:`TransientError`
  subclass -- so callers treat it like any other retryable fault
  instead of a crashed program.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

from .errors import WorkerLostError

#: Worker-pool contexts supported everywhere a ``context`` parameter
#: appears.  ``spawn`` is the portable default; ``fork`` starts workers
#: far faster on POSIX (no interpreter + NumPy re-import per worker).
POOL_CONTEXTS = ("spawn", "fork")


def resolve_workers(workers: "int | None") -> int:
    """Normalize a worker-count argument.

    ``None`` or ``0`` means "one worker per usable CPU"; negative counts
    are rejected.  Callers that want the sequential path pass ``1``.
    """
    if workers is None or workers == 0:
        import os

        try:
            n = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            n = os.cpu_count() or 1
        return max(1, n)
    w = int(workers)
    if w < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return w


class WorkerPool:
    """A persistent process pool with an exact ``workers=1`` bypass.

    Parameters
    ----------
    workers:
        Process count.  ``1`` runs everything in-process (no pool, no
        pickling); ``None``/``0`` auto-sizes to the CPU count.
    context:
        ``"spawn"`` (default, portable) or ``"fork"`` (fast startup,
        POSIX only).
    initializer, initargs:
        Run once in every worker before any task; used to ship large
        shared payloads (datasets, backend specs) exactly once per
        worker instead of once per task.  With ``workers=1`` the
        initializer runs in-process, once, before the first task.
    """

    def __init__(
        self,
        workers: "int | None" = 1,
        context: str = "spawn",
        initializer: "Callable | None" = None,
        initargs: tuple = (),
    ):
        if context not in POOL_CONTEXTS:
            raise ValueError(
                f"unknown pool context {context!r} (choose from {POOL_CONTEXTS})"
            )
        self.workers = resolve_workers(workers)
        self.context = context
        self._initializer = initializer
        self._initargs = initargs
        self._executor: "ProcessPoolExecutor | None" = None
        self._initialized_inline = False

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self.context),
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._executor

    def restart(self) -> None:
        """Discard a (possibly broken) executor; the next map builds a
        fresh one.  Used by callers that treat a worker death as a
        retryable fault."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def map(self, fn: Callable, tasks: "Sequence | Iterable") -> list:
        """Apply *fn* to every task, returning results in task order.

        With ``workers=1`` this is literally ``[fn(t) for t in tasks]``
        (after running the initializer in-process once).  Otherwise the
        tasks are submitted to the pool and gathered in order; a worker
        death raises :class:`WorkerLostError` once every submitted
        future has settled, so no zombie work stays in flight.
        """
        tasks = list(tasks)
        if self.workers <= 1:
            if self._initializer is not None and not self._initialized_inline:
                self._initializer(*self._initargs)
                self._initialized_inline = True
            return [fn(t) for t in tasks]
        ex = self._ensure_executor()
        futures = [ex.submit(fn, t) for t in tasks]
        wait(futures)
        out = []
        lost = None
        for fut in futures:
            try:
                out.append(fut.result())
            except BrokenProcessPool as e:
                lost = WorkerLostError(
                    f"worker process died while executing {getattr(fn, '__name__', fn)!r}"
                )
                lost.__cause__ = e
                break
        if lost is not None:
            self.restart()
            raise lost
        return out

    def map_unordered(self, fn: Callable, tasks: "Sequence | Iterable"):
        """Yield ``(index, result)`` pairs as tasks finish.

        The sequential path yields in task order; the pooled path yields
        in completion order.  Worker deaths raise :class:`WorkerLostError`
        exactly as :meth:`map` does.
        """
        tasks = list(tasks)
        if self.workers <= 1:
            if self._initializer is not None and not self._initialized_inline:
                self._initializer(*self._initargs)
                self._initialized_inline = True
            for i, t in enumerate(tasks):
                yield i, fn(t)
            return
        ex = self._ensure_executor()
        pending = {ex.submit(fn, t): i for i, t in enumerate(tasks)}
        try:
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    i = pending.pop(fut)
                    try:
                        yield i, fut.result()
                    except BrokenProcessPool as e:
                        lost = WorkerLostError(
                            "worker process died while executing "
                            f"{getattr(fn, '__name__', fn)!r}"
                        )
                        lost.__cause__ = e
                        self.restart()
                        raise lost
        finally:
            for fut in pending:
                fut.cancel()
