"""First-order optimizers.

Adam matches the paper's training setup (Section V-A3: Adam with learning
rates 1e-4 / 5e-4); plain SGD is kept for ablations and tests.
"""

from __future__ import annotations

import numpy as np

from ...errors import ModelError


class Optimizer:
    """Updates a fixed list of (param, grad) array pairs in place."""

    def step(self, params_and_grads: "list[tuple[np.ndarray, np.ndarray]]") -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ModelError(f"lr must be positive, got {lr}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params_and_grads) -> None:
        for param, grad in params_and_grads:
            if self.momentum > 0.0:
                v = self._velocity.setdefault(id(param), np.zeros_like(param))
                v *= self.momentum
                v -= self.lr * grad
                param += v
            else:
                param -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ModelError(f"lr must be positive, got {lr}")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params_and_grads) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for param, grad in params_and_grads:
            m = self._m.setdefault(id(param), np.zeros_like(param))
            v = self._v.setdefault(id(param), np.zeros_like(param))
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
