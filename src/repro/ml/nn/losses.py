"""Training losses: softmax cross-entropy and mean squared error."""

from __future__ import annotations

import numpy as np

from ...errors import ModelError


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy against integer labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    with respect to the logits (softmax minus one-hot, averaged).
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ModelError(f"logits must be 2-D, got {logits.shape}")
        y = np.asarray(labels, dtype=np.int64).ravel()
        if y.shape[0] != logits.shape[0]:
            raise ModelError("label/logit count mismatch")
        z = logits - logits.max(axis=1, keepdims=True)
        log_probs = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
        self._probs = np.exp(log_probs)
        self._labels = y
        return float(-log_probs[np.arange(y.shape[0]), y].mean())

    def backward(self) -> np.ndarray:
        g = self._probs.copy()
        g[np.arange(self._labels.shape[0]), self._labels] -= 1.0
        return g / self._labels.shape[0]

    @staticmethod
    def probabilities(logits: np.ndarray) -> np.ndarray:
        z = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)


class MSELoss:
    """Mean squared error on a single regression output."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        p = pred.reshape(pred.shape[0], -1)
        t = np.asarray(target, dtype=np.float64).reshape(p.shape[0], -1)
        if p.shape != t.shape:
            raise ModelError(f"pred {p.shape} vs target {t.shape}")
        self._diff = p - t
        return float((self._diff**2).mean())

    def backward(self) -> np.ndarray:
        return 2.0 * self._diff / self._diff.size
