"""A small NumPy neural-network library (the TensorFlow substitute)."""

from .layers import ConvND, Dense, Dropout, Flatten, Layer, ReLU
from .losses import MSELoss, SoftmaxCrossEntropy
from .models import (
    ConvMLPRegressor,
    ConvNetClassifier,
    FcNetClassifier,
    MLPRegressor,
)
from .network import Sequential, TwoBranch, train_epochs
from .optimizers import SGD, Adam, Optimizer

__all__ = [
    "Adam",
    "ConvMLPRegressor",
    "ConvND",
    "ConvNetClassifier",
    "Dense",
    "Dropout",
    "FcNetClassifier",
    "Flatten",
    "Layer",
    "MLPRegressor",
    "MSELoss",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "SoftmaxCrossEntropy",
    "TwoBranch",
    "train_epochs",
]
