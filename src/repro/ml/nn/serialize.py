"""Layer/network state export for the NumPy neural models.

Networks are built at :meth:`fit` time, so a fitted estimator's identity
is its layer sequence plus the learned parameter arrays.  The helpers
here export that as plain nested dicts (arrays stay ``np.ndarray``; the
JSON codec in :mod:`repro.ml.serialize` handles byte-exact encoding) and
rebuild networks whose forward pass is bit-identical to the original:
weights are restored verbatim and every other forward-pass ingredient
(conv gather tables, layer order) is a deterministic function of the
recorded shapes.

Dropout layers serialize by rate only -- they are identity at inference
time, which is the only mode a deserialized model runs in.
"""

from __future__ import annotations

import numpy as np

from ...errors import ModelError
from .layers import ConvND, Dense, Dropout, Flatten, Layer, ReLU
from .network import Sequential, TwoBranch

_THROWAWAY_SEED = 0


def _rng() -> np.random.Generator:
    # Constructors draw initial weights from an rng; the draws are
    # overwritten with the saved arrays immediately, so any seed works.
    return np.random.default_rng(_THROWAWAY_SEED)


def layer_state(layer: Layer) -> dict:
    """One layer as a ``{"type": ..., ...}`` dict."""
    if isinstance(layer, Dense):
        return {"type": "dense", "W": layer.W, "b": layer.b}
    if isinstance(layer, ReLU):
        return {"type": "relu"}
    if isinstance(layer, Flatten):
        return {"type": "flatten"}
    if isinstance(layer, ConvND):
        return {
            "type": "convnd",
            "in_channels": layer.in_channels,
            "out_channels": layer.out_channels,
            "spatial": list(layer.spatial),
            "kernel": layer.kernel,
            "W": layer.W,
            "b": layer.b,
        }
    if isinstance(layer, Dropout):
        return {"type": "dropout", "rate": layer.rate}
    raise ModelError(f"cannot serialize layer type {type(layer).__name__}")


def layer_from_state(doc: dict) -> Layer:
    """Inverse of :func:`layer_state`."""
    kind = doc.get("type")
    if kind == "dense":
        W = np.asarray(doc["W"], dtype=np.float64)
        layer = Dense(W.shape[0], W.shape[1], _rng())
        layer.W = W
        layer.b = np.asarray(doc["b"], dtype=np.float64)
        return layer
    if kind == "relu":
        return ReLU()
    if kind == "flatten":
        return Flatten()
    if kind == "convnd":
        layer = ConvND(
            int(doc["in_channels"]),
            int(doc["out_channels"]),
            tuple(int(s) for s in doc["spatial"]),
            int(doc["kernel"]),
            _rng(),
        )
        layer.W = np.asarray(doc["W"], dtype=np.float64)
        layer.b = np.asarray(doc["b"], dtype=np.float64)
        return layer
    if kind == "dropout":
        return Dropout(float(doc["rate"]), _rng())
    raise ModelError(f"unknown layer type {kind!r} in network state")


def net_state(net: "Sequential | TwoBranch") -> dict:
    """A network as nested layer-state lists."""
    if isinstance(net, Sequential):
        return {
            "type": "sequential",
            "layers": [layer_state(l) for l in net.layers],
        }
    if isinstance(net, TwoBranch):
        return {
            "type": "twobranch",
            "branch_a": net_state(net.branch_a),
            "branch_b": net_state(net.branch_b),
            "head": net_state(net.head),
        }
    raise ModelError(f"cannot serialize network type {type(net).__name__}")


def net_from_state(doc: dict) -> "Sequential | TwoBranch":
    """Inverse of :func:`net_state`."""
    kind = doc.get("type")
    if kind == "sequential":
        return Sequential([layer_from_state(l) for l in doc["layers"]])
    if kind == "twobranch":
        return TwoBranch(
            net_from_state(doc["branch_a"]),
            net_from_state(doc["branch_b"]),
            net_from_state(doc["head"]),
        )
    raise ModelError(f"unknown network type {kind!r} in state")
