"""Neural-network layers (NumPy, float64, batch-first).

The stencil tensors are tiny (9^2 or 9^3 cells), so convolutions are
implemented with a precomputed gather-index table ("im2col" generalized to
N dimensions): the forward pass is one fancy-index plus one matmul, the
backward pass one matmul plus one scatter-add -- fully vectorized per the
repository's NumPy performance conventions.
"""

from __future__ import annotations

import math
from itertools import product

import numpy as np

from ...errors import ModelError


class Layer:
    """Base layer: forward/backward plus parameter export for optimizers."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params_and_grads(self) -> "list[tuple[np.ndarray, np.ndarray]]":
        return []


class Dense(Layer):
    """Fully connected layer ``y = x W + b`` with He initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = math.sqrt(2.0 / in_features)
        self.W = rng.standard_normal((in_features, out_features)) * scale
        self.b = np.zeros(out_features)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.W.shape[0]:
            raise ModelError(
                f"Dense expected (*, {self.W.shape[0]}), got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward without a training forward pass")
        self.dW = self._x.T @ grad_out
        self.db = grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def params_and_grads(self):
        return [(self.W, self.dW), (self.b, self.db)]


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward without a training forward pass")
        return grad_out * self._mask


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ModelError("backward without a forward pass")
        return grad_out.reshape(self._shape)


class ConvND(Layer):
    """N-dimensional valid convolution over ``(batch, channels, *spatial)``.

    Works for the paper's 2-D (9x9) and 3-D (9x9x9) stencil tensors with a
    3^d filter (Section V-A3).  The gather-index table maps every output
    position to the flat input offsets its receptive field covers; both
    passes are then dense linear algebra.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        spatial: tuple[int, ...],
        kernel: int,
        rng: np.random.Generator,
    ):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.spatial = tuple(spatial)
        self.kernel = int(kernel)
        self.out_spatial = tuple(s - self.kernel + 1 for s in self.spatial)
        if any(o < 1 for o in self.out_spatial):
            raise ModelError(
                f"kernel {kernel} too large for spatial shape {spatial}"
            )
        fan_in = in_channels * self.kernel ** len(self.spatial)
        self.W = rng.standard_normal((fan_in, out_channels)) * math.sqrt(2.0 / fan_in)
        self.b = np.zeros(out_channels)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._index = self._build_index()
        self._cols: np.ndarray | None = None
        self._flat_in_size = in_channels * math.prod(self.spatial)

    def _spatial_strides(self) -> "tuple[list[int], int]":
        spatial_strides = []
        acc = 1
        for s in reversed(self.spatial):
            spatial_strides.append(acc)
            acc *= s
        return list(reversed(spatial_strides)), math.prod(self.spatial)

    def _build_index(self) -> np.ndarray:
        """``(n_out_positions, fan_in)`` flat indices into (C, *spatial).

        A flat offset decomposes as position + channel + tap
        contributions, so the table is an outer sum of three small
        vectors instead of a positions x channels x taps Python loop
        (for the 3-D tensors that loop dominates model construction).
        Column order is channel-major then tap, matching
        :meth:`_build_index_loop`.
        """
        strides, chan_stride = self._spatial_strides()
        strides = np.asarray(strides, dtype=np.int64)
        pos = np.stack(
            np.meshgrid(
                *(np.arange(o) for o in self.out_spatial), indexing="ij"
            ),
            axis=-1,
        ).reshape(-1, len(self.spatial))
        taps = np.stack(
            np.meshgrid(
                *(np.arange(self.kernel),) * len(self.spatial), indexing="ij"
            ),
            axis=-1,
        ).reshape(-1, len(self.spatial))
        pos_off = pos @ strides                                 # (P,)
        tap_off = taps @ strides                                # (T,)
        chan_off = np.arange(self.in_channels) * chan_stride    # (C,)
        fan_off = (chan_off[:, None] + tap_off[None, :]).reshape(-1)
        return (pos_off[:, None] + fan_off[None, :]).astype(np.int64)

    def _build_index_loop(self) -> np.ndarray:
        """Reference (per-element loop) index construction.

        Kept as the semantic definition of the gather table; the parity
        test asserts :meth:`_build_index` reproduces it exactly.
        """
        strides, chan_stride = self._spatial_strides()
        out_positions = list(product(*(range(o) for o in self.out_spatial)))
        taps = list(product(*(range(self.kernel) for _ in self.spatial)))
        idx = np.empty(
            (len(out_positions), self.in_channels * len(taps)), dtype=np.int64
        )
        for p, pos in enumerate(out_positions):
            col = 0
            for c in range(self.in_channels):
                base = c * chan_stride
                for tap in taps:
                    off = base
                    for d in range(len(self.spatial)):
                        off += (pos[d] + tap[d]) * strides[d]
                    idx[p, col] = off
                    col += 1
        return idx

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        expected = (self.in_channels, *self.spatial)
        if x.shape[1:] != expected:
            raise ModelError(f"ConvND expected (*, {expected}), got {x.shape}")
        flat = x.reshape(x.shape[0], -1)
        cols = flat[:, self._index]  # (batch, positions, fan_in)
        self._cols = cols if training else None
        out = cols @ self.W + self.b  # (batch, positions, out_channels)
        out = np.moveaxis(out, -1, 1)  # (batch, out_channels, positions)
        return out.reshape(x.shape[0], self.out_channels, *self.out_spatial)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise ModelError("backward without a training forward pass")
        batch = grad_out.shape[0]
        g = grad_out.reshape(batch, self.out_channels, -1)
        g = np.moveaxis(g, 1, -1)  # (batch, positions, out_channels)
        self.db = g.sum(axis=(0, 1))
        # dW: contract batch and positions.
        self.dW = np.tensordot(self._cols, g, axes=([0, 1], [0, 1]))
        dcols = g @ self.W.T  # (batch, positions, fan_in)
        dflat = np.zeros((batch, self._flat_in_size))
        np.add.at(
            dflat,
            (np.arange(batch)[:, None, None], self._index[None, :, :]),
            dcols,
        )
        return dflat.reshape(batch, self.in_channels, *self.spatial)

    def params_and_grads(self):
        return [(self.W, self.dW), (self.b, self.db)]


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ModelError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
