"""The paper's four neural models as scikit-style estimators.

Classification (Section IV-D):

- :class:`ConvNetClassifier` (Fig. 7): convolutional layers over the
  assigned binary tensor, fully connected head, softmax over merged OC
  classes.  Adapting to 3-D stencils only raises the convolution
  dimensionality.
- :class:`FcNetClassifier`: fully connected layers over the flattened
  tensor; its accuracy is sensitive to the layer count, which is exposed.

Regression (Section IV-E):

- :class:`MLPRegressor` (Fig. 13 studies its depth/width): hidden ReLU
  layers over the flat feature vector (stencil features, OC flags, encoded
  parameters, hardware characteristics), inputs max-normalized to [0, 1].
- :class:`ConvMLPRegressor` (Fig. 8): a CNN branch over the assigned
  tensor concatenated with an MLP branch over the non-stencil features.

Execution times are modeled in ``log2`` space and converted back in
:meth:`predict` so MAPE is reported on real milliseconds.

Training defaults follow Section V-A3 (Adam; batch 50 for classifiers,
256 for regressors).  The paper trains 100 epochs at lr 1e-4 / 5e-4; the
scaled-down default here uses 1e-3 with proportionally fewer epochs --
pass ``lr``/``epochs`` to reproduce the paper's schedule exactly.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import ModelError, NotFittedError
from ..preprocess import LogTimeTransform, MaxNormalizer
from .layers import ConvND, Dense, Flatten, ReLU
from .losses import MSELoss, SoftmaxCrossEntropy
from .network import Sequential, TwoBranch, train_epochs
from .optimizers import Adam
from .serialize import net_from_state, net_state


def _as_tensor_batch(tensors: np.ndarray) -> np.ndarray:
    """Normalize ``(n, edge^d)`` stencil tensors to ``(n, 1, edge^d)``."""
    t = np.asarray(tensors, dtype=np.float64)
    if t.ndim < 3:
        raise ModelError(f"expected batched spatial tensors, got {t.shape}")
    return t[:, None, ...]


class ConvNetClassifier:
    """CNN over assigned tensors predicting the best merged OC class."""

    def __init__(
        self,
        n_classes: int,
        channels: tuple[int, int] = (16, 32),
        dense: int = 64,
        kernel: int = 3,
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 50,
        seed: int = 0,
    ):
        self.n_classes = int(n_classes)
        self.channels = channels
        self.dense = int(dense)
        self.kernel = int(kernel)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self._net: Sequential | None = None

    def _build(self, spatial: tuple[int, ...], rng: np.random.Generator) -> Sequential:
        c1, c2 = self.channels
        s1 = tuple(s - self.kernel + 1 for s in spatial)
        s2 = tuple(s - self.kernel + 1 for s in s1)
        flat = c2 * math.prod(s2)
        return Sequential(
            [
                ConvND(1, c1, spatial, self.kernel, rng),
                ReLU(),
                ConvND(c1, c2, s1, self.kernel, rng),
                ReLU(),
                Flatten(),
                Dense(flat, self.dense, rng),
                ReLU(),
                Dense(self.dense, self.n_classes, rng),
            ]
        )

    def fit(self, tensors: np.ndarray, labels: np.ndarray) -> "ConvNetClassifier":
        X = _as_tensor_batch(tensors)
        y = np.asarray(labels, dtype=np.int64).ravel()
        rng = np.random.default_rng(self.seed)
        self._net = self._build(X.shape[2:], rng)
        loss = SoftmaxCrossEntropy()
        net = self._net

        def fwd_bwd(batch, targets):
            (xb,) = batch
            logits = net.forward(xb, training=True)
            value = loss.forward(logits, targets)
            net.backward(loss.backward())
            return value

        self.history_ = train_epochs(
            (X,), y, fwd_bwd, net.params_and_grads, Adam(self.lr),
            self.epochs, self.batch_size, rng,
        )
        return self

    def predict_proba(self, tensors: np.ndarray) -> np.ndarray:
        if self._net is None:
            raise NotFittedError("ConvNetClassifier.predict before fit")
        logits = self._net.forward(_as_tensor_batch(tensors), training=False)
        return SoftmaxCrossEntropy.probabilities(logits)

    def predict(self, tensors: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(tensors), axis=1)

    def state_dict(self) -> dict:
        """Fitted state for :mod:`repro.ml.serialize`."""
        if self._net is None:
            raise NotFittedError("ConvNetClassifier.state_dict before fit")
        return {
            "hyper": dict(
                n_classes=self.n_classes,
                channels=list(self.channels),
                dense=self.dense,
                kernel=self.kernel,
                lr=self.lr,
                epochs=self.epochs,
                batch_size=self.batch_size,
                seed=self.seed,
            ),
            "net": net_state(self._net),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ConvNetClassifier":
        hyper = dict(state["hyper"])
        hyper["channels"] = tuple(hyper["channels"])
        model = cls(**hyper)
        model._net = net_from_state(state["net"])
        return model


class FcNetClassifier:
    """Fully connected classifier over flattened assigned tensors."""

    def __init__(
        self,
        n_classes: int,
        hidden: tuple[int, ...] = (128, 64),
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 50,
        seed: int = 0,
    ):
        if not hidden:
            raise ModelError("FcNet needs at least one hidden layer")
        self.n_classes = int(n_classes)
        self.hidden = tuple(int(h) for h in hidden)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self._net: Sequential | None = None

    def fit(self, tensors: np.ndarray, labels: np.ndarray) -> "FcNetClassifier":
        X = np.asarray(tensors, dtype=np.float64).reshape(len(tensors), -1)
        y = np.asarray(labels, dtype=np.int64).ravel()
        rng = np.random.default_rng(self.seed)
        layers: list = []
        width = X.shape[1]
        for h in self.hidden:
            layers += [Dense(width, h, rng), ReLU()]
            width = h
        layers.append(Dense(width, self.n_classes, rng))
        self._net = Sequential(layers)
        loss = SoftmaxCrossEntropy()
        net = self._net

        def fwd_bwd(batch, targets):
            (xb,) = batch
            value = loss.forward(net.forward(xb, training=True), targets)
            net.backward(loss.backward())
            return value

        self.history_ = train_epochs(
            (X,), y, fwd_bwd, net.params_and_grads, Adam(self.lr),
            self.epochs, self.batch_size, rng,
        )
        return self

    def predict_proba(self, tensors: np.ndarray) -> np.ndarray:
        if self._net is None:
            raise NotFittedError("FcNetClassifier.predict before fit")
        X = np.asarray(tensors, dtype=np.float64).reshape(len(tensors), -1)
        return SoftmaxCrossEntropy.probabilities(self._net.forward(X))

    def predict(self, tensors: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(tensors), axis=1)

    def state_dict(self) -> dict:
        """Fitted state for :mod:`repro.ml.serialize`."""
        if self._net is None:
            raise NotFittedError("FcNetClassifier.state_dict before fit")
        return {
            "hyper": dict(
                n_classes=self.n_classes,
                hidden=list(self.hidden),
                lr=self.lr,
                epochs=self.epochs,
                batch_size=self.batch_size,
                seed=self.seed,
            ),
            "net": net_state(self._net),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FcNetClassifier":
        hyper = dict(state["hyper"])
        hyper["hidden"] = tuple(hyper["hidden"])
        model = cls(**hyper)
        model._net = net_from_state(state["net"])
        return model


class MLPRegressor:
    """Multilayer perceptron predicting ``log2`` execution time.

    ``n_layers`` and ``layer_size`` span the Fig. 13 sensitivity grid
    (4-10 layers, 2^4-2^10 units).
    """

    def __init__(
        self,
        n_layers: int = 7,
        layer_size: int = 64,
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 256,
        seed: int = 0,
    ):
        if n_layers < 1:
            raise ModelError(f"n_layers must be >= 1, got {n_layers}")
        self.n_layers = int(n_layers)
        self.layer_size = int(layer_size)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self._net: Sequential | None = None
        self._norm = MaxNormalizer()

    def fit(self, X: np.ndarray, times_ms: np.ndarray) -> "MLPRegressor":
        Xn = self._norm.fit_transform(np.asarray(X, dtype=np.float64))
        y = LogTimeTransform.forward(times_ms)[:, None]
        rng = np.random.default_rng(self.seed)
        layers: list = []
        width = Xn.shape[1]
        for _ in range(self.n_layers):
            layers += [Dense(width, self.layer_size, rng), ReLU()]
            width = self.layer_size
        layers.append(Dense(width, 1, rng))
        self._net = Sequential(layers)
        loss = MSELoss()
        net = self._net

        def fwd_bwd(batch, targets):
            (xb,) = batch
            value = loss.forward(net.forward(xb, training=True), targets)
            net.backward(loss.backward())
            return value

        self.history_ = train_epochs(
            (Xn,), y, fwd_bwd, net.params_and_grads, Adam(self.lr),
            self.epochs, self.batch_size, rng,
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted execution times in milliseconds."""
        if self._net is None:
            raise NotFittedError("MLPRegressor.predict before fit")
        Xn = self._norm.transform(np.asarray(X, dtype=np.float64))
        return LogTimeTransform.inverse(self._net.forward(Xn).ravel())

    def state_dict(self) -> dict:
        """Fitted state for :mod:`repro.ml.serialize`."""
        if self._net is None:
            raise NotFittedError("MLPRegressor.state_dict before fit")
        return {
            "hyper": dict(
                n_layers=self.n_layers,
                layer_size=self.layer_size,
                lr=self.lr,
                epochs=self.epochs,
                batch_size=self.batch_size,
                seed=self.seed,
            ),
            "net": net_state(self._net),
            "norm_scale": self._norm.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MLPRegressor":
        model = cls(**state["hyper"])
        model._net = net_from_state(state["net"])
        model._norm = MaxNormalizer.from_state(state["norm_scale"])
        return model


class ConvMLPRegressor:
    """Fig. 8: CNN over the assigned tensor + MLP over the flat features."""

    def __init__(
        self,
        channels: tuple[int, int] = (8, 16),
        mlp_hidden: tuple[int, ...] = (64, 64),
        head_hidden: int = 64,
        kernel: int = 3,
        lr: float = 1e-3,
        epochs: int = 20,
        batch_size: int = 256,
        seed: int = 0,
    ):
        self.channels = channels
        self.mlp_hidden = tuple(int(h) for h in mlp_hidden)
        self.head_hidden = int(head_hidden)
        self.kernel = int(kernel)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self._net: TwoBranch | None = None
        self._norm = MaxNormalizer()

    def fit(
        self, tensors: np.ndarray, aux: np.ndarray, times_ms: np.ndarray
    ) -> "ConvMLPRegressor":
        Xt = _as_tensor_batch(tensors)
        Xa = self._norm.fit_transform(np.asarray(aux, dtype=np.float64))
        y = LogTimeTransform.forward(times_ms)[:, None]
        rng = np.random.default_rng(self.seed)

        c1, c2 = self.channels
        spatial = Xt.shape[2:]
        s1 = tuple(s - self.kernel + 1 for s in spatial)
        s2 = tuple(s - self.kernel + 1 for s in s1)
        cnn = Sequential(
            [
                ConvND(1, c1, spatial, self.kernel, rng),
                ReLU(),
                ConvND(c1, c2, s1, self.kernel, rng),
                ReLU(),
                Flatten(),
            ]
        )
        layers: list = []
        width = Xa.shape[1]
        for h in self.mlp_hidden:
            layers += [Dense(width, h, rng), ReLU()]
            width = h
        mlp = Sequential(layers)
        joint = c2 * math.prod(s2) + width
        head = Sequential(
            [
                Dense(joint, self.head_hidden, rng),
                ReLU(),
                Dense(self.head_hidden, 1, rng),
            ]
        )
        self._net = TwoBranch(cnn, mlp, head)
        loss = MSELoss()
        net = self._net

        def fwd_bwd(batch, targets):
            xt, xa = batch
            value = loss.forward(net.forward(xt, xa, training=True), targets)
            net.backward(loss.backward())
            return value

        self.history_ = train_epochs(
            (Xt, Xa), y, fwd_bwd, net.params_and_grads, Adam(self.lr),
            self.epochs, self.batch_size, rng,
        )
        return self

    def predict(self, tensors: np.ndarray, aux: np.ndarray) -> np.ndarray:
        """Predicted execution times in milliseconds."""
        if self._net is None:
            raise NotFittedError("ConvMLPRegressor.predict before fit")
        Xt = _as_tensor_batch(tensors)
        Xa = self._norm.transform(np.asarray(aux, dtype=np.float64))
        return LogTimeTransform.inverse(self._net.forward(Xt, Xa).ravel())

    def state_dict(self) -> dict:
        """Fitted state for :mod:`repro.ml.serialize`."""
        if self._net is None:
            raise NotFittedError("ConvMLPRegressor.state_dict before fit")
        return {
            "hyper": dict(
                channels=list(self.channels),
                mlp_hidden=list(self.mlp_hidden),
                head_hidden=self.head_hidden,
                kernel=self.kernel,
                lr=self.lr,
                epochs=self.epochs,
                batch_size=self.batch_size,
                seed=self.seed,
            ),
            "net": net_state(self._net),
            "norm_scale": self._norm.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ConvMLPRegressor":
        hyper = dict(state["hyper"])
        hyper["channels"] = tuple(hyper["channels"])
        hyper["mlp_hidden"] = tuple(hyper["mlp_hidden"])
        model = cls(**hyper)
        model._net = net_from_state(state["net"])
        model._norm = MaxNormalizer.from_state(state["norm_scale"])
        return model
