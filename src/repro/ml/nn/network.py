"""Network containers and the minibatch training loop.

:class:`Sequential` chains layers over a single input; :class:`TwoBranch`
implements the ConvMLP topology (Fig. 8): a CNN branch over the assigned
tensor and an MLP branch over the flat feature vector, concatenated into a
shared head.
"""

from __future__ import annotations

import numpy as np

from ...errors import ModelError
from .layers import Layer
from .optimizers import Optimizer


class Sequential:
    """A plain layer chain."""

    def __init__(self, layers: "list[Layer]"):
        if not layers:
            raise ModelError("empty layer list")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params_and_grads(self):
        out = []
        for layer in self.layers:
            out.extend(layer.params_and_grads())
        return out


class TwoBranch:
    """Two input branches concatenated into a head (ConvMLP, Fig. 8)."""

    def __init__(self, branch_a: Sequential, branch_b: Sequential, head: Sequential):
        self.branch_a = branch_a
        self.branch_b = branch_b
        self.head = head
        self._split: int | None = None

    def forward(
        self, xa: np.ndarray, xb: np.ndarray, training: bool = False
    ) -> np.ndarray:
        if xa.shape[0] != xb.shape[0]:
            raise ModelError("branch batch sizes differ")
        ya = self.branch_a.forward(xa, training=training)
        yb = self.branch_b.forward(xb, training=training)
        if ya.ndim != 2 or yb.ndim != 2:
            raise ModelError("branch outputs must be flat (use Flatten)")
        self._split = ya.shape[1]
        return self.head.forward(np.concatenate([ya, yb], axis=1), training=training)

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._split is None:
            raise ModelError("backward without a forward pass")
        g = self.head.backward(grad)
        ga = self.branch_a.backward(g[:, : self._split])
        gb = self.branch_b.backward(g[:, self._split :])
        return ga, gb

    def params_and_grads(self):
        return (
            self.branch_a.params_and_grads()
            + self.branch_b.params_and_grads()
            + self.head.params_and_grads()
        )


def train_epochs(
    inputs: "tuple[np.ndarray, ...]",
    targets: np.ndarray,
    forward_backward,
    params_and_grads,
    optimizer: Optimizer,
    epochs: int,
    batch_size: int,
    rng: np.random.Generator,
) -> "list[float]":
    """Generic minibatch loop; returns the mean loss per epoch.

    ``forward_backward(batch_inputs, batch_targets)`` must run the forward
    pass, populate layer gradients via backprop and return the scalar loss.
    """
    n = targets.shape[0]
    if any(x.shape[0] != n for x in inputs):
        raise ModelError("input/target batch size mismatch")
    history: list[float] = []
    for _ in range(epochs):
        order = rng.permutation(n)
        losses: list[float] = []
        for start in range(0, n, batch_size):
            sel = order[start : start + batch_size]
            batch = tuple(x[sel] for x in inputs)
            loss = forward_backward(batch, targets[sel])
            optimizer.step(params_and_grads())
            losses.append(loss)
        history.append(float(np.mean(losses)))
    return history
