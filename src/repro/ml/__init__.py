"""Machine-learning substrate: metrics, GBDT and neural models."""

from . import nn
from .gbdt import GBDTClassifier, GBRegressor
from .metrics import accuracy, confusion_matrix, kendall_tau, mape, pcc, top_k_accuracy
from .nn import ConvMLPRegressor, ConvNetClassifier, FcNetClassifier, MLPRegressor
from .preprocess import LogTimeTransform, MaxNormalizer, one_hot
from .serialize import model_from_state, model_state
from .tree import RegressionTree

__all__ = [
    "model_from_state",
    "model_state",
    "ConvMLPRegressor",
    "ConvNetClassifier",
    "FcNetClassifier",
    "GBDTClassifier",
    "GBRegressor",
    "LogTimeTransform",
    "MLPRegressor",
    "MaxNormalizer",
    "RegressionTree",
    "accuracy",
    "confusion_matrix",
    "kendall_tau",
    "mape",
    "nn",
    "one_hot",
    "pcc",
    "top_k_accuracy",
]
