"""Machine-learning substrate: metrics, GBDT, neural and analytical models."""

from . import nn
from .analytical import (
    AnalyticalPredictor,
    AnalyticalRecommendation,
    AnalyticalSelector,
)
from .gbdt import GBDTClassifier, GBRegressor
from .metrics import accuracy, confusion_matrix, kendall_tau, mape, pcc, top_k_accuracy
from .nn import ConvMLPRegressor, ConvNetClassifier, FcNetClassifier, MLPRegressor
from .preprocess import LogTimeTransform, MaxNormalizer, augment_features, one_hot
from .serialize import model_from_state, model_state
from .tree import RegressionTree

__all__ = [
    "model_from_state",
    "model_state",
    "AnalyticalPredictor",
    "AnalyticalRecommendation",
    "AnalyticalSelector",
    "ConvMLPRegressor",
    "ConvNetClassifier",
    "FcNetClassifier",
    "GBDTClassifier",
    "GBRegressor",
    "LogTimeTransform",
    "MLPRegressor",
    "MaxNormalizer",
    "RegressionTree",
    "accuracy",
    "augment_features",
    "confusion_matrix",
    "kendall_tau",
    "mape",
    "nn",
    "one_hot",
    "pcc",
    "top_k_accuracy",
]
