"""Evaluation metrics used by the paper.

- Classification accuracy (Fig. 9).
- Mean absolute percentage error, MAPE (Fig. 12/13).
- Pearson correlation coefficient, PCC (Section III-C).
- Kendall rank correlation (used by the ordinal-regression related work
  [6]; provided for the ranking ablation).
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


def _check_same_shape(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ModelError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ModelError("empty arrays")
    return a, b


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    t, p = _check_same_shape(y_true, y_pred)
    return float((t == p).mean())


def mape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute percentage error, in percent.

    ``y_true`` must be strictly positive (execution times are).
    """
    t, p = _check_same_shape(y_true, y_pred)
    if (t <= 0).any():
        raise ModelError("MAPE requires strictly positive targets")
    return float(100.0 * np.mean(np.abs(t - p) / t))


def pcc(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient of two samples."""
    x, y = _check_same_shape(a, b)
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return 1.0 if np.allclose(x - x.mean(), y - y.mean()) else 0.0
    return float(np.corrcoef(x, y)[0, 1])


def kendall_tau(a: np.ndarray, b: np.ndarray) -> float:
    """Kendall rank correlation (tau-b via scipy)."""
    from scipy.stats import kendalltau

    x, y = _check_same_shape(a, b)
    tau = kendalltau(x, y).statistic
    return float(tau) if np.isfinite(tau) else 0.0


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """``(n_classes, n_classes)`` matrix; rows true, columns predicted."""
    t = np.asarray(y_true, dtype=np.int64).ravel()
    p = np.asarray(y_pred, dtype=np.int64).ravel()
    if t.shape != p.shape:
        raise ModelError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size and (t.min() < 0 or t.max() >= n_classes or p.min() < 0 or p.max() >= n_classes):
        raise ModelError("labels out of range")
    m = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(m, (t, p), 1)
    return m


def top_k_accuracy(y_true: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of samples whose true label is among the top-k scores."""
    t = np.asarray(y_true, dtype=np.int64).ravel()
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 2 or s.shape[0] != t.shape[0]:
        raise ModelError(f"scores shape {s.shape} incompatible with {t.shape}")
    topk = np.argsort(-s, axis=1)[:, :k]
    return float((topk == t[:, None]).any(axis=1).mean())
