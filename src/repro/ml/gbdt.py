"""Gradient-boosted decision trees: GBRegressor and GBDT classifier.

The paper builds these with XGBoost v1.4.2 [5]; this is a from-scratch
NumPy reimplementation of the same algorithm family: Newton boosting with
shrinkage, row subsampling and L2-regularized leaves, squared loss for
regression and softmax cross-entropy (one tree per class per round) for
multiclass classification.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError, NotFittedError
from ..parallel import WorkerPool
from .preprocess import one_hot
from .tree import RegressionTree

# Per-worker state for parallel per-class tree fitting: the training
# matrix and tree hyperparameters ship once per worker through the pool
# initializer; per-task payloads then carry only row indices and the
# per-class gradient/hessian vectors.
_FIT_X: "np.ndarray | None" = None
_FIT_TREE_PARAMS: "dict | None" = None


def _init_fit_worker(X: np.ndarray, tree_params: dict) -> None:
    global _FIT_X, _FIT_TREE_PARAMS
    _FIT_X = X
    _FIT_TREE_PARAMS = tree_params


def _fit_class_tree(task: tuple) -> RegressionTree:
    """Fit one class's tree for one boosting round (pool task)."""
    rows, grad, hess = task
    assert _FIT_X is not None and _FIT_TREE_PARAMS is not None
    return RegressionTree(**_FIT_TREE_PARAMS).fit(_FIT_X[rows], grad, hess)


class _GBBase:
    """Shared hyperparameters and helpers.

    ``workers`` parallelizes the per-class tree fits inside each
    boosting round of :class:`GBDTClassifier` across a process pool
    (bit-identical to the sequential fit: every class's gradients come
    from the softmax of the round-start scores, so the K fits of a round
    are independent).  :class:`GBRegressor` grows one tree per round and
    has nothing to fan out, so it accepts but ignores the parameter.
    """

    def __init__(
        self,
        n_rounds: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        seed: int = 0,
        workers: int = 1,
        pool_context: str = "spawn",
    ):
        if not 0.0 < subsample <= 1.0:
            raise ModelError(f"subsample must be in (0, 1], got {subsample}")
        if n_rounds < 1:
            raise ModelError(f"n_rounds must be >= 1, got {n_rounds}")
        self.n_rounds = int(n_rounds)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)
        self.gamma = float(gamma)
        self.subsample = float(subsample)
        self.seed = int(seed)
        self.workers = int(workers) if workers is not None else 1
        self.pool_context = pool_context

    def _tree_params(self) -> dict:
        return dict(
            max_depth=self.max_depth,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
        )

    def _new_tree(self) -> RegressionTree:
        return RegressionTree(
            max_depth=self.max_depth,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
        )

    def _sample_rows(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.subsample >= 1.0:
            return np.arange(n)
        k = max(2, int(round(self.subsample * n)))
        return rng.choice(n, size=k, replace=False)

    def _hyper_state(self) -> dict:
        """Constructor arguments needed to rebuild this estimator.

        ``workers``/``pool_context`` only shape *training* concurrency,
        so they are deliberately not part of a fitted model's identity.
        """
        return dict(
            n_rounds=self.n_rounds,
            learning_rate=self.learning_rate,
            max_depth=self.max_depth,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            subsample=self.subsample,
            seed=self.seed,
        )


class GBRegressor(_GBBase):
    """Gradient boosting for regression (squared loss)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ModelError(f"X has {X.shape[0]} rows, y has {y.shape[0]}")
        rng = np.random.default_rng(self.seed)
        self.base_score_ = float(y.mean())
        self.trees_: list[RegressionTree] = []
        pred = np.full(y.shape[0], self.base_score_)
        ones = np.ones_like(y)
        for _ in range(self.n_rounds):
            rows = self._sample_rows(y.shape[0], rng)
            grad = pred - y  # d/dpred of 0.5*(pred - y)^2
            tree = self._new_tree().fit(X[rows], grad[rows], ones[rows])
            self.trees_.append(tree)
            pred += self.learning_rate * tree.predict(X)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "trees_"):
            raise NotFittedError("GBRegressor.predict before fit")
        X = np.asarray(X, dtype=np.float64)
        pred = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            pred += self.learning_rate * tree.predict(X)
        return pred

    def state_dict(self) -> dict:
        """Fitted state for :mod:`repro.ml.serialize` (see there for the
        bit-identity contract)."""
        if not hasattr(self, "trees_"):
            raise NotFittedError("GBRegressor.state_dict before fit")
        return {
            "hyper": self._hyper_state(),
            "base_score": self.base_score_,
            "trees": [t.to_arrays() for t in self.trees_],
        }

    @classmethod
    def from_state(cls, state: dict) -> "GBRegressor":
        model = cls(**state["hyper"])
        model.base_score_ = float(state["base_score"])
        model.trees_ = [
            RegressionTree.from_arrays(a, **model._tree_params())
            for a in state["trees"]
        ]
        return model

    def staged_predict(self, X: np.ndarray) -> "list[np.ndarray]":
        """Predictions after each boosting round (learning curves)."""
        if not hasattr(self, "trees_"):
            raise NotFittedError("GBRegressor.staged_predict before fit")
        X = np.asarray(X, dtype=np.float64)
        pred = np.full(X.shape[0], self.base_score_)
        out = []
        for tree in self.trees_:
            pred = pred + self.learning_rate * tree.predict(X)
            out.append(pred.copy())
        return out


class GBDTClassifier(_GBBase):
    """Multiclass gradient boosting with a softmax objective.

    One tree per class per round, fitted to the softmax gradients
    ``p_k - y_k`` with hessians ``p_k (1 - p_k)``.  With ``workers > 1``
    the K per-class fits of each round run on a process pool: the
    probabilities ``P`` come from the round-start scores, so class k's
    tree never depends on class j's tree from the same round, and the
    score updates are applied in class order afterwards -- the fitted
    model is bit-identical to the sequential one.
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBDTClassifier":
        X = np.asarray(X, dtype=np.float64)
        labels = np.asarray(y, dtype=np.int64).ravel()
        if X.shape[0] != labels.shape[0]:
            raise ModelError(f"X has {X.shape[0]} rows, y has {labels.shape[0]}")
        if labels.min() < 0:
            raise ModelError("negative class labels")
        self.n_classes_ = int(labels.max()) + 1
        rng = np.random.default_rng(self.seed)
        Y = one_hot(labels, self.n_classes_)
        n = labels.shape[0]
        F = np.zeros((n, self.n_classes_))
        self.trees_: list[list[RegressionTree]] = []
        if self.workers > 1 and self.n_classes_ > 1:
            self._fit_parallel(X, Y, F, rng)
            return self
        for _ in range(self.n_rounds):
            P = _softmax(F)
            rows = self._sample_rows(n, rng)
            round_trees: list[RegressionTree] = []
            for k in range(self.n_classes_):
                grad = P[:, k] - Y[:, k]
                hess = np.maximum(P[:, k] * (1.0 - P[:, k]), 1e-6)
                tree = self._new_tree().fit(X[rows], grad[rows], hess[rows])
                round_trees.append(tree)
                F[:, k] += self.learning_rate * tree.predict(X)
            self.trees_.append(round_trees)
        return self

    def _fit_parallel(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        F: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Boost with per-class tree fits fanned out to a worker pool.

        The pool persists across rounds (X ships once per worker via the
        initializer); each round submits K small (rows, grad, hess)
        tasks and gathers the trees in class order.
        """
        n = Y.shape[0]
        with WorkerPool(
            self.workers,
            context=self.pool_context,
            initializer=_init_fit_worker,
            initargs=(X, self._tree_params()),
        ) as pool:
            for _ in range(self.n_rounds):
                P = _softmax(F)
                rows = self._sample_rows(n, rng)
                tasks = []
                for k in range(self.n_classes_):
                    grad = P[:, k] - Y[:, k]
                    hess = np.maximum(P[:, k] * (1.0 - P[:, k]), 1e-6)
                    tasks.append((rows, grad[rows], hess[rows]))
                round_trees = pool.map(_fit_class_tree, tasks)
                for k, tree in enumerate(round_trees):
                    F[:, k] += self.learning_rate * tree.predict(X)
                self.trees_.append(round_trees)

    def state_dict(self) -> dict:
        """Fitted state for :mod:`repro.ml.serialize`."""
        if not hasattr(self, "trees_"):
            raise NotFittedError("GBDTClassifier.state_dict before fit")
        return {
            "hyper": self._hyper_state(),
            "n_classes": self.n_classes_,
            "trees": [
                [t.to_arrays() for t in round_trees]
                for round_trees in self.trees_
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "GBDTClassifier":
        model = cls(**state["hyper"])
        model.n_classes_ = int(state["n_classes"])
        params = model._tree_params()
        model.trees_ = [
            [RegressionTree.from_arrays(a, **params) for a in round_trees]
            for round_trees in state["trees"]
        ]
        return model

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class scores ``(n, n_classes)``."""
        if not hasattr(self, "trees_"):
            raise NotFittedError("GBDTClassifier before fit")
        X = np.asarray(X, dtype=np.float64)
        F = np.zeros((X.shape[0], self.n_classes_))
        for round_trees in self.trees_:
            for k, tree in enumerate(round_trees):
                F[:, k] += self.learning_rate * tree.predict(X)
        return F

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return _softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return np.argmax(self.decision_function(X), axis=1)


def _softmax(F: np.ndarray) -> np.ndarray:
    z = F - F.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)
