"""Input/target preprocessing for the learned models.

Section IV-E: "we normalize the inputs to the range of [0, 1] by dividing
by the maximum value of each input feature" (for MLP and ConvMLP), and
numerical parameters receive a ``log2`` transform (done upstream in
:meth:`ParamSetting.encode`).  Execution times span three orders of
magnitude, so regressors operate on ``log2(time)`` internally and convert
back for MAPE reporting.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError


class MaxNormalizer:
    """Scale each column to [0, 1] by its training-set maximum magnitude.

    Columns that are constant zero are passed through unchanged.  Negative
    inputs (log2 of sub-unit values) scale into [-1, 1]; the paper's
    feature ranges are non-negative after encoding, so this matches its
    [0, 1] recipe on real data while remaining total.
    """

    def __init__(self) -> None:
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MaxNormalizer":
        X = np.asarray(X, dtype=np.float64)
        scale = np.abs(X).max(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.scale_ is None:
            raise NotFittedError("MaxNormalizer.transform before fit")
        return np.asarray(X, dtype=np.float64) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def state_dict(self) -> "np.ndarray | None":
        """Fitted column scales (``None`` before :meth:`fit`)."""
        return self.scale_

    @classmethod
    def from_state(cls, scale: "np.ndarray | None") -> "MaxNormalizer":
        norm = cls()
        if scale is not None:
            norm.scale_ = np.asarray(scale, dtype=np.float64)
        return norm


class LogTimeTransform:
    """Bijection between execution times (ms) and the model's target space.

    ``forward`` maps times to ``log2``, ``inverse`` maps predictions back.
    """

    @staticmethod
    def forward(times_ms: np.ndarray) -> np.ndarray:
        t = np.asarray(times_ms, dtype=np.float64)
        if (t <= 0).any():
            raise ValueError("times must be strictly positive")
        return np.log2(t)

    @staticmethod
    def inverse(log_times: np.ndarray) -> np.ndarray:
        return np.exp2(np.asarray(log_times, dtype=np.float64))


def augment_features(X: np.ndarray, extra: np.ndarray) -> np.ndarray:
    """Column-concatenate a base feature matrix with extra features.

    The hybrid predictor path: analytical metrics from
    :func:`repro.analysis.perfmodel.analytical_features` ride along as
    additional columns of the standard regression features.  Shapes are
    validated here so a row mismatch fails loudly at build time, not as
    a silent mis-alignment inside the model.
    """
    X = np.asarray(X, dtype=np.float64)
    extra = np.asarray(extra, dtype=np.float64)
    if extra.ndim == 1:
        extra = extra.reshape(-1, 1)
    if X.shape[0] != extra.shape[0]:
        raise ValueError(
            f"augment_features: {X.shape[0]} base rows != {extra.shape[0]} extra rows"
        )
    return np.concatenate([X, extra], axis=1)


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """``(n, n_classes)`` one-hot float64 encoding."""
    y = np.asarray(labels, dtype=np.int64).ravel()
    out = np.zeros((y.shape[0], n_classes), dtype=np.float64)
    out[np.arange(y.shape[0]), y] = 1.0
    return out
