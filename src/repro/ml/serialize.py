"""Byte-exact model (de)serialization for every trained estimator.

The serving subsystem (:mod:`repro.serve`) persists trained models as
JSON artifacts; its contract is that a save -> load round trip reproduces
predictions **bit-identically**.  Plain JSON numbers would hold for
float64 (Python's encoder emits ``repr`` which round-trips), but weight
matrices as digit strings are bulky and slow, so arrays travel as
base64-encoded little-endian bytes with dtype and shape recorded --
exact by construction, compact, and endian-stable across platforms.

Two layers:

- :func:`encode_array` / :func:`decode_array` -- the ndarray <-> JSON
  codec, applied recursively to any nested state by
  :func:`state_to_jsonable` / :func:`state_from_jsonable`.
- :func:`model_state` / :func:`model_from_state` -- class-tagged envelope
  around each estimator's ``state_dict()`` / ``from_state()`` hooks
  (GBDT in :mod:`repro.ml.gbdt`, neural nets in
  :mod:`repro.ml.nn.models`).
"""

from __future__ import annotations

import base64

import numpy as np

from ..errors import ModelError
from .analytical import AnalyticalPredictor, AnalyticalSelector
from .gbdt import GBDTClassifier, GBRegressor
from .nn import (
    ConvMLPRegressor,
    ConvNetClassifier,
    FcNetClassifier,
    MLPRegressor,
)

#: Marker key identifying an encoded ndarray inside jsonable state.
_ARRAY_TAG = "__ndarray__"

#: Estimator classes a model envelope may reference, keyed by class name.
MODEL_CLASSES = {
    cls.__name__: cls
    for cls in (
        GBRegressor,
        GBDTClassifier,
        MLPRegressor,
        ConvMLPRegressor,
        ConvNetClassifier,
        FcNetClassifier,
        AnalyticalPredictor,
        AnalyticalSelector,
    )
}


# ----------------------------------------------------------------------
# ndarray codec
# ----------------------------------------------------------------------
def encode_array(a: np.ndarray) -> dict:
    """Encode an ndarray as dtype + shape + base64 little-endian bytes."""
    a = np.ascontiguousarray(a)
    le = a.astype(a.dtype.newbyteorder("<"), copy=False)
    return {
        _ARRAY_TAG: True,
        "dtype": a.dtype.str.lstrip("<>|="),
        "shape": list(a.shape),
        "data": base64.b64encode(le.tobytes()).decode("ascii"),
    }


def decode_array(doc: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        dtype = np.dtype("<" + doc["dtype"])
        raw = base64.b64decode(doc["data"].encode("ascii"), validate=True)
        a = np.frombuffer(raw, dtype=dtype).reshape(doc["shape"])
    except (KeyError, ValueError, TypeError) as e:
        raise ModelError(f"malformed array document: {e}") from None
    # Native byte order, writable copy.
    return a.astype(dtype.newbyteorder("="), copy=True)


def state_to_jsonable(state):
    """Recursively convert a state tree to JSON-serializable values."""
    if isinstance(state, np.ndarray):
        return encode_array(state)
    if isinstance(state, dict):
        return {str(k): state_to_jsonable(v) for k, v in state.items()}
    if isinstance(state, (list, tuple)):
        return [state_to_jsonable(v) for v in state]
    if isinstance(state, (np.integer,)):
        return int(state)
    if isinstance(state, (np.floating,)):
        return float(state)
    if state is None or isinstance(state, (bool, int, float, str)):
        return state
    raise ModelError(f"cannot serialize state value of type {type(state).__name__}")


def state_from_jsonable(doc):
    """Inverse of :func:`state_to_jsonable` (arrays decoded in place)."""
    if isinstance(doc, dict):
        if doc.get(_ARRAY_TAG):
            return decode_array(doc)
        return {k: state_from_jsonable(v) for k, v in doc.items()}
    if isinstance(doc, list):
        return [state_from_jsonable(v) for v in doc]
    return doc


# ----------------------------------------------------------------------
# model envelope
# ----------------------------------------------------------------------
def model_state(model) -> dict:
    """A fitted estimator as a JSON-ready, class-tagged document."""
    name = type(model).__name__
    if name not in MODEL_CLASSES:
        raise ModelError(
            f"cannot serialize model type {name!r}; "
            f"known: {sorted(MODEL_CLASSES)}"
        )
    return {"class": name, "state": state_to_jsonable(model.state_dict())}


def model_from_state(doc: dict):
    """Rebuild a fitted estimator from :func:`model_state` output."""
    try:
        name = doc["class"]
        state = doc["state"]
    except (KeyError, TypeError) as e:
        raise ModelError(f"malformed model document: missing {e}") from None
    cls = MODEL_CLASSES.get(name)
    if cls is None:
        raise ModelError(
            f"unknown model class {name!r}; known: {sorted(MODEL_CLASSES)}"
        )
    return cls.from_state(state_from_jsonable(state))
