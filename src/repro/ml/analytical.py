"""The analytical model family: zero-campaign predictor and selector.

Third family next to the GBDT and neural estimators: instead of
learning from a profiling campaign, these wrap the static
source-metric extraction of :mod:`repro.analysis.perfmodel`.  Their
"training set" is empty -- the state is just configuration -- but they
implement the same ``state_dict`` / ``from_state`` contract so they
serialize through :mod:`repro.ml.serialize` and publish as registry
artifacts like any trained model.

- :class:`AnalyticalPredictor` prices raw ``(stencil, OC, setting,
  gpu)`` requests in milliseconds per time step.
- :class:`AnalyticalSelector` picks the best OC for a stencil by
  *statically autotuning* each candidate combination: the
  :class:`~repro.analysis.backend.AnalyticalBackend` plugs the
  estimator into :func:`repro.tuning.tune`, so every candidate gets the
  paper's random walk plus coordinate refinement driven purely by
  static estimates, and the cheapest tuned optimum wins.  A far smarter
  zero-artifact fallback than the fixed heuristic ladder, at the cost
  of a fraction of a second of static analysis per (stencil, GPU) pair
  (memoized thereafter).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

#: Candidate combinations the selector prices by default: the heuristic
#: ladder's rungs plus the merge/prefetch variants that win on stencils
#: the ladder mis-serves.  Kept small -- cost is candidates x settings
#: static estimates per new (stencil, GPU) pair.
DEFAULT_CANDIDATES = (
    "naive",
    "ST",
    "ST_RT",
    "ST_RT_PR",
    "ST_RT_TB",
    "ST_PR",
    "CM",
    "TB",
)


def _estimate_ms(stencil, oc, setting, gpu, grid=None) -> float:
    """Static time estimate; ``inf`` when the configuration cannot run."""
    from ..analysis.ir import ParseError
    from ..analysis.perfmodel import EstimateError, estimate_kernel
    from ..errors import KernelLaunchError, OptimizationError

    try:
        return estimate_kernel(stencil, oc, setting, gpu, grid=grid).time_ms
    except (KernelLaunchError, OptimizationError, EstimateError, ParseError):
        return math.inf


class AnalyticalPredictor:
    """Campaign-free runtime predictor backed by the static perfmodel.

    Unlike the learned regressors it consumes raw requests, not feature
    matrices: the metric extraction needs the actual kernel source, and
    a preprocessed feature row cannot be turned back into one.
    """

    name = "analytical"

    def __init__(self, grid: "tuple[int, ...] | None" = None):
        self.grid = tuple(grid) if grid else None

    # ------------------------------------------------------------------
    def predict_one(self, stencil, oc, setting, gpu: str) -> float:
        """Estimated ms per time step (``inf`` if it cannot launch)."""
        return _estimate_ms(stencil, oc, setting, gpu, self.grid)

    def predict_requests(self, requests) -> np.ndarray:
        """Vectorized :meth:`predict_one` over (stencil, oc, setting, gpu)."""
        return np.array(
            [self.predict_one(s, oc, st, gpu) for s, oc, st, gpu in requests],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"grid": list(self.grid) if self.grid else None}

    @classmethod
    def from_state(cls, state: dict) -> "AnalyticalPredictor":
        if not isinstance(state, dict):
            raise ModelError("AnalyticalPredictor state must be a dict")
        grid = state.get("grid")
        return cls(grid=tuple(int(v) for v in grid) if grid else None)


@dataclass(frozen=True)
class AnalyticalRecommendation:
    """One statically-tuned pick: OC, best setting, estimated time."""

    oc: str
    setting: object
    time_ms: float
    trials: int


class AnalyticalSelector:
    """Static-autotuning OC selector; no campaign, no artifact data.

    Each candidate combination is tuned through
    :func:`repro.tuning.tune` on an
    :class:`~repro.analysis.backend.AnalyticalBackend` -- the same
    random walk with coordinate refinement the profiling campaign's
    oracle uses, except every "measurement" is a static estimate.  The
    candidate with the cheapest tuned optimum wins.  Candidates with no
    estimable setting are skipped; ``naive`` is always feasible, so the
    selector is total on generator stencils.

    ``n_settings`` is the random-walk sample count per candidate (the
    campaign's knob of the same name); ``refine=False`` drops the
    coordinate descent for a cheaper but less accurate ranking.
    """

    name = "analytical"

    def __init__(
        self,
        candidates: "tuple[str, ...] | None" = None,
        n_settings: int = 2,
        seed: int = 0,
        grid: "tuple[int, ...] | None" = None,
        refine: bool = True,
    ):
        self.candidates = tuple(candidates) if candidates else DEFAULT_CANDIDATES
        self.n_settings = int(n_settings)
        self.seed = int(seed)
        self.grid = tuple(grid) if grid else None
        self.refine = bool(refine)
        self._memo: dict[tuple, AnalyticalRecommendation] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def select(self, stencil, gpu: str) -> str:
        """Name of the estimated-fastest candidate OC for *stencil*."""
        return self.recommend(stencil, gpu).oc

    def select_many(self, stencils, gpu: str) -> "list[str]":
        return [self.select(s, gpu) for s in stencils]

    def recommend(self, stencil, gpu: str) -> AnalyticalRecommendation:
        """Full tuned pick: best (OC, setting) and its estimated ms."""
        key = (stencil.cache_key(), gpu)
        with self._lock:
            cached = self._memo.get(key)
        if cached is not None:
            return cached
        rec = self._recommend_uncached(stencil, gpu)
        with self._lock:
            self._memo[key] = rec
        return rec

    def _recommend_uncached(self, stencil, gpu: str) -> AnalyticalRecommendation:
        from ..analysis.backend import AnalyticalBackend
        from ..errors import TuningError
        from ..optimizations.combos import OC
        from ..tuning import tune

        backend = AnalyticalBackend(gpu)
        best: "AnalyticalRecommendation | None" = None
        for name in self.candidates:
            try:
                oc = OC.parse(name)
            except Exception:
                continue
            try:
                res = tune(
                    stencil,
                    oc=oc,
                    backend=backend,
                    strategy="random",
                    seed=self.seed,
                    grid=self.grid,
                    n_settings=self.n_settings,
                    refine=self.refine,
                )
            except TuningError:
                continue
            t = res.best_time_ms
            if res.best_setting is None or t is None or not math.isfinite(t):
                continue
            if best is None or t < best.time_ms:
                best = AnalyticalRecommendation(
                    oc=name, setting=res.best_setting, time_ms=float(t),
                    trials=res.trials,
                )
        if best is None:
            raise ModelError(
                f"analytical selector: no estimable candidate for "
                f"{getattr(stencil, 'name', stencil)!r} on {gpu}"
            )
        return best

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "candidates": list(self.candidates),
            "n_settings": self.n_settings,
            "seed": self.seed,
            "grid": list(self.grid) if self.grid else None,
            "refine": self.refine,
        }

    @classmethod
    def from_state(cls, state: dict) -> "AnalyticalSelector":
        if not isinstance(state, dict) or "candidates" not in state:
            raise ModelError("AnalyticalSelector state must carry candidates")
        grid = state.get("grid")
        return cls(
            candidates=tuple(str(c) for c in state["candidates"]),
            n_settings=int(state.get("n_settings", 2)),
            seed=int(state.get("seed", 0)),
            grid=tuple(int(v) for v in grid) if grid else None,
            refine=bool(state.get("refine", True)),
        )
