"""Gradient-aware regression trees (the GBDT building block).

Implements XGBoost-style exact greedy splitting [5]: each node stores the
Newton leaf weight ``-G / (H + lambda)`` and splits on the feature
threshold maximising the regularized gain

    0.5 * (GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)) - gamma.

Split search is vectorized per feature via argsort + cumulative sums, which
is the appropriate NumPy idiom at this dataset size (no histogram binning
needed for a few thousand rows and ~30 features).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError, NotFittedError


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int
    threshold: float
    left: int
    right: int
    value: float


class RegressionTree:
    """A single gradient/hessian-fitted regression tree.

    Parameters
    ----------
    max_depth:
        Maximum node depth (root is depth 0).
    min_child_weight:
        Minimum sum of hessians per child (XGBoost's pruning guard).
    reg_lambda:
        L2 regularization on leaf weights.
    gamma:
        Minimum gain to accept a split.
    min_samples_split:
        Minimum rows required to attempt a split.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_samples_split: int = 2,
    ):
        self.max_depth = int(max_depth)
        self.min_child_weight = float(min_child_weight)
        self.reg_lambda = float(reg_lambda)
        self.gamma = float(gamma)
        self.min_samples_split = int(min_samples_split)
        self._nodes: list[_Node] = []

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> "RegressionTree":
        """Grow the tree on gradients/hessians of the boosting objective."""
        X = np.asarray(X, dtype=np.float64)
        g = np.asarray(grad, dtype=np.float64).ravel()
        h = np.asarray(hess, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != g.shape[0] or g.shape != h.shape:
            raise ModelError(
                f"inconsistent shapes: X{X.shape}, grad{g.shape}, hess{h.shape}"
            )
        self._nodes = []
        self._grow(X, g, h, np.arange(X.shape[0]), depth=0)
        return self

    def _leaf_value(self, g_sum: float, h_sum: float) -> float:
        return -g_sum / (h_sum + self.reg_lambda)

    def _grow(
        self, X: np.ndarray, g: np.ndarray, h: np.ndarray, idx: np.ndarray, depth: int
    ) -> int:
        node_id = len(self._nodes)
        g_sum = float(g[idx].sum())
        h_sum = float(h[idx].sum())
        # Reserve the slot; children fill in after recursion.
        self._nodes.append(_Node(-1, 0.0, -1, -1, self._leaf_value(g_sum, h_sum)))

        if depth >= self.max_depth or idx.size < self.min_samples_split:
            return node_id
        split = self._best_split(X, g, h, idx, g_sum, h_sum)
        if split is None:
            return node_id
        feature, threshold = split
        mask = X[idx, feature] <= threshold
        left_idx, right_idx = idx[mask], idx[~mask]
        left = self._grow(X, g, h, left_idx, depth + 1)
        right = self._grow(X, g, h, right_idx, depth + 1)
        node = self._nodes[node_id]
        node.feature = feature
        node.threshold = threshold
        node.left = left
        node.right = right
        return node_id

    def _best_split(
        self,
        X: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        idx: np.ndarray,
        g_sum: float,
        h_sum: float,
    ) -> tuple[int, float] | None:
        lam = self.reg_lambda
        parent_score = g_sum * g_sum / (h_sum + lam)
        best_gain = self.gamma
        best: tuple[int, float] | None = None
        for f in range(X.shape[1]):
            x = X[idx, f]
            order = np.argsort(x, kind="stable")
            xs = x[order]
            gs = np.cumsum(g[idx][order])
            hs = np.cumsum(h[idx][order])
            # Candidate cut after position i requires xs[i] != xs[i+1].
            distinct = np.flatnonzero(xs[:-1] != xs[1:])
            if distinct.size == 0:
                continue
            gl, hl = gs[distinct], hs[distinct]
            gr, hr = g_sum - gl, h_sum - hl
            valid = (hl >= self.min_child_weight) & (hr >= self.min_child_weight)
            if not valid.any():
                continue
            gain = 0.5 * (
                gl * gl / (hl + lam) + gr * gr / (hr + lam) - parent_score
            )
            gain[~valid] = -np.inf
            k = int(np.argmax(gain))
            if gain[k] > best_gain:
                best_gain = float(gain[k])
                cut = distinct[k]
                best = (f, float(0.5 * (xs[cut] + xs[cut + 1])))
        return best

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf weights for each row of *X*."""
        if not self._nodes:
            raise NotFittedError("RegressionTree.predict before fit")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0], dtype=np.float64)
        # Vectorized level traversal: route index sets through the tree.
        stack: list[tuple[int, np.ndarray]] = [(0, np.arange(X.shape[0]))]
        while stack:
            node_id, rows = stack.pop()
            if rows.size == 0:
                continue
            node = self._nodes[node_id]
            if node.feature < 0:
                out[rows] = node.value
                continue
            mask = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree."""
        if not self._nodes:
            return 0

        def d(node_id: int) -> int:
            node = self._nodes[node_id]
            if node.feature < 0:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(0)

    def feature_importance(self, n_feats: int) -> np.ndarray:
        """Split counts per feature (simple frequency importance)."""
        out = np.zeros(n_feats)
        for node in self._nodes:
            if node.feature >= 0:
                out[node.feature] += 1
        return out

    # ------------------------------------------------------------------
    # serialization hooks (see repro.ml.serialize)
    # ------------------------------------------------------------------
    def to_arrays(self) -> "dict[str, np.ndarray]":
        """Export the node table as parallel arrays.

        Thresholds and leaf values stay float64 end to end, so a tree
        rebuilt by :meth:`from_arrays` predicts bit-identically.
        """
        n = len(self._nodes)
        feature = np.empty(n, dtype=np.int64)
        threshold = np.empty(n, dtype=np.float64)
        left = np.empty(n, dtype=np.int64)
        right = np.empty(n, dtype=np.int64)
        value = np.empty(n, dtype=np.float64)
        for i, node in enumerate(self._nodes):
            feature[i] = node.feature
            threshold[i] = node.threshold
            left[i] = node.left
            right[i] = node.right
            value[i] = node.value
        return {
            "feature": feature,
            "threshold": threshold,
            "left": left,
            "right": right,
            "value": value,
        }

    @classmethod
    def from_arrays(
        cls, arrays: "dict[str, np.ndarray]", **params
    ) -> "RegressionTree":
        """Rebuild a fitted tree from :meth:`to_arrays` output."""
        tree = cls(**params)
        n = int(arrays["feature"].shape[0])
        if n == 0:
            raise ModelError("empty node table")
        tree._nodes = [
            _Node(
                feature=int(arrays["feature"][i]),
                threshold=float(arrays["threshold"][i]),
                left=int(arrays["left"][i]),
                right=int(arrays["right"][i]),
                value=float(arrays["value"][i]),
            )
            for i in range(n)
        ]
        return tree
