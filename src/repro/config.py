"""Experiment-scale presets and global constants.

The paper's full pipeline profiles 500 2-D and 500 3-D random stencils under
every optimization combination on four GPUs (~65k/76k instances per GPU) and
trains neural networks for 100 epochs.  On a CPU-only NumPy substrate that is
hours of work, so every experiment in this repository is parameterised by a
:class:`ReproScale` preset.  Tests run at ``smoke`` scale, benchmarks default
to ``small`` (override with the ``REPRO_SCALE`` environment variable), and
``paper`` matches the publication's sizes for users with time to spare.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Maximum stencil order used throughout the paper (Section V-A2).
MAX_ORDER = 4

#: Input grid edge for 2-D stencils (8192 x 8192, Section III / V-A2).
GRID_2D = 8192

#: Input grid edge for 3-D stencils (512^3, Section III / V-A2).
GRID_3D = 512

#: Number of merged OC classes after PCC grouping (Section V-A2).
N_MERGED_CLASSES = 5

#: Default global seed; every randomized component accepts an explicit seed
#: derived from this so that runs are reproducible end to end.
DEFAULT_SEED = 20220530


@dataclass(frozen=True)
class ReproScale:
    """A named bundle of experiment sizes.

    Attributes
    ----------
    name:
        Preset name (``smoke``, ``small``, ``paper``).
    n_stencils_2d, n_stencils_3d:
        Number of random stencil programs generated per dimensionality.
    n_settings:
        Random parameter settings sampled per optimization combination
        (the paper's "randomly searches the parameter settings under each
        OC").
    nn_epochs:
        Training epochs for the neural networks (paper: 100).
    gbdt_rounds:
        Boosting rounds for GBDT / GBRegressor.
    n_folds:
        Cross-validation folds (paper: 5).
    """

    name: str
    n_stencils_2d: int
    n_stencils_3d: int
    n_settings: int
    nn_epochs: int
    gbdt_rounds: int
    n_folds: int


SCALES: dict[str, ReproScale] = {
    "smoke": ReproScale("smoke", 16, 12, 4, 10, 30, 3),
    "small": ReproScale("small", 64, 32, 6, 30, 80, 3),
    "medium": ReproScale("medium", 150, 80, 8, 60, 120, 5),
    "paper": ReproScale("paper", 500, 500, 20, 100, 200, 5),
}


def get_scale(name: str | None = None) -> ReproScale:
    """Resolve a scale preset.

    Parameters
    ----------
    name:
        Preset name.  When ``None``, the ``REPRO_SCALE`` environment
        variable is consulted, falling back to ``small``.

    Raises
    ------
    KeyError
        If the name is not a known preset.
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALES[name]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise KeyError(f"unknown scale {name!r}; expected one of: {known}") from None
