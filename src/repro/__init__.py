"""StencilMART reproduction.

An end-to-end reimplementation of *StencilMART: Predicting Optimization
Selection for Stencil Computations across GPUs* (Sun et al., IPDPS 2022):
random stencil generation, binary-tensor / feature representation, a
simulated multi-GPU profiling substrate, from-scratch GBDT and neural
models, best-OC classification, and cross-architecture execution-time
regression.

Quickstart::

    from repro import StencilMART, stencil

    mart = StencilMART(ndim=2, seed=7)
    mart.build_dataset(n_stencils=60)
    mart.fit_selector("gbdt")
    best_oc = mart.predict_best_oc(stencil.get("star2d2r"), gpu="V100")
"""

from . import config, errors, stencil

__version__ = "1.0.0"

__all__ = ["config", "errors", "stencil", "__version__"]


def __getattr__(name: str):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # the heavier subsystems (simulator, ML) are pulled in on demand.
    if name in {
        "gpu",
        "engine",
        "optimizations",
        "profiling",
        "ml",
        "core",
        "baselines",
        "codegen",
        "tuning",
        "cli",
    }:
        import importlib

        mod = importlib.import_module(f".{name}", __name__)
        globals()[name] = mod
        return mod
    if name == "StencilMART":
        from .core import StencilMART

        return StencilMART
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
