"""The one result type every tuning path returns.

Before the unified front door, each search path invented its own return
convention: ``RandomSearch.tune_oc`` returned an ``(OCResult,
measurements)`` pair, ``GeneticSearch`` a ``GAResult``, and the
baselines raw tuples.  :class:`TuneResult` replaces all of them: best
setting, best time, trials evaluated, cache accounting and strategy
provenance in one dataclass.  ``GAResult`` survives as a deprecated
alias so pre-refactor imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..optimizations.params import ParamSetting

__all__ = ["GAResult", "TuneResult", "TrialRecord"]


@dataclass(frozen=True)
class TrialRecord:
    """One observed evaluation, in the order the strategy consumed it."""

    setting: ParamSetting
    time_ms: float  # inf for a crashed configuration
    fidelity: float = 1.0  # fraction of a full-fidelity evaluation

    @property
    def crashed(self) -> bool:
        return self.time_ms == float("inf")


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one :func:`repro.tuning.tune` call.

    ``trials`` counts the evaluations the strategy *observed* (used in
    its decisions); it is deterministic for a fixed (strategy, seed,
    budget) regardless of backend, batching or worker count.  Backends
    may speculatively evaluate ahead of a strategy's walk -- those
    points are invisible here, exactly as they were pre-refactor.
    ``cost`` is the fidelity-weighted evaluation spend (a reduced-grid
    rung of the multi-fidelity strategies costs a fraction of a full
    evaluation); for single-fidelity strategies ``cost == trials``.
    ``cache_hits`` / ``cache_misses`` report the persistent tuning
    cache's accounting for this call (both zero when no cache was
    attached); they describe the substrate, not the search, and may vary
    with cache state.
    """

    strategy: str
    best_setting: "ParamSetting | None"
    best_time_ms: float
    trials: int
    cost: float
    crashed: int
    seed: int
    budget: "float | None"
    oc: "str | None" = None
    stencil: "str | None" = None
    gpu: "str | None" = None
    cache_hits: int = 0
    cache_misses: int = 0
    trial_log: tuple[TrialRecord, ...] = ()
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when at least one configuration ran without crashing."""
        return self.best_setting is not None

    # -- GAResult compatibility ---------------------------------------
    @property
    def evaluations(self) -> int:
        """Deprecated ``GAResult`` spelling of :attr:`trials`."""
        return self.trials

    @property
    def generations(self) -> "int | None":
        """Generations evolved (genetic strategy only)."""
        return self.extras.get("generations")

    def describe(self) -> str:
        """One-line human summary."""
        if not self.ok:
            return (
                f"{self.strategy}: every configuration crashed "
                f"({self.trials} trials)"
            )
        best = {k: v for k, v in self.best_setting.items() if v}
        return (
            f"{self.strategy}: {self.best_time_ms:.4f} ms/step in "
            f"{self.trials} trials (cost {self.cost:g}, "
            f"{self.crashed} crashed, cache {self.cache_hits}h/"
            f"{self.cache_misses}m) via {best}"
        )


#: Deprecated alias: the genetic tuner's historical result type.  New
#: code should use :class:`TuneResult` (all fields are shared).
GAResult = TuneResult
