"""Strategy-comparison benchmark: the zoo at equal budget.

Every registered strategy tunes the same slice -- random 2-D stencils x
three parameter-heavy OCs x several GPUs -- under the same
fidelity-weighted budget, through the same cached vector backend.
Reported per strategy: geometric-mean best-time ratio against the random
baseline (< 1 means the strategy finds faster configurations than random
search at equal spend), mean trials consumed, and mean budget cost.

A second section measures the persistent tuning cache: the same tune()
call repeated against a warm :class:`~repro.tuning.TuningCache` directory
must be several times faster than the cold run (everything settled is
replayed from disk).

Used by ``benchmarks/test_ablation_search_strategy.py`` (asserts the
comparison's shape) and ``tools/bench_tuning.py`` (writes
``BENCH_tuning.json``).
"""

from __future__ import annotations

import math
import shutil
import tempfile
import time
from pathlib import Path

from ..engine import make_backend
from ..optimizations.combos import OC
from ..stencil.generator import generate_population
from .api import tune
from .strategy import available_strategies

#: Parameter-heavy OCs spanning the streaming / temporal / merging axes.
BENCH_OCS = ("ST", "ST_RT", "ST_CM_RT_TB")

#: The budget every strategy gets, in full-fidelity evaluations.
BENCH_BUDGET = 32

#: The baseline everything is normalized against.
BASELINE = "random"


def run_strategy_bench(
    quick: bool = False,
    gpus: "tuple[str, ...]" = ("V100", "A100", "2080Ti"),
    budget: int = BENCH_BUDGET,
    seed: int = 11,
) -> dict:
    """Tune the bench slice with every strategy at equal budget."""
    n_stencils = 3 if quick else 6
    if quick:
        gpus = gpus[:1]
    stencils = generate_population(2, n_stencils, seed=55)
    ocs = [OC.parse(name) for name in BENCH_OCS]
    strategies = available_strategies()

    cells = [
        (gpu, sid, stencil, oc)
        for gpu in gpus
        for sid, stencil in enumerate(stencils)
        for oc in ocs
    ]
    backends = {gpu: make_backend("cached", gpu) for gpu in gpus}

    times: dict[str, dict[tuple, float]] = {}
    stats: dict[str, dict[str, float]] = {}
    for strategy in strategies:
        per_cell: dict[tuple, float] = {}
        trials = cost = wall = 0.0
        for gpu, sid, stencil, oc in cells:
            t0 = time.perf_counter()
            result = tune(
                stencil,
                oc=oc,
                backend=backends[gpu],
                strategy=strategy,
                budget=budget,
                seed=seed,
                stencil_id=sid,
            )
            wall += time.perf_counter() - t0
            trials += result.trials
            cost += result.cost
            if result.ok:
                per_cell[(gpu, sid, oc.name)] = result.best_time_ms
        times[strategy] = per_cell
        stats[strategy] = {
            "mean_trials": trials / len(cells),
            "mean_cost": cost / len(cells),
            "wall_s": wall,
        }

    base = times[BASELINE]
    doc = {
        "budget": budget,
        "seed": seed,
        "gpus": list(gpus),
        "ocs": list(BENCH_OCS),
        "n_stencils": n_stencils,
        "baseline": BASELINE,
        "strategies": {},
    }
    for strategy in strategies:
        shared = [k for k in times[strategy] if k in base]
        ratios = [times[strategy][k] / base[k] for k in shared]
        geomean = (
            math.exp(sum(math.log(r) for r in ratios) / len(ratios))
            if ratios
            else float("nan")
        )
        doc["strategies"][strategy] = {
            "geomean_vs_random": geomean,
            "beats_random": geomean < 1.0,
            "cells_solved": len(times[strategy]),
            "mean_trials": round(stats[strategy]["mean_trials"], 2),
            "mean_cost": round(stats[strategy]["mean_cost"], 2),
            "wall_s": round(stats[strategy]["wall_s"], 3),
        }
    return doc


def run_cache_bench(
    quick: bool = False,
    gpu: str = "V100",
    budget: int = BENCH_BUDGET,
    seed: int = 11,
    cache_dir: "str | Path | None" = None,
    workers: int = 4,
) -> dict:
    """Cold-vs-warm wall time of tune() against a persistent cache.

    The substrate is the parallel dispatch backend -- the deployment
    the cache exists for, where every measurement pays worker-pool
    dispatch.  The cold sweep fills the cache through it; the warm sweep
    opens a fresh :class:`TuningCache` on the same directory (a new
    process replaying settled results from disk) and must never touch
    the pool.
    """
    import multiprocessing

    from .cache import TuningCache

    n_stencils = 2 if quick else 4
    stencils = generate_population(2, n_stencils, seed=77)
    ocs = [OC.parse(name) for name in BENCH_OCS]
    own_dir = cache_dir is None
    root = Path(cache_dir) if cache_dir else Path(tempfile.mkdtemp(prefix="tunecache-"))
    context = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    base = make_backend("parallel", gpu, workers=workers, context=context)
    try:
        def sweep():
            cache = TuningCache(base, root)
            t0 = time.perf_counter()
            for sid, stencil in enumerate(stencils):
                for oc in ocs:
                    tune(
                        stencil,
                        oc=oc,
                        backend=cache,
                        strategy="random",
                        budget=budget,
                        seed=seed,
                        stencil_id=sid,
                    )
            return time.perf_counter() - t0, cache.hits, cache.misses

        cold_s, cold_hits, cold_misses = sweep()
        # The cold sweep runs once by construction (it fills the cache),
        # so its wall time is taken as-is; the warm replay is repeatable,
        # so best-of-3 shields the speedup ratio from scheduler noise.
        warm_runs = [sweep() for _ in range(3)]
        warm_s, warm_hits, warm_misses = min(warm_runs, key=lambda w: w[0])
    finally:
        base.close()
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "gpu": gpu,
        "budget": budget,
        "cells": len(stencils) * len(ocs),
        "substrate": base.info.name,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else float("inf"),
        "cold": {"hits": cold_hits, "misses": cold_misses},
        "warm": {"hits": warm_hits, "misses": warm_misses},
    }
