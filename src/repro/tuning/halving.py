"""Successive halving with reduced-grid low-fidelity rungs.

The analytical engine prices an evaluation roughly in proportion to the
input grid, which makes a reduced grid a natural cheap fidelity: rung 0
scores a wide field of candidates on a small grid, each survivor
generation is re-measured on a larger one, and only the final rung runs
the real (full-size) grid.  Budget accounting is fidelity-weighted --
an evaluation on a grid with 1/16th the cells charges 1/16th of a full
evaluation -- so at equal budget the strategy explores far more of the
space than any full-fidelity search (Ernst et al.'s multi-fidelity
estimation argument, PAPERS.md).

Low-fidelity rungs rank; they never set the incumbent.  The reported
best configuration always comes from a full-fidelity measurement.
"""

from __future__ import annotations

import math

from ..optimizations.kernelmodel import default_grid
from .strategy import AskBatch, GeneratorStrategy, StrategyContext, register_strategy

__all__ = ["HalvingStrategy"]

_INF = float("inf")

#: Per-axis grid divisors, coarsest rung first; the last rung (divisor
#: 1) is always the caller's real grid.
_DIVISORS = (4, 2, 1)

#: Never shrink an axis below this (keeps block/tile geometry valid).
_MIN_AXIS = 64


@register_strategy
class HalvingStrategy(GeneratorStrategy):
    """Successive halving over reduced-grid fidelities.

    Parameters
    ----------
    eta:
        Survivor fraction between rungs (keep ``1/eta``).
    initial:
        Rung-0 candidate count; defaults to whatever fills the budget
        given the fidelity-weighted rung costs.
    divisors:
        Per-axis grid divisors per rung, coarsest first, ending in 1.
    """

    name = "halving"

    def __init__(
        self,
        eta: int = 3,
        initial: "int | None" = None,
        divisors: tuple[int, ...] = _DIVISORS,
    ):
        super().__init__()
        if eta < 2:
            raise ValueError(f"eta must be >= 2, got {eta}")
        if not divisors or divisors[-1] != 1 or list(divisors) != sorted(
            divisors, reverse=True
        ):
            raise ValueError(
                f"divisors must descend to 1, got {divisors!r}"
            )
        self.eta = int(eta)
        self.initial = None if initial is None else int(initial)
        self.divisors = tuple(int(d) for d in divisors)

    def _rungs(self, ctx: StrategyContext):
        """(grid, cost) per rung; the final rung is the caller's grid."""
        full = ctx.grid or default_grid(ctx.stencil.ndim)
        full_cells = math.prod(full)
        rungs = []
        for d in self.divisors:
            if d == 1:
                rungs.append((ctx.grid, 1.0))
                continue
            grid = tuple(max(_MIN_AXIS, axis // d) for axis in full)
            rungs.append((grid, math.prod(grid) / full_cells))
        return rungs

    def run(self, ctx: StrategyContext):
        rng = ctx.rng
        rungs = self._rungs(ctx)
        n0 = self.initial
        if n0 is None:
            # Fill the budget: rung r sees ~n0/eta^r candidates at
            # cost_r each, so budget ~= n0 * sum(cost_r / eta^r).
            unit = sum(
                cost / self.eta**r for r, (_, cost) in enumerate(rungs)
            )
            budget = ctx.budget if ctx.budget is not None else 16.0
            n0 = max(self.eta ** (len(rungs) - 1), int(budget / unit))
        candidates = ctx.space.sample_many(n0, rng)
        if not candidates:
            return
        for r, (grid, cost) in enumerate(rungs):
            final = r == len(rungs) - 1
            results = yield AskBatch(candidates, grid=grid, cost=cost)
            scored = []
            for s, res in zip(candidates, results):
                # Low-fidelity times rank survivors but never become the
                # incumbent -- only the real grid's times are comparable
                # across strategies.
                t = self.observe(s, res, cost=cost, track_best=final)
                if t != _INF:
                    scored.append((t, s))
            if final or not scored:
                break
            scored.sort(key=lambda ts: ts[0])
            keep = max(1, -(-len(scored) // self.eta))  # ceil division
            candidates = [s for _, s in scored[:keep]]
        self._extras["rungs"] = len(rungs)
        self._extras["initial_candidates"] = n0
