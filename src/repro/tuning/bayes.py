"""Model-based (Bayesian) optimization with a GBDT surrogate.

SMAC-style sequential model-based optimization on the existing
:class:`repro.ml.gbdt.GBRegressor`: after a random initial design, each
round fits the surrogate to every observation so far (``log`` time over
the standard parameter feature encoding), scores a random candidate
pool, and submits the pool's most promising members -- with an
epsilon fraction of random picks keeping the model honest -- as one
engine batch.  Crashes are fed back to the surrogate at a large penalty
so it learns the crash cliffs instead of re-proposing them.
"""

from __future__ import annotations

import math

import numpy as np

from .strategy import AskBatch, GeneratorStrategy, StrategyContext, register_strategy

__all__ = ["BayesStrategy"]

_INF = float("inf")

#: Surrogate target for crashed points: slower than anything real.
_CRASH_PENALTY_FACTOR = 30.0


@register_strategy
class BayesStrategy(GeneratorStrategy):
    """GBDT-surrogate Bayesian optimization.

    Parameters
    ----------
    init:
        Random initial-design evaluations before the surrogate kicks in.
    batch:
        Proposals per surrogate round (one engine batch).
    pool:
        Candidate pool sampled per round for the surrogate to score.
    explore:
        Fraction of each round's proposals drawn at random instead of
        by predicted rank (exploration against surrogate bias).
    """

    name = "bayes"

    def __init__(
        self,
        init: int = 8,
        batch: int = 4,
        pool: int = 128,
        explore: float = 0.25,
        surrogate_rounds: int = 60,
    ):
        super().__init__()
        if init < 2:
            raise ValueError(f"init must be >= 2, got {init}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if not 0.0 <= explore <= 1.0:
            raise ValueError(f"explore must be in [0, 1], got {explore}")
        self.init = int(init)
        self.batch = int(batch)
        self.pool = int(pool)
        self.explore = float(explore)
        self.surrogate_rounds = int(surrogate_rounds)

    def run(self, ctx: StrategyContext):
        from ..ml.gbdt import GBRegressor

        rng = ctx.rng
        space = ctx.space
        budget = ctx.budget if ctx.budget is not None else self.init + 10 * self.batch

        evaluated: set[tuple[int, ...]] = set()
        X_rows: list[np.ndarray] = []
        y_rows: list[float] = []

        def consume(settings, results):
            best_finite = None
            for s, res in zip(settings, results):
                t = self.observe(s, res)
                evaluated.add(s.as_tuple())
                if t != _INF:
                    X_rows.append(s.encode())
                    y_rows.append(math.log(t))
                    best_finite = t if best_finite is None else min(best_finite, t)
            return best_finite

        n_init = min(self.init, int(budget))
        init_settings = space.sample_many(n_init, rng)
        if not init_settings:
            return
        results = yield AskBatch(init_settings)
        consume(init_settings, results)

        while self.cost < budget:
            # Crashed-only history: the surrogate has nothing to fit, so
            # keep sampling at random until something runs.
            if len(y_rows) < 2:
                fresh = [
                    s
                    for s in space.sample_many(self.batch * 4, rng)
                    if s.as_tuple() not in evaluated
                ][: self.batch]
                if not fresh:
                    return
                results = yield AskBatch(fresh)
                consume(fresh, results)
                continue

            # Crash cliffs enter the training set at a large penalty so
            # the surrogate steers around them.
            penalty = math.log(
                _CRASH_PENALTY_FACTOR * math.exp(max(y_rows))
            )
            X = np.array(X_rows, dtype=np.float64)
            y = np.array(y_rows, dtype=np.float64)
            n_crashed = self.observed - len(y_rows)
            if n_crashed:
                crashed_X = [
                    rec.setting.encode()
                    for rec in self._log
                    if rec.crashed
                ]
                X = np.vstack([X] + [np.array(crashed_X)])
                y = np.concatenate([y, np.full(len(crashed_X), penalty)])
            surrogate = GBRegressor(
                n_rounds=self.surrogate_rounds,
                max_depth=3,
                learning_rate=0.15,
                seed=ctx.seed,
            ).fit(X, y)

            candidates = [
                s
                for s in space.sample_many(self.pool, rng)
                if s.as_tuple() not in evaluated
            ]
            if not candidates:
                return  # space exhausted
            scores = surrogate.predict(
                np.array([c.encode() for c in candidates])
            )
            ranked = [candidates[i] for i in np.argsort(scores, kind="stable")]
            n_take = min(self.batch, len(ranked), max(1, int(budget - self.cost)))
            picked = ranked[:n_take]
            # Epsilon exploration: swap the tail picks for random pool
            # members the surrogate ranked lower.
            n_explore = int(round(n_take * self.explore))
            if n_explore and len(ranked) > n_take:
                rest = ranked[n_take:]
                for j in range(n_explore):
                    swap = rest[int(rng.integers(len(rest)))]
                    if swap not in picked:
                        picked[n_take - 1 - j] = swap
            results = yield AskBatch(picked)
            consume(picked, results)
