"""csTuner-style genetic parameter search (Sun et al. [25]).

The paper's related auto-tuning work (the authors' own csTuner) re-designs
a genetic algorithm over stencil parameter settings.  This module provides
that search strategy as an alternative to :class:`RandomSearch`: a small
GA over one OC's relevant parameters with tournament selection, uniform
crossover and per-gene mutation, evaluating candidates on the simulator.
It is used by the search-strategy ablation bench and available to users
who want a stronger tuner at a higher measurement budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import EvalRequest, as_backend
from ..optimizations.combos import OC
from ..optimizations.params import (
    ParamSetting,
    _choices_for,
    relevant_params,
    sample_setting,
)
from ..stencil.stencil import Stencil


@dataclass
class GAResult:
    """Outcome of one genetic search over a single OC."""

    oc: str
    best_setting: ParamSetting
    best_time_ms: float
    evaluations: int
    generations: int


class GeneticSearch:
    """Genetic algorithm over one OC's parameter space.

    Parameters
    ----------
    simulator:
        Measurement substrate: a :class:`~repro.engine.Backend` or any
        simulator-like object (wrapped via
        :func:`~repro.engine.as_backend`).  Each generation is measured
        as one batch.
    population:
        Individuals per generation.
    generations:
        Evolution steps after the seeded first generation.
    mutation_rate:
        Per-gene probability of resampling a parameter value.
    elite:
        Individuals carried over unchanged per generation.
    seed:
        Generator seed (deterministic search).
    """

    def __init__(
        self,
        simulator,
        population: int = 12,
        generations: int = 6,
        mutation_rate: float = 0.2,
        elite: int = 2,
        seed: int = 0,
    ):
        if population < 4:
            raise ValueError(f"population must be >= 4, got {population}")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        self.backend = as_backend(simulator)
        self.sim = self.backend
        self.population = int(population)
        self.generations = int(generations)
        self.mutation_rate = float(mutation_rate)
        self.elite = max(1, min(int(elite), self.population // 2))
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def tune_oc(self, stencil: Stencil, oc: OC) -> GAResult | None:
        """Evolve parameter settings for *oc*; None if nothing ever ran."""
        import zlib

        oc_key = zlib.crc32(oc.name.encode())
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, oc_key)))
        names = relevant_params(oc, stencil.ndim)
        cache: dict[tuple[int, ...], float] = {}
        evaluations = 0

        def ensure(settings: list[ParamSetting]) -> None:
            """Measure every not-yet-cached individual as one engine batch.

            Whole generations hit the backend together (the engine
            vectorizes or memoizes as it sees fit); crashing individuals
            score ``inf``, exactly as the per-point path scored them.
            """
            nonlocal evaluations
            fresh: list[ParamSetting] = []
            keys: set[tuple[int, ...]] = set()
            for s in settings:
                key = s.as_tuple()
                if key not in cache and key not in keys:
                    keys.add(key)
                    fresh.append(s)
            if not fresh:
                return
            evaluations += len(fresh)
            results = self.backend.evaluate_batch(
                [EvalRequest(stencil, oc, s) for s in fresh]
            )
            for s, res in zip(fresh, results):
                cache[s.as_tuple()] = (
                    float("inf") if res.crashed else res.value()
                )

        def fitness(setting: ParamSetting) -> float:
            return cache[setting.as_tuple()]

        # Seed generation: random valid-ish individuals.
        pop = [sample_setting(oc, stencil.ndim, rng) for _ in range(self.population)]
        for _ in range(self.generations):
            ensure(pop)
            scored = sorted(pop, key=fitness)
            next_pop = scored[: self.elite]
            while len(next_pop) < self.population:
                a = self._tournament(scored, fitness, rng)
                b = self._tournament(scored, fitness, rng)
                child = self._crossover(a, b, names, rng)
                child = self._mutate(child, stencil.ndim, names, rng)
                next_pop.append(child)
            pop = next_pop

        ensure(pop)
        best = min(pop, key=fitness)
        best_time = fitness(best)
        if not np.isfinite(best_time):
            finite = [(t, k) for k, t in cache.items() if np.isfinite(t)]
            if not finite:
                return None
            t, key = min(finite)
            from ..optimizations.params import PARAM_NAMES

            best = ParamSetting(**dict(zip(PARAM_NAMES, key)))
            best_time = t
        return GAResult(
            oc=oc.name,
            best_setting=best,
            best_time_ms=best_time,
            evaluations=evaluations,
            generations=self.generations,
        )

    # ------------------------------------------------------------------
    def _tournament(self, scored, fitness, rng, k: int = 3) -> ParamSetting:
        picks = [scored[rng.integers(len(scored))] for _ in range(k)]
        return min(picks, key=fitness)

    def _crossover(
        self,
        a: ParamSetting,
        b: ParamSetting,
        names: tuple[str, ...],
        rng: np.random.Generator,
    ) -> ParamSetting:
        values = {n: (a[n] if rng.random() < 0.5 else b[n]) for n in names}
        return ParamSetting(**values)

    def _mutate(
        self,
        setting: ParamSetting,
        ndim: int,
        names: tuple[str, ...],
        rng: np.random.Generator,
    ) -> ParamSetting:
        values = {n: setting[n] for n in names}
        for n in names:
            if rng.random() < self.mutation_rate:
                choices = _choices_for(n, ndim)
                values[n] = int(choices[rng.integers(len(choices))])
        return ParamSetting(**values)
