"""csTuner-style genetic parameter search (Sun et al. [25]).

The paper's related auto-tuning work (the authors' own csTuner)
re-designs a genetic algorithm over stencil parameter settings.
:class:`GeneticStrategy` provides that search as a zoo member: tournament
selection, uniform crossover and per-gene mutation, with whole
generations evaluated as single engine batches and crashing individuals
scored ``inf``.

:class:`GeneticSearch` is the pre-refactor class, now a thin wrapper
over :func:`repro.tuning.tune`.  It pins the legacy RNG stream --
``(seed, crc32(oc.name))``, *without* a stencil component -- so results
are bit-identical to the pre-front-door tuner; ``tune(...,
strategy="genetic")`` uses the unified stream convention instead (and
therefore draws differently, by design).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..engine import as_backend
from ..optimizations.combos import OC
from ..optimizations.params import PARAM_NAMES, ParamSetting
from ..stencil.stencil import Stencil
from .result import GAResult, TuneResult
from .strategy import AskBatch, GeneratorStrategy, StrategyContext, register_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["GAResult", "GeneticSearch", "GeneticStrategy"]

_INF = float("inf")


@register_strategy
class GeneticStrategy(GeneratorStrategy):
    """Genetic algorithm over one OC's parameter space.

    Parameters
    ----------
    population:
        Individuals per generation (>= 4).
    generations:
        Evolution steps after the seeded first generation.  When
        ``None``, derived from the tune() budget
        (``budget // population - 1``, at least 1).
    mutation_rate:
        Per-gene probability of resampling a parameter value.
    elite:
        Individuals carried over unchanged per generation.
    """

    name = "genetic"

    def __init__(
        self,
        population: int = 12,
        generations: "int | None" = 6,
        mutation_rate: float = 0.2,
        elite: int = 2,
    ):
        super().__init__()
        if population < 4:
            raise ValueError(f"population must be >= 4, got {population}")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(
                f"mutation_rate must be in [0, 1], got {mutation_rate}"
            )
        self.population = int(population)
        self.generations = None if generations is None else int(generations)
        self.mutation_rate = float(mutation_rate)
        self.elite = max(1, min(int(elite), self.population // 2))

    def run(self, ctx: StrategyContext):
        rng = ctx.rng
        space = ctx.space
        names = space.names
        generations = self.generations
        if generations is None:
            total = int(ctx.budget) if ctx.budget else 6 * self.population
            generations = max(1, total // self.population - 1)
        self._extras["generations"] = generations
        cache: dict[tuple[int, ...], float] = {}

        def ensure(settings):
            """Measure every not-yet-cached individual as one batch.

            Whole generations hit the backend together (the engine
            vectorizes or memoizes as it sees fit); crashing individuals
            score ``inf``, and individuals violating a space restriction
            score ``inf`` without ever reaching the backend.
            """
            fresh: list[ParamSetting] = []
            keys: set[tuple[int, ...]] = set()
            for s in settings:
                key = s.as_tuple()
                if key in cache or key in keys:
                    continue
                if space.restrictions and not space.allows(s):
                    cache[key] = _INF
                    continue
                keys.add(key)
                fresh.append(s)
            if not fresh:
                return
            results = yield AskBatch(fresh)
            for s, res in zip(fresh, results):
                # Incremental incumbent tracking covers budget-truncated
                # runs; a completed run overwrites it with the exact
                # legacy final-population selection below.
                cache[s.as_tuple()] = self.observe(s, res)

        def fitness(setting: ParamSetting) -> float:
            return cache[setting.as_tuple()]

        # Seed generation: random valid-ish individuals.
        pop = [space.sample(rng) for _ in range(self.population)]
        for _ in range(generations):
            yield from ensure(pop)
            scored = sorted(pop, key=fitness)
            next_pop = scored[: self.elite]
            while len(next_pop) < self.population:
                a = self._tournament(scored, fitness, rng)
                b = self._tournament(scored, fitness, rng)
                child = self._crossover(a, b, names, rng)
                child = self._mutate(child, space, names, rng)
                next_pop.append(child)
            pop = next_pop

        yield from ensure(pop)
        # The exact legacy best-selection: min over the final population
        # (elitism guarantees the incumbent survives there), falling back
        # to the best finite point ever cached.
        best = min(pop, key=fitness)
        best_time = fitness(best)
        if best_time == _INF:
            finite = [(t, k) for k, t in cache.items() if t != _INF]
            if not finite:
                return  # nothing ever ran
            best_time, key = min(finite)
            best = ParamSetting(**dict(zip(PARAM_NAMES, key)))
        self.best_setting = best
        self.best_time_ms = best_time

    # ------------------------------------------------------------------
    def _tournament(self, scored, fitness, rng, k: int = 3) -> ParamSetting:
        picks = [scored[rng.integers(len(scored))] for _ in range(k)]
        return min(picks, key=fitness)

    def _crossover(self, a, b, names, rng) -> ParamSetting:
        values = {n: (a[n] if rng.random() < 0.5 else b[n]) for n in names}
        return ParamSetting(**values)

    def _mutate(self, setting, space, names, rng) -> ParamSetting:
        values = {n: setting[n] for n in names}
        for n in names:
            if rng.random() < self.mutation_rate:
                choices = space.choices(n)
                values[n] = int(choices[rng.integers(len(choices))])
        return ParamSetting(**values)


class GeneticSearch:
    """Pre-front-door genetic tuner: a compatibility wrapper.

    Routes through :func:`repro.tuning.tune` with the legacy RNG stream
    ``(seed, oc.name)`` pinned, so ``tune_oc`` results are bit-identical
    to the pre-refactor implementation.  New code should call
    ``tune(..., strategy="genetic")`` directly.
    """

    def __init__(
        self,
        simulator,
        population: int = 12,
        generations: int = 6,
        mutation_rate: float = 0.2,
        elite: int = 2,
        seed: int = 0,
    ):
        self.backend = as_backend(simulator)
        self.sim = self.backend
        self.population = int(population)
        self.generations = int(generations)
        self.mutation_rate = float(mutation_rate)
        self.elite = max(1, min(int(elite), self.population // 2))
        self.seed = int(seed)
        # Validate eagerly, as the legacy constructor did.
        GeneticStrategy(
            population=population,
            generations=generations,
            mutation_rate=mutation_rate,
            elite=elite,
        )

    def tune_oc(self, stencil: Stencil, oc: OC) -> "TuneResult | None":
        """Evolve parameter settings for *oc*; None if nothing ever ran."""
        from .api import tune

        result = tune(
            stencil,
            oc=oc,
            backend=self.backend,
            strategy=GeneticStrategy(
                population=self.population,
                generations=self.generations,
                mutation_rate=self.mutation_rate,
                elite=self.elite,
            ),
            seed=self.seed,
            rng_streams=(self.seed, oc.name),  # legacy stream, pre-zoo
        )
        return result if result.ok else None
