"""Unified autotuning: one front door, a strategy zoo, a persistent cache.

:func:`tune` is the single entry point every parameter search goes
through -- the paper's random walk + coordinate refinement, the
csTuner-style genetic algorithm, simulated annealing, GBDT-surrogate
Bayesian optimization, and reduced-grid successive halving are all
:class:`Strategy` implementations driven by the same ask/evaluate/tell
loop over the batched :mod:`repro.engine` backends.  See
``docs/tuning.md`` for the strategy zoo, the restriction grammar, cache
semantics and budget accounting.
"""

from .anneal import AnnealingStrategy
from .api import tune
from .bayes import BayesStrategy
from .cache import TuningCache
from .genetic import GAResult, GeneticSearch, GeneticStrategy
from .halving import HalvingStrategy
from .random_search import CoordinateDescentStrategy, RandomStrategy
from .result import TrialRecord, TuneResult
from .rng import stream_key, stream_rng
from .space import ParameterSpace, Restriction, compile_restriction
from .strategy import (
    AskBatch,
    GeneratorStrategy,
    Strategy,
    StrategyContext,
    StrategyOutcome,
    available_strategies,
    make_strategy,
    register_strategy,
)

__all__ = [
    "AnnealingStrategy",
    "AskBatch",
    "BayesStrategy",
    "CoordinateDescentStrategy",
    "GAResult",
    "GeneratorStrategy",
    "GeneticSearch",
    "GeneticStrategy",
    "HalvingStrategy",
    "ParameterSpace",
    "RandomStrategy",
    "Restriction",
    "Strategy",
    "StrategyContext",
    "StrategyOutcome",
    "TrialRecord",
    "TuneResult",
    "TuningCache",
    "available_strategies",
    "compile_restriction",
    "make_strategy",
    "register_strategy",
    "stream_key",
    "stream_rng",
    "tune",
]
