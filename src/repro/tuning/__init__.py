"""Alternative parameter-search strategies (csTuner-style GA)."""

from .genetic import GAResult, GeneticSearch

__all__ = ["GAResult", "GeneticSearch"]
