"""Declarative tuning spaces with kernel_tuner-style restrictions.

A :class:`ParameterSpace` names the parameters a tuner may vary, the
choices each may take, and optional *restrictions* -- boolean constraint
expressions over the parameter names (the shape of kernel_tuner's
``restrictions=`` argument)::

    space = ParameterSpace.for_oc(
        oc, ndim=2,
        restrictions=["block_x * block_y <= 1024", "merge_factor <= block_x"],
    )

Restriction expressions use a small, safe grammar: parameter names,
integer/float/boolean literals, arithmetic (``+ - * / // % **``),
comparisons (chained allowed), ``and / or / not``, parentheses, and the
``min`` / ``max`` / ``abs`` functions.  They are parsed once (AST
whitelist -- no attribute access, no subscripts, no arbitrary calls) and
evaluated per candidate setting.  A callable predicate taking the
setting mapping is accepted wherever an expression string is.

Spaces derived from an OC (:meth:`ParameterSpace.for_oc`) sample with
the exact per-parameter draw sequence of the legacy
:func:`repro.optimizations.params.sample_setting`, so an unrestricted
space reproduces pre-refactor tuning streams bit-for-bit.
"""

from __future__ import annotations

import ast
import itertools
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import TuningError
from ..optimizations.combos import OC
from ..optimizations.params import (
    PARAM_NAMES,
    PARAM_SPECS,
    ParamSetting,
    _choices_for,
    relevant_params,
)

__all__ = ["ParameterSpace", "Restriction", "compile_restriction"]

#: Attempts per requested sample before a restricted space is declared
#: too tight to sample by rejection.
_SAMPLE_ATTEMPTS = 200

_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
    ast.Mod, ast.Pow,
    ast.Compare, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.Call, ast.Name, ast.Load, ast.Constant,
)

_ALLOWED_FUNCS = {"min": min, "max": max, "abs": abs}


class Restriction:
    """One compiled constraint: the source text plus its predicate."""

    __slots__ = ("source", "_predicate")

    def __init__(self, source: str, predicate: Callable[[Mapping[str, int]], bool]):
        self.source = source
        self._predicate = predicate

    def __call__(self, values: Mapping[str, int]) -> bool:
        return bool(self._predicate(values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Restriction({self.source!r})"


def compile_restriction(
    expr: "str | Callable[[Mapping[str, int]], bool]",
    names: "Sequence[str]" = PARAM_NAMES,
) -> Restriction:
    """Compile one restriction (expression string or callable).

    Raises :class:`~repro.errors.TuningError` on syntax errors, grammar
    violations, or references to parameters outside *names*.
    """
    if callable(expr):
        label = getattr(expr, "__name__", None) or repr(expr)
        return Restriction(f"<callable {label}>", expr)
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as e:
        raise TuningError(f"bad restriction {expr!r}: {e.msg}") from None
    known = set(names)
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise TuningError(
                f"restriction {expr!r}: {type(node).__name__} is not part "
                "of the restriction grammar"
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_FUNCS:
                raise TuningError(
                    f"restriction {expr!r}: only "
                    f"{sorted(_ALLOWED_FUNCS)} may be called"
                )
            if node.keywords:
                raise TuningError(
                    f"restriction {expr!r}: keyword arguments are not allowed"
                )
        elif isinstance(node, ast.Name):
            if node.id not in known and node.id not in _ALLOWED_FUNCS:
                raise TuningError(
                    f"restriction {expr!r}: unknown parameter {node.id!r} "
                    f"(known: {', '.join(names)})"
                )
        elif isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float, bool)):
                raise TuningError(
                    f"restriction {expr!r}: literal {node.value!r} is not "
                    "numeric"
                )
    code = compile(tree, "<restriction>", "eval")

    def predicate(values: Mapping[str, int]) -> bool:
        scope = dict(_ALLOWED_FUNCS)
        scope.update(values)
        return bool(eval(code, {"__builtins__": {}}, scope))

    return Restriction(expr, predicate)


class ParameterSpace:
    """An ordered set of tunable parameters, their choices, restrictions.

    Parameters
    ----------
    params:
        Ordered ``name -> choices`` mapping.  Iteration order is the
        sampling order (one RNG draw per parameter, in order), so two
        spaces with the same mapping produce identical draw sequences.
    restrictions:
        Constraint expressions or callables; a setting belongs to the
        space only if every restriction holds.
    """

    def __init__(
        self,
        params: "Mapping[str, Sequence[int]]",
        restrictions: "Sequence[str | Callable] | None" = None,
    ):
        if not params:
            raise TuningError("a ParameterSpace needs at least one parameter")
        clean: dict[str, tuple[int, ...]] = {}
        for name, choices in params.items():
            if name not in PARAM_NAMES:
                raise TuningError(
                    f"unknown parameter {name!r} (known: {', '.join(PARAM_NAMES)})"
                )
            choices = tuple(int(c) for c in choices)
            if not choices:
                raise TuningError(f"parameter {name!r} has no choices")
            clean[name] = choices
        # Fixed layout order regardless of mapping insertion order keeps
        # the draw sequence content-determined.
        order = {n: i for i, n in enumerate(PARAM_NAMES)}
        self._params: dict[str, tuple[int, ...]] = {
            n: clean[n] for n in sorted(clean, key=order.__getitem__)
        }
        self.restrictions: tuple[Restriction, ...] = tuple(
            compile_restriction(r, tuple(self._params)) for r in (restrictions or ())
        )
        # Sampling hot-path precomputation: per-parameter draw bounds,
        # the full-vector default templates, and each space parameter's
        # slot in the global layout.  Settings drawn from the space are
        # valid by construction, so they take ParamSetting's trusted
        # fast path instead of re-validating every value.
        self._bounds = np.array([len(c) for c in self._params.values()])
        self._choice_lists = tuple(self._params.values())
        self._slots = tuple(PARAM_NAMES.index(n) for n in self._params)
        self._full_template = {s.name: s.default for s in PARAM_SPECS}
        self._tuple_template = tuple(
            self._full_template[n] for n in PARAM_NAMES
        )

    def _make(self, values: "dict[str, int]") -> ParamSetting:
        """Trusted setting from space-drawn values (defaults elsewhere)."""
        full = dict(self._full_template)
        full.update(values)
        tup = list(self._tuple_template)
        for slot, name in zip(self._slots, self._params):
            tup[slot] = full[name]
        return ParamSetting._trusted(full, tuple(tup))

    # ------------------------------------------------------------------
    @classmethod
    def for_oc(
        cls,
        oc: OC,
        ndim: int,
        restrictions: "Sequence[str | Callable] | None" = None,
    ) -> "ParameterSpace":
        """The OC's relevant parameters with their standard choice lists."""
        space = cls(
            {n: _choices_for(n, ndim) for n in relevant_params(oc, ndim)},
            restrictions,
        )
        return space

    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._params)

    def choices(self, name: str) -> tuple[int, ...]:
        try:
            return self._params[name]
        except KeyError:
            raise TuningError(f"parameter {name!r} is not in this space") from None

    @property
    def size(self) -> int:
        """Cartesian cardinality (restrictions not discounted)."""
        n = 1
        for choices in self._params.values():
            n *= len(choices)
        return n

    def allows(self, setting: "ParamSetting | Mapping[str, int]") -> bool:
        """True when *setting* satisfies every restriction."""
        return all(r(setting) for r in self.restrictions)

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> ParamSetting:
        """Draw one setting uniformly per parameter (rejection under
        restrictions).

        The unrestricted draw sequence -- one ``rng.integers(len(choices))``
        per parameter in layout order -- is exactly the legacy
        ``sample_setting`` sequence, which the profiling stream-key
        convention (and every campaign digest) depends on.
        """
        for _ in range(_SAMPLE_ATTEMPTS):
            values = {
                name: int(choices[rng.integers(len(choices))])
                for name, choices in self._params.items()
            }
            if not self.restrictions or self.allows(values):
                return self._make(values)
        raise TuningError(
            f"could not sample a setting satisfying "
            f"{[r.source for r in self.restrictions]} in "
            f"{_SAMPLE_ATTEMPTS} attempts"
        )

    def sample_block(
        self, count: int, rng: np.random.Generator
    ) -> list[ParamSetting]:
        """Exactly ``count`` :meth:`sample` calls' worth of settings.

        Bit-identical to ``[self.sample(rng) for _ in range(count)]`` --
        numpy's bounded draw with an array of bounds consumes the
        generator stream exactly like the equivalent scalar sequence --
        but the whole block costs one RNG call.  Restricted spaces fall
        back to the scalar rejection loop (their stream is already
        setting-dependent).
        """
        if count <= 0:
            return []
        if self.restrictions:
            return [self.sample(rng) for _ in range(count)]
        idx = rng.integers(np.tile(self._bounds, (count, 1)))
        names = tuple(self._params)
        choice_lists = self._choice_lists
        # Repeated rows share one (immutable) instance; random search
        # redraws the same settings constantly in small spaces.
        built: dict[tuple[int, ...], ParamSetting] = {}
        out = []
        for row in map(tuple, idx.tolist()):
            setting = built.get(row)
            if setting is None:
                setting = self._make(
                    {
                        name: choice_lists[j][i]
                        for j, (name, i) in enumerate(zip(names, row))
                    }
                )
                built[row] = setting
            out.append(setting)
        return out

    def sample_many(
        self, count: int, rng: np.random.Generator
    ) -> list[ParamSetting]:
        """*count* distinct settings (deduplicated, bounded retries)."""
        out: list[ParamSetting] = []
        seen: set[tuple[int, ...]] = set()
        attempts = 0
        while len(out) < count and attempts < count * 40:
            attempts += 1
            s = self.sample(rng)
            if s.as_tuple() in seen:
                continue
            seen.add(s.as_tuple())
            out.append(s)
        return out

    def enumerate(self) -> Iterator[ParamSetting]:
        """Every setting of the space, restrictions applied, layout order."""
        names = self.names
        for combo in itertools.product(*(self._params[n] for n in names)):
            values = dict(zip(names, combo))
            if not self.restrictions or self.allows(values):
                yield self._make(values)

    def neighbors(self, setting: ParamSetting, name: str) -> list[ParamSetting]:
        """Coordinate frontier: *setting* with *name* set to each other
        allowed choice (choice-list order -- the descent walk order)."""
        base = setting[name]
        out = []
        for value in self.choices(name):
            if value == base:
                continue
            candidate = setting.replace(**{name: value})
            if not self.restrictions or self.allows(candidate):
                out.append(candidate)
        return out

    def __contains__(self, setting: ParamSetting) -> bool:
        for name, choices in self._params.items():
            if setting[name] not in choices:
                return False
        return self.allows(setting)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{n}:{len(c)}" for n, c in self._params.items())
        return (
            f"ParameterSpace({parts}; size={self.size}, "
            f"{len(self.restrictions)} restriction(s))"
        )
