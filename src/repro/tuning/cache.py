"""Persistent, content-keyed tuning cache.

A disk-backed sibling of :class:`repro.engine.CachingBackend`: results
are pure functions of (GPU, sigma, stencil, OC, setting, grid) --
deterministic noise included -- so settled outcomes can be replayed
across processes and sessions, making a repeated ``tune()`` call
near-free.

Layout: one JSON document per (GPU, sigma, stencil, OC, grid) *group*,
named by a BLAKE2b digest of that identity, holding a ``settings ->
outcome`` table (a float time, or a crash marker carrying the original
:class:`~repro.errors.KernelLaunchError` message).  Floats round-trip
through JSON exactly (``repr`` semantics), so a cache replay is
bit-identical to re-measuring.  Documents are written atomically
(tmp + ``os.replace``, PR 1's storage convention) and format-versioned;
an unreadable or newer-format document is treated as a miss for reads
and rebuilt on the next flush, never trusted.

Only settled outcomes are stored -- times and deterministic launch
crashes.  Transient faults a fault-injecting backend may record are
never persisted (a retry must re-hit the device), the same rule the
in-memory cache follows.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Sequence

from ..engine import BackendBase, BackendInfo, EvalRequest, EvalResult, as_backend
from ..errors import KernelLaunchError
from ..profiling.storage import atomic_write_text

__all__ = ["TuningCache"]

#: Format version written into every cache document.
CACHE_FORMAT = 1


class TuningCache(BackendBase):
    """Disk-backed memoizing decorator around another backend.

    Wraps the measurement substrate exactly like
    :class:`~repro.engine.CachingBackend`, but the memo table lives
    under ``root`` and survives the process.  ``flush()`` persists dirty
    groups; :func:`repro.tuning.tune` flushes automatically after every
    call (including on error).
    """

    def __init__(self, inner, root: "str | Path"):
        self.inner = as_backend(inner)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        # group key -> {"path": Path, "entries": dict, "dirty": bool}
        self._groups: dict[tuple, dict] = {}

    # -- Backend surface ----------------------------------------------
    @property
    def spec(self):
        return self.inner.spec

    @property
    def sigma(self) -> float:
        return self.inner.sigma

    @property
    def info(self) -> BackendInfo:
        inner = self.inner.info
        return BackendInfo(
            name=f"tuning-cache({inner.name})",
            vectorized=inner.vectorized,
            caching=True,
            batch_limit=inner.batch_limit,
        )

    def cache_info(self) -> dict:
        """Hit/miss accounting for this instance's lifetime."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "groups": len(self._groups),
        }

    # -- group management ---------------------------------------------
    def _group_key(self, r: EvalRequest) -> tuple:
        return (
            self.inner.spec.name,
            repr(float(self.inner.sigma)),
            r.stencil.cache_key(),
            r.oc.name,
            r.grid,
        )

    def _group_path(self, key: tuple) -> Path:
        digest = hashlib.blake2b(
            repr(key).encode(), digest_size=12
        ).hexdigest()
        return self.root / f"{digest}.json"

    def _load_group(self, key: tuple) -> dict:
        group = self._groups.get(key)
        if group is not None:
            return group
        path = self._group_path(key)
        entries: dict[str, object] = {}
        if path.exists():
            try:
                doc = json.loads(path.read_text())
                if (
                    isinstance(doc, dict)
                    and doc.get("format") == CACHE_FORMAT
                ):
                    entries = dict(doc.get("entries", {}))
            except (OSError, ValueError):
                entries = {}  # unreadable document: start over, re-measure
        group = {"path": path, "entries": entries, "dirty": False, "key": key}
        self._groups[key] = group
        return group

    @staticmethod
    def _entry_key(r: EvalRequest) -> str:
        return ",".join(map(str, r.setting.as_tuple()))

    @staticmethod
    def _decode(entry) -> EvalResult:
        if isinstance(entry, (int, float)):
            return EvalResult(time_ms=float(entry))
        return EvalResult(error=KernelLaunchError(str(entry["crash"])))

    def flush(self) -> None:
        """Persist every dirty group atomically."""
        for group in self._groups.values():
            if not group["dirty"]:
                continue
            key = group["key"]
            doc = {
                "format": CACHE_FORMAT,
                "gpu": key[0],
                "sigma": key[1],
                "oc": key[3],
                "grid": list(key[4]) if key[4] else None,
                "entries": group["entries"],
            }
            atomic_write_text(group["path"], json.dumps(doc, sort_keys=True))
            group["dirty"] = False

    # -- evaluation ---------------------------------------------------
    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        out: list[EvalResult | None] = [None] * len(requests)
        miss_requests: list[EvalRequest] = []
        miss_slots: list[int] = []
        miss_pending: dict[tuple, int] = {}
        dupes: list[tuple[int, int]] = []
        # A batch usually spans one (stencil, oc, grid) group; resolving
        # it once per distinct identity keeps replay per-request cost at
        # dict-lookup level.  id() keys are safe here: the request
        # objects stay alive for the whole scope.
        group_memo: dict[tuple, dict] = {}
        for i, r in enumerate(requests):
            mkey = (id(r.stencil), id(r.oc), r.grid)
            group = group_memo.get(mkey)
            if group is None:
                group = self._load_group(self._group_key(r))
                group_memo[mkey] = group
            ekey = self._entry_key(r)
            entry = group["entries"].get(ekey)
            if entry is not None:
                self.hits += 1
                out[i] = self._decode(entry)
                continue
            pending = (id(group), ekey)
            pos = miss_pending.get(pending)
            if pos is not None:
                self.hits += 1  # intra-batch duplicate of a pending miss
                dupes.append((i, pos))
                continue
            miss_pending[pending] = len(miss_requests)
            miss_requests.append(r)
            miss_slots.append(i)
        self.misses += len(miss_requests)
        if miss_requests:
            results = self.inner.evaluate_batch(miss_requests)
            for r, slot, res in zip(miss_requests, miss_slots, results):
                out[slot] = res
                if res.ok:
                    value: object = res.time_ms
                elif res.crashed:
                    value = {"crash": str(res.error)}
                else:
                    continue  # transient fault: never persisted
                group = group_memo[(id(r.stencil), id(r.oc), r.grid)]
                group["entries"][self._entry_key(r)] = value
                group["dirty"] = True
            for i, pos in dupes:
                out[i] = results[pos]
        return out  # type: ignore[return-value]
