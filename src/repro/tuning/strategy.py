"""The Strategy protocol: ask/tell search over a ParameterSpace.

A strategy never measures anything itself.  It *asks* for a batch of
settings, the :func:`repro.tuning.tune` driver evaluates the batch on
the configured :class:`~repro.engine.Backend` (whole frontiers at a
time, so vectorized and cached backends amortize), and *tells* the
strategy the outcomes.  Crashes arrive as data
(:class:`~repro.engine.EvalResult` with ``crashed=True``), exactly as
the engine delivers them; each strategy decides what a crash means for
its search (skip, score ``inf``, reject the move...).

Concrete strategies subclass :class:`GeneratorStrategy` and write the
search loop as a plain generator -- ``yield AskBatch([...])`` evaluates
a batch and returns its results -- which keeps intricate legacy control
flow (the random walk's frontier batching, coordinate descent's
fixed-point passes) readable while the driver owns measurement, budget
and cache concerns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Protocol, runtime_checkable

import numpy as np

from ..errors import TuningError
from .result import TrialRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import BackendInfo, EvalResult
    from ..optimizations.combos import OC
    from ..optimizations.params import ParamSetting
    from ..stencil.stencil import Stencil
    from .space import ParameterSpace

__all__ = [
    "AskBatch",
    "GeneratorStrategy",
    "Strategy",
    "StrategyContext",
    "StrategyOutcome",
    "available_strategies",
    "make_strategy",
    "register_strategy",
]


@dataclass(frozen=True)
class StrategyContext:
    """Everything a strategy may condition on, fixed for one tune() call."""

    stencil: "Stencil"
    stencil_id: int
    oc: "OC"
    space: "ParameterSpace"
    rng: np.random.Generator
    seed: int
    budget: "float | None"
    backend_info: "BackendInfo"
    grid: "tuple[int, ...] | None" = None


@dataclass
class AskBatch:
    """One frontier of settings the strategy wants measured.

    ``grid`` overrides the evaluation grid (the multi-fidelity rungs);
    ``cost`` is the budget charge per setting in full-fidelity units.
    """

    settings: "list[ParamSetting]"
    grid: "tuple[int, ...] | None" = None
    cost: float = 1.0


@dataclass
class StrategyOutcome:
    """What a finished (or budget-stopped) strategy reports back."""

    best_setting: "ParamSetting | None"
    best_time_ms: float
    crashed: int = 0
    extras: dict[str, Any] = field(default_factory=dict)
    trial_log: tuple[TrialRecord, ...] = ()


@runtime_checkable
class Strategy(Protocol):
    """Ask/tell search driver contract."""

    #: Registry name; also the stream component appended to the RNG key.
    name: str

    def stream_components(self, seed: int, stencil_id: int, oc: "OC") -> tuple:
        """Entropy components of this strategy's named RNG stream."""
        ...  # pragma: no cover - protocol

    def prepare(self, ctx: StrategyContext) -> None: ...  # pragma: no cover

    def ask(self) -> "AskBatch | None": ...  # pragma: no cover

    def tell(
        self, batch: AskBatch, results: "list[EvalResult]"
    ) -> None: ...  # pragma: no cover

    def finish(self) -> StrategyOutcome: ...  # pragma: no cover


class GeneratorStrategy:
    """Base class implementing ask/tell over a ``run()`` generator.

    Subclasses implement ``run(ctx)`` as a generator that yields
    :class:`AskBatch` objects and receives the matching result lists
    back from the driver.  Bookkeeping helpers:

    - :meth:`observe` records one consumed evaluation (trial count,
      crash count, best-so-far, optional trial log) -- strategies call
      it only for results they actually *use*, which is what makes
      ``TuneResult.trials`` backend-independent.
    - ``self.best_setting`` / ``self.best_time_ms`` track the incumbent.
    """

    name = "abstract"

    #: Record every observation in the trial log (disable for large runs).
    keep_log = True

    def __init__(self) -> None:
        self.observed = 0
        self.cost = 0.0
        self.crashed = 0
        self.best_setting: "ParamSetting | None" = None
        self.best_time_ms = float("inf")
        self._log: list[TrialRecord] = []
        self._extras: dict[str, Any] = {}
        self._gen: "Iterator[AskBatch] | None" = None
        self._pending: "AskBatch | None" = None
        self._done = False

    # -- stream convention --------------------------------------------
    def stream_components(self, seed: int, stencil_id: int, oc: "OC") -> tuple:
        """Default: ``(seed, stencil_id, oc.name, self.name)``.

        The paper-default random strategy overrides this to drop its
        strategy component (its stream predates the zoo and is pinned by
        the profiling campaign digests).
        """
        return (seed, stencil_id, oc.name, self.name)

    # -- ask/tell plumbing --------------------------------------------
    def prepare(self, ctx: StrategyContext) -> None:
        self.ctx = ctx
        self._gen = self.run(ctx)

    def ask(self) -> "AskBatch | None":
        if self._done:
            return None
        if self._pending is None:
            try:
                self._pending = next(self._gen)
            except StopIteration:
                self._done = True
                return None
        return self._pending

    def tell(self, batch: AskBatch, results: "list[EvalResult]") -> None:
        if self._pending is None:
            raise TuningError(f"{self.name}: tell() without a pending ask()")
        self._pending = None
        try:
            self._pending = self._gen.send(results)
        except StopIteration:
            self._done = True

    def finish(self) -> StrategyOutcome:
        self._gen = None
        return StrategyOutcome(
            best_setting=self.best_setting,
            best_time_ms=self.best_time_ms,
            crashed=self.crashed,
            extras=self._extras,
            trial_log=tuple(self._log),
        )

    # -- bookkeeping helpers ------------------------------------------
    def observe(
        self,
        setting: "ParamSetting",
        result: "EvalResult",
        cost: float = 1.0,
        track_best: bool = True,
    ) -> float:
        """Consume one outcome: returns its time (``inf`` on crash)."""
        self.observed += 1
        self.cost += cost
        if result.crashed:
            self.crashed += 1
            time_ms = float("inf")
        else:
            time_ms = result.value()
            if track_best and time_ms < self.best_time_ms:
                self.best_time_ms = time_ms
                self.best_setting = setting
        if self.keep_log:
            self._log.append(TrialRecord(setting, time_ms, fidelity=cost))
        return time_ms

    def run(self, ctx: StrategyContext):  # pragma: no cover - abstract
        raise NotImplementedError


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type] = {}


def register_strategy(cls: type) -> type:
    """Class decorator adding a strategy to the zoo under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise TuningError(f"{cls.__name__} must define a registry name")
    _REGISTRY[name] = cls
    return cls


def available_strategies() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_strategy(name: str, **options) -> Strategy:
    """Instantiate a registered strategy by name with *options*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise TuningError(
            f"unknown strategy {name!r} "
            f"(available: {', '.join(available_strategies())})"
        ) from None
    try:
        return cls(**options)
    except TypeError as e:
        raise TuningError(f"strategy {name!r}: {e}") from None
