"""Named-stream RNG convention shared by every tuning strategy.

All randomness in :mod:`repro.tuning` flows through one helper,
:func:`stream_rng`, which derives an independent
:class:`numpy.random.Generator` from a tuple of *named* components --
ints are used as-is (negatives masked into SeedSequence's non-negative
entropy domain) and strings are hashed with :func:`zlib.crc32`, which is
stable across processes and Python versions (unlike builtin ``hash``).

The convention (PR 2's stream-key discipline, generalized)::

    stream_rng(seed, stencil_id, oc.name, *strategy_components)

Because streams are keyed by *content* -- never by evaluation order,
backend choice or worker count -- a strategy's draw sequence is
identical no matter how the engine batches, caches, shards or reorders
measurements.  The paper-default random search keys its stream as
``(seed, stencil_id, oc.name)`` with no strategy component (that exact
stream predates the zoo and is pinned by campaign digests); every other
strategy appends its registry name so two strategies never share a
stream.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["stream_component", "stream_key", "stream_rng"]


def stream_component(value: "int | str") -> int:
    """One entropy component: crc32 for strings, masked int otherwise."""
    if isinstance(value, str):
        return zlib.crc32(value.encode())
    v = int(value)
    # SeedSequence rejects negative entropy; the mask keeps ad-hoc
    # stencil_id=-1 calls valid while leaving non-negative ids (and every
    # real seed) untouched -- bit-identical to the pre-refactor keying.
    return v if v >= 0 else v & 0x7FFFFFFF


def stream_key(*components: "int | str") -> tuple[int, ...]:
    """The full entropy tuple for a named stream."""
    return tuple(stream_component(c) for c in components)


def stream_rng(*components: "int | str") -> np.random.Generator:
    """An independent generator for the stream named by *components*."""
    return np.random.default_rng(np.random.SeedSequence(stream_key(*components)))
