"""The paper's random search and coordinate descent as strategies.

``RandomStrategy`` is a *bit-identical* port of the pre-refactor
``RandomSearch.tune_oc`` (Section IV-A: best-of-N random sampling with
crash resampling, optionally polished by basin-covering coordinate
descent).  Its RNG stream, draw sequence, walk order, chunked frontier
sizes, ``seen``-set discipline and measurement log all match the legacy
code exactly -- profiling campaign digests are pinned to this strategy,
so any behavioral change here is a format break (see
``tests/tuning/test_equivalence.py``).

``CoordinateDescentStrategy`` exposes the same descent loop as a
standalone zoo member: multi-start greedy descent over one parameter at
a time, each parameter's whole candidate frontier evaluated as a single
engine batch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .strategy import AskBatch, GeneratorStrategy, StrategyContext, register_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..optimizations.params import ParamSetting

__all__ = ["CoordinateDescentStrategy", "RandomStrategy", "coordinate_descent"]

#: Sampling attempts allowed per requested valid setting (legacy value).
ATTEMPTS_PER_SETTING = 12

#: Coordinate-descent passes after random sampling (legacy value).
REFINE_PASSES = 3


def coordinate_descent(
    strategy: GeneratorStrategy,
    ctx: StrategyContext,
    setting: "ParamSetting",
    time_ms: float,
    seen: "set[tuple[int, ...]]",
    measurements: "list[tuple[ParamSetting, float]]",
    passes: int = REFINE_PASSES,
):
    """Polish *setting* one parameter at a time until a fixed point.

    A sub-generator shared by :class:`RandomStrategy` (refinement) and
    :class:`CoordinateDescentStrategy` (standalone): yields one
    :class:`AskBatch` per parameter frontier and walks the results in
    choice order, so the descent trajectory is identical to evaluating
    candidates one by one -- the exact legacy
    ``RandomSearch._coordinate_descent`` loop.
    """
    for _ in range(passes):
        improved = False
        for name in ctx.space.names:
            candidates = ctx.space.neighbors(setting, name)
            if not candidates:
                continue
            results = yield AskBatch(candidates)
            for candidate, res in zip(candidates, results):
                t = strategy.observe(candidate, res)
                if res.crashed:
                    continue
                key = candidate.as_tuple()
                if key not in seen:
                    seen.add(key)
                    measurements.append((candidate, t))
                if t < time_ms:
                    setting, time_ms = candidate, t
                    improved = True
        if not improved:
            break
    return setting, time_ms


@register_strategy
class RandomStrategy(GeneratorStrategy):
    """Best-of-N random sampling with optional coordinate refinement.

    Parameters
    ----------
    n_settings:
        Valid (non-crashing) settings to measure before refinement.
        Defaults to the tune() budget when one is set (so plain
        ``tune(..., strategy="random", budget=B)`` spends B observations
        sampling), else 8.
    refine:
        Polish the best sample of each (use_smem, stream_dim,
        temporal_steps) basin by coordinate descent -- the legacy
        default, which makes per-OC optima nearly independent of
        sampling luck.
    """

    name = "random"

    def __init__(
        self,
        n_settings: "int | None" = None,
        refine: bool = True,
        attempts_per_setting: int = ATTEMPTS_PER_SETTING,
        refine_passes: int = REFINE_PASSES,
    ):
        super().__init__()
        self.n_settings = None if n_settings is None else int(n_settings)
        self.refine = bool(refine)
        self.attempts_per_setting = int(attempts_per_setting)
        self.refine_passes = int(refine_passes)
        #: Walk-phase crash count (the legacy ``OCResult.crashed`` field;
        #: refinement crashes are *not* counted here, matching history).
        self.walk_crashed = 0
        #: Legacy measurement log: walk acceptances then per-descent
        #: extras, in exactly the pre-refactor order.
        self.measurements: list[tuple["ParamSetting", float]] = []

    def stream_components(self, seed: int, stencil_id: int, oc) -> tuple:
        # The pre-zoo stream: no strategy component.  Campaign digests
        # depend on this exact key (see the module docstring).
        return (seed, stencil_id, oc.name)

    def _chunk_size(self, need: int) -> int:
        """Settings per engine call while ``need`` are missing.

        Vectorized / caching backends amortize fixed batch overhead, so
        they get generous frontiers; the scalar path pays per point
        either way, so it evaluates exactly the sequential point set.
        """
        info = self.ctx.backend_info
        if info.vectorized or info.caching:
            return max(4 * need, 32)
        return max(need, 1)

    def run(self, ctx: StrategyContext):
        n_settings = self.n_settings
        if n_settings is None:
            n_settings = int(ctx.budget) if ctx.budget else 8
        rng = ctx.rng
        max_attempts = n_settings * self.attempts_per_setting
        # The whole tuning batch's randomness is drawn here, once; draws
        # past the stopping point are discarded unobserved, which is
        # exactly what the incremental sampler did.  sample_block is
        # bit-identical to that many sample() calls but vectorizes the
        # RNG work, which dominates a cache-served replay.
        draws = ctx.space.sample_block(max_attempts, rng)

        # Unique settings in first-draw order; the sampling walk below
        # consumes them strictly in this order, so batches can be
        # evaluated ahead of the walk without changing its outcome.
        order: list["ParamSetting"] = []
        first_seen: set[tuple[int, ...]] = set()
        for s in draws:
            k = s.as_tuple()
            if k not in first_seen:
                first_seen.add(k)
                order.append(s)

        results: dict[tuple[int, ...], object] = {}
        frontier = 0  # index into `order` of the first unevaluated setting
        measurements = self.measurements
        seen: set[tuple[int, ...]] = set()
        attempts = 0
        while len(measurements) < n_settings and attempts < max_attempts:
            setting = draws[attempts]
            attempts += 1
            key = setting.as_tuple()
            if key in seen:
                continue
            seen.add(key)
            if key not in results:
                end = min(
                    len(order),
                    frontier + self._chunk_size(n_settings - len(measurements)),
                )
                batch = order[frontier:end]
                batch_results = yield AskBatch(batch)
                for s, res in zip(batch, batch_results):
                    results[s.as_tuple()] = res
                frontier = end
            res = results[key]
            t = self.observe(setting, res)
            if res.crashed:
                self.walk_crashed += 1
                continue
            measurements.append((setting, t))

        if not measurements:
            return  # every attempted setting crashed
        if not self.refine:
            return
        # Basin-covering multi-start: the landscape's major basins are
        # indexed by the discrete mode switches (shared memory on/off,
        # stream axis, temporal degree); coordinate descent from the
        # best sample of each basin makes the per-OC optimum nearly
        # independent of sampling luck.
        basins: dict[tuple[int, int, int], tuple["ParamSetting", float]] = {}
        for setting, t in measurements:
            key = (
                setting["use_smem"],
                setting["stream_dim"],
                setting["temporal_steps"],
            )
            cur = basins.get(key)
            if cur is None or t < cur[1]:
                basins[key] = (setting, t)
        for start_setting, start_time in sorted(
            basins.values(), key=lambda m: m[1]
        ):
            if start_time > 4.0 * self.best_time_ms:
                continue  # hopeless basin; descent cannot recover 4x
            yield from coordinate_descent(
                self,
                ctx,
                start_setting,
                start_time,
                seen,
                measurements,
                self.refine_passes,
            )


@register_strategy
class CoordinateDescentStrategy(GeneratorStrategy):
    """Multi-start greedy coordinate descent.

    Each round samples a fresh start (first round may be pinned via
    ``start``) and descends one parameter frontier at a time until a
    fixed point; rounds repeat until the budget is spent (one round when
    no budget is set).
    """

    name = "coordinate"

    def __init__(
        self,
        start: "ParamSetting | None" = None,
        passes: int = REFINE_PASSES,
    ):
        super().__init__()
        self.start = start
        self.passes = int(passes)

    def run(self, ctx: StrategyContext):
        seen: set[tuple[int, ...]] = set()
        measurements: list[tuple["ParamSetting", float]] = []
        first = True
        while first or (ctx.budget is not None and self.cost < ctx.budget):
            if first and self.start is not None:
                start = self.start
            else:
                start = ctx.space.sample(ctx.rng)
            first = False
            key = start.as_tuple()
            if key not in seen:
                seen.add(key)
                results = yield AskBatch([start])
                t = self.observe(start, results[0])
                if not results[0].crashed:
                    measurements.append((start, t))
            else:
                t = dict(
                    (s.as_tuple(), tm) for s, tm in measurements
                ).get(key, float("inf"))
            if t == float("inf"):
                continue  # crashed start: resample
            yield from coordinate_descent(
                self, ctx, start, t, seen, measurements, self.passes
            )
            if ctx.budget is None:
                break
