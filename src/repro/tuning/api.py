"""The unified autotuning front door: :func:`tune`.

Every parameter search in the repo -- the paper's random walk with
coordinate refinement, the csTuner-style genetic algorithm, the zoo's
annealing / Bayesian / successive-halving strategies -- runs through
this one function.  ``tune()`` owns everything that is *not* search
logic:

- resolving the tuning space (a :class:`~repro.stencil.stencil.Stencil`
  plus OC, or an explicit :class:`~repro.tuning.ParameterSpace` with
  ``restrictions=``),
- resolving the measurement substrate (a backend instance, a backend
  kind name, or a GPU to build one for) and optionally wrapping it in
  the persistent :class:`~repro.tuning.TuningCache`,
- deriving the strategy's named RNG stream from
  ``(seed, stencil_id, oc, strategy)`` so results are deterministic for
  a fixed (strategy, seed, budget) regardless of backend flavor or
  worker count,
- the ask/evaluate/tell loop with fidelity-weighted budget enforcement,
- packaging the outcome as a :class:`~repro.tuning.TuneResult`.

The loop's only contract with the strategy is the ask/tell protocol;
whole frontiers go to the backend as single batches, so vectorized,
cached, and multi-process backends amortize exactly as they do under
the campaign runner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..engine import Backend, EvalRequest, as_backend, make_backend
from ..errors import TuningError
from ..optimizations.combos import OC
from ..stencil.stencil import Stencil
from .cache import TuningCache
from .result import TuneResult
from .rng import stream_rng
from .space import ParameterSpace
from .strategy import Strategy, StrategyContext, make_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

__all__ = ["tune"]


def _resolve_space(space_or_stencil, oc, restrictions):
    if isinstance(space_or_stencil, Stencil):
        if oc is None:
            raise TuningError("tune(stencil, ...) needs an oc= to pick the space")
        return ParameterSpace.for_oc(
            oc, space_or_stencil.ndim, restrictions or None
        ), space_or_stencil
    if isinstance(space_or_stencil, ParameterSpace):
        if restrictions:
            raise TuningError(
                "pass restrictions to the ParameterSpace constructor, "
                "not to tune(), when supplying an explicit space"
            )
        return space_or_stencil, None
    raise TuningError(
        f"tune() wants a Stencil or ParameterSpace, got "
        f"{type(space_or_stencil).__name__}"
    )


def _resolve_backend(backend, gpu, sigma) -> Backend:
    if backend is None:
        if gpu is None:
            raise TuningError("tune() needs backend= or gpu= to measure on")
        return make_backend("vector", gpu, sigma=sigma)
    if isinstance(backend, str):
        if gpu is None:
            raise TuningError(f"backend={backend!r} needs gpu= to target")
        return make_backend(backend, gpu, sigma=sigma)
    return as_backend(backend)


def _resolve_strategy(strategy, options) -> Strategy:
    if isinstance(strategy, str):
        return make_strategy(strategy, **options)
    if options:
        raise TuningError(
            "strategy options are only accepted with a strategy *name*; "
            "configure the instance directly instead"
        )
    if not isinstance(strategy, Strategy):
        raise TuningError(
            f"{type(strategy).__name__} does not implement the Strategy "
            "protocol (name/stream_components/prepare/ask/tell/finish)"
        )
    return strategy


def tune(
    space_or_stencil: "Stencil | ParameterSpace",
    *,
    oc: "OC | None" = None,
    stencil: "Stencil | None" = None,
    gpu=None,
    backend: "Backend | str | None" = None,
    strategy: "Strategy | str" = "random",
    budget: "float | None" = None,
    seed: int = 0,
    stencil_id: int = -1,
    restrictions=(),
    grid: "tuple[int, ...] | None" = None,
    cache_dir: "str | Path | None" = None,
    sigma: float = 0.03,
    rng_streams: "tuple | None" = None,
    **strategy_options,
) -> TuneResult:
    """Tune one (stencil, OC) pair and return the best setting found.

    Parameters
    ----------
    space_or_stencil:
        A :class:`Stencil` (its OC-relevant parameter space is derived
        via ``restrictions=``) or an explicit :class:`ParameterSpace`
        (then ``stencil=`` must name what to measure).
    oc:
        The optimization combination whose parameters are being tuned.
    gpu / backend / sigma:
        The measurement substrate: an existing backend (or simulator),
        a backend kind from :data:`repro.engine.BACKEND_KINDS` plus a
        GPU, or just a GPU (a vector backend is built).
    strategy:
        Zoo name (see :func:`repro.tuning.available_strategies`) with
        ``**strategy_options`` forwarded to its constructor, or a
        ready-made :class:`Strategy` instance.
    budget:
        Evaluation allowance in full-fidelity units.  Strategies size
        themselves to it (random samples ``budget`` settings, annealing
        derives its step count, ...) and the driver enforces it as a
        hard cap between frontiers; reduced-grid evaluations of the
        multi-fidelity strategies charge their grid-cell fraction.
        ``None`` (default) lets the strategy use its own defaults.
    seed / stencil_id / rng_streams:
        Entropy: the strategy's RNG stream is keyed by
        ``strategy.stream_components(seed, stencil_id, oc)`` (the named
        stream convention), or by ``rng_streams`` verbatim when given --
        the escape hatch legacy wrappers use to pin pre-refactor
        streams.
    grid:
        Evaluation grid override (``None``: the paper default for the
        stencil's dimensionality).
    cache_dir:
        When set, wrap the backend in a persistent
        :class:`~repro.tuning.TuningCache` rooted there; hit/miss
        accounting lands in the result.
    """
    space, inferred = _resolve_space(space_or_stencil, oc, restrictions)
    stencil = stencil if stencil is not None else inferred
    if stencil is None:
        raise TuningError(
            "tune(ParameterSpace, ...) needs stencil= to know what to measure"
        )
    if oc is None:
        raise TuningError("tune() needs an oc= to measure")
    if budget is not None and budget <= 0:
        raise TuningError(f"budget must be positive, got {budget!r}")

    strat = _resolve_strategy(strategy, strategy_options)
    base = _resolve_backend(backend, gpu, sigma)
    cache: "TuningCache | None" = None
    if cache_dir is not None:
        cache = TuningCache(base, cache_dir)
    elif isinstance(base, TuningCache):
        cache = base
    substrate = cache if cache is not None else base
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0

    components = (
        rng_streams
        if rng_streams is not None
        else strat.stream_components(seed, stencil_id, oc)
    )
    ctx = StrategyContext(
        stencil=stencil,
        stencil_id=stencil_id,
        oc=oc,
        space=space,
        rng=stream_rng(*components),
        seed=seed,
        budget=budget,
        backend_info=substrate.info,
        grid=grid,
    )

    try:
        strat.prepare(ctx)
        while True:
            batch = strat.ask()
            if batch is None:
                break
            requests = [
                EvalRequest(stencil, oc, s, grid=batch.grid or grid)
                for s in batch.settings
            ]
            results = substrate.evaluate_batch(requests) if requests else []
            strat.tell(batch, results)
            if budget is not None and getattr(strat, "cost", 0.0) >= budget:
                break
        outcome = strat.finish()
    finally:
        if cache is not None:
            cache.flush()

    trials = int(getattr(strat, "observed", len(outcome.trial_log)))
    cost = float(getattr(strat, "cost", trials))
    return TuneResult(
        strategy=strat.name,
        best_setting=outcome.best_setting,
        best_time_ms=outcome.best_time_ms,
        trials=trials,
        cost=cost,
        crashed=outcome.crashed,
        seed=seed,
        budget=budget,
        oc=oc.name,
        stencil=getattr(stencil, "name", None),
        gpu=substrate.spec.name,
        cache_hits=(cache.hits - hits0) if cache is not None else 0,
        cache_misses=(cache.misses - misses0) if cache is not None else 0,
        trial_log=outcome.trial_log,
        extras=dict(outcome.extras),
    )
