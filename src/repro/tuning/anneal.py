"""Simulated annealing over a ParameterSpace.

A short random initial design seeds several independent chains at the
best points found (warm-start annealing -- cold random starts waste most
of a small budget climbing out of crash cliffs), then the chains anneal
in lockstep so every step is one engine batch (the batched backends
price a frontier of K proposals barely above a single point).  Moves
flip one parameter to a different choice; acceptance follows Metropolis
on *relative* slowdown, so the temperature schedule is scale-free across
stencils and GPUs.  Crashing proposals are always rejected.
"""

from __future__ import annotations

import math

from .strategy import AskBatch, GeneratorStrategy, StrategyContext, register_strategy

__all__ = ["AnnealingStrategy"]

_INF = float("inf")


@register_strategy
class AnnealingStrategy(GeneratorStrategy):
    """Metropolis annealing with warm-started parallel chains.

    Parameters
    ----------
    chains:
        Independent chains stepped together (one batch per step).
    init:
        Random initial-design evaluations; the best ``chains`` of them
        become the chain starts.  Defaults to ``6 * chains`` (at most
        half the budget) -- a short design buys better starts than the
        same spend on extra annealing steps.
    steps:
        Annealing steps; defaults to ``(budget - init) / chains`` so a
        budgeted run spends its whole allowance.
    t0 / t1:
        Initial / final temperature of the geometric cooling schedule,
        in units of relative slowdown (``t0=0.3``: a move 30% slower
        than the incumbent is accepted with probability ``1/e`` at the
        start).
    """

    name = "annealing"

    def __init__(
        self,
        chains: int = 2,
        init: "int | None" = None,
        steps: "int | None" = None,
        t0: float = 0.3,
        t1: float = 0.02,
    ):
        super().__init__()
        if chains < 1:
            raise ValueError(f"chains must be >= 1, got {chains}")
        if not 0.0 < t1 <= t0:
            raise ValueError(f"need 0 < t1 <= t0, got t0={t0}, t1={t1}")
        self.chains = int(chains)
        self.init = None if init is None else int(init)
        self.steps = None if steps is None else int(steps)
        self.t0 = float(t0)
        self.t1 = float(t1)

    def _neighbor(self, setting, space, rng):
        """One random single-parameter move (restriction-respecting)."""
        names = space.names
        for _ in range(8):  # bounded retries under restrictions
            name = names[rng.integers(len(names))]
            choices = [c for c in space.choices(name) if c != setting[name]]
            if not choices:
                continue
            candidate = setting.replace(
                **{name: int(choices[rng.integers(len(choices))])}
            )
            if not space.restrictions or space.allows(candidate):
                return candidate
        return setting

    def run(self, ctx: StrategyContext):
        rng = ctx.rng
        space = ctx.space
        k = self.chains
        total = int(ctx.budget) if ctx.budget else 30 * k
        n_init = self.init
        if n_init is None:
            n_init = max(k, min(6 * k, total // 2))

        # Warm start: best initial-design points seed the chains.
        pool = space.sample_many(n_init, rng)
        if not pool:
            return
        results = yield AskBatch(pool)
        scored = [(self.observe(s, r), s) for s, r in zip(pool, results)]
        scored.sort(key=lambda ts: ts[0])
        chains = [(s, t) for t, s in scored[:k]]
        while len(chains) < k:
            chains.append(chains[len(chains) % len(scored)])

        steps = self.steps
        if steps is None:
            steps = max(1, (total - n_init) // k)
        for step in range(steps):
            frac = step / max(1, steps - 1)
            temp = self.t0 * (self.t1 / self.t0) ** frac
            proposals = [self._neighbor(s, space, rng) for s, _ in chains]
            results = yield AskBatch(proposals)
            for i, (proposal, res) in enumerate(zip(proposals, results)):
                t = self.observe(proposal, res)
                cur_setting, cur_time = chains[i]
                if t == _INF:
                    continue  # crashed move: reject
                if cur_time == _INF or t < cur_time:
                    chains[i] = (proposal, t)
                    continue
                slowdown = (t - cur_time) / cur_time
                if rng.random() < math.exp(-slowdown / temp):
                    chains[i] = (proposal, t)
