"""Deterministic fault injection over the GPU simulator.

Real profiling campaigns on GPUs do not only see *deterministic* launch
failures (the simulator's :class:`KernelLaunchError`); they also see
*transient* trouble: kernels that hang past a watchdog, sporadic driver
errors, whole-device resets, and occasionally timings that are simply
garbage.  Both "Opening the Black Box" (Ernst et al.) and the AMD/Nvidia
tuning study (Lappi et al.) treat such events as first-class occurrences a
measurement campaign must absorb.

:class:`FaultInjector` wraps a :class:`~repro.gpu.simulator.GPUSimulator`
and injects those events **deterministically**: every fault decision is a
pure function of ``(seed, unit, oc, setting, attempt)`` hashed through the
same blake2b scheme the measurement noise uses.  Determinism buys two
properties the campaign runner's tests rely on:

- **Reproducibility** -- the same seed yields the same fault sequence,
  on any machine, in any execution order.
- **Retry convergence** -- the per-identity ``attempt`` counter advances
  on every call, so a retried measurement draws fresh fault decisions and
  (at sub-certainty rates) eventually returns the *true* timing.  A
  campaign that retries transient faults therefore reproduces the
  fault-free campaign exactly.

Corrupted timings are modeled as *detectable* garbage (``NaN``, ``inf``,
zero, negative), standing in for the plausibility checks every real
harness applies before accepting a sample; the campaign runner rejects
and re-measures them.  With every rate at zero the injector is a
transparent pass-through: it never draws, never perturbs, and adds no
behavioral difference over the bare simulator.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, fields

import numpy as np

from ..errors import (
    DeviceLostError,
    MeasurementTimeout,
    TransientMeasurementError,
)
from .noise import uniform01
from .simulator import GPUSimulator

#: Detectable corruption values cycled through deterministically.
_CORRUPT_VALUES = (math.nan, math.inf, 0.0, -1.0)


@dataclass(frozen=True)
class FaultConfig:
    """Per-fault-class injection rates (probability per simulator call).

    All rates must lie in ``[0, 1]``.  ``FaultConfig()`` (all zeros)
    disables injection entirely.
    """

    timeout_rate: float = 0.0
    transient_rate: float = 0.0
    device_lost_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{f.name}={v} outside [0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether any fault class has a nonzero rate."""
        return any(getattr(self, f.name) > 0.0 for f in fields(self))

    @classmethod
    def uniform(cls, rate: float) -> "FaultConfig":
        """One rate for the per-call classes; device loss at a hundredth.

        Device resets void every measurement in flight and force a whole
        tuning point to re-run, and on real machines they are orders of
        magnitude rarer than per-measurement hiccups -- hence the heavy
        derating.
        """
        return cls(
            timeout_rate=rate,
            transient_rate=rate,
            device_lost_rate=rate / 100.0,
            corrupt_rate=rate,
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultConfig":
        return cls(**{f.name: float(doc.get(f.name, 0.0)) for f in fields(cls)})


class FaultInjector:
    """A :class:`GPUSimulator` facade that injects deterministic faults.

    Parameters
    ----------
    sim:
        The wrapped simulator; faults apply on top of its (already
        deterministic) timings.
    config:
        Per-class injection rates.
    seed:
        Fault-stream seed, independent of the measurement-noise seed so
        fault schedules can vary without moving the underlying timings.

    The injector exposes the simulator surface the profiling search uses
    (``spec``, ``sigma``, ``time``); ``run`` passes through un-faulted for
    ad-hoc inspection since campaigns only ever call ``time``.
    """

    def __init__(
        self, sim: GPUSimulator, config: FaultConfig, seed: int = 0
    ):
        self.sim = sim
        self.config = config
        self.seed = int(seed)
        self._unit_key: object = None
        self._attempts: dict[tuple, int] = {}

    @property
    def spec(self):
        return self.sim.spec

    @property
    def sigma(self) -> float:
        return self.sim.sigma

    # ------------------------------------------------------------------
    def begin_unit(self, unit_key: object) -> None:
        """Scope subsequent fault draws to one work unit.

        Called by the campaign runner at the *start* of each (gpu,
        stencil) unit -- but not on unit retries, so a retried unit keeps
        advancing its attempt counters instead of replaying the same
        faults forever.  Scoping draws to the unit makes each unit's
        fault schedule independent of whatever ran before it, which is
        what makes checkpoint/resume provably equivalent to an
        uninterrupted run.
        """
        self._unit_key = unit_key
        self._attempts.clear()

    # ------------------------------------------------------------------
    def run(self, stencil, oc, setting, grid=None, boundary=None):
        return self.sim.run(stencil, oc, setting, grid=grid, boundary=boundary)

    # -- draw primitives ------------------------------------------------
    # These are shared with the engine's FaultBackend decorator, which
    # batches the underlying evaluation but must draw the exact same
    # fault decisions from the exact same keys.

    def identity(self, stencil, oc, setting) -> tuple:
        """The per-point fault-stream key (unit-scoped)."""
        return (
            self._unit_key,
            self.sim.spec.name,
            stencil.cache_key(),
            oc.name,
            setting.as_tuple(),
        )

    def next_attempt(self, identity: tuple) -> int:
        """Advance and return the per-identity attempt counter."""
        attempt = self._attempts.get(identity, 0)
        self._attempts[identity] = attempt + 1
        return attempt

    def pre_fault(self, identity: tuple, attempt: int, oc) -> Exception | None:
        """Draw the fault classes that preempt the measurement itself.

        Raises :class:`DeviceLostError` (it voids everything in flight,
        so it must preempt the milder failure classes), returns a timeout
        or transient error to be recorded/raised by the caller, or
        ``None`` when the measurement may proceed.
        """
        cfg = self.config

        def draw(kind: str) -> float:
            return uniform01(self.seed, kind, *identity, attempt)

        if cfg.device_lost_rate > 0 and draw("lost") < cfg.device_lost_rate:
            raise DeviceLostError(
                f"device {self.sim.spec.name} lost (unit {self._unit_key!r}, "
                f"attempt {attempt})"
            )
        if cfg.timeout_rate > 0 and draw("timeout") < cfg.timeout_rate:
            return MeasurementTimeout(
                f"kernel hung on {self.sim.spec.name} ({oc.name}, attempt {attempt})"
            )
        if cfg.transient_rate > 0 and draw("transient") < cfg.transient_rate:
            return TransientMeasurementError(
                f"sporadic failure on {self.sim.spec.name} "
                f"({oc.name}, attempt {attempt})"
            )
        return None

    # -- batched draw primitives ----------------------------------------
    # The engine's FaultBackend evaluates whole batches; these helpers
    # compute the same draws as the scalar primitives above, amortized:
    # attempt counters are sequenced through a local overlay (so draws
    # can be made speculatively and committed only as far as the scalar
    # path would have advanced), and the blake2b keying hashes the
    # (seed, kind, unit, gpu, stencil) prefix once per distinct stencil,
    # paying only the (oc, setting, attempt) suffix per row.

    def batch_identities(self, requests) -> list[tuple]:
        """Fault-stream keys for a request batch (stencil keys memoized)."""
        unit = self._unit_key
        gpu = self.sim.spec.name
        keys: dict[int, tuple] = {}
        out: list[tuple] = []
        for req in requests:
            s = req.stencil
            sk = keys.get(id(s))
            if sk is None:
                sk = s.cache_key()
                keys[id(s)] = sk
            out.append((unit, gpu, sk, req.oc.name, req.setting.as_tuple()))
        return out

    def batch_attempts(self, identities: list[tuple]) -> list[int]:
        """Provisional attempt numbers, sequenced within the batch.

        A repeated identity gets successive attempts, exactly as repeated
        :meth:`next_attempt` calls would.  Nothing is committed; call
        :meth:`commit_attempts` with how far the batch actually got.
        """
        overlay: dict[tuple, int] = {}
        base = self._attempts
        out: list[int] = []
        for ident in identities:
            a = overlay.get(ident)
            if a is None:
                a = base.get(ident, 0)
            out.append(a)
            overlay[ident] = a + 1
        return out

    def commit_attempts(
        self, identities: list[tuple], attempts: list[int], upto: int | None = None
    ) -> None:
        """Commit provisional attempts for rows ``[0, upto)`` (default all).

        Matches the scalar path: a device loss at row *k* leaves counters
        advanced for rows ``0..k`` inclusive (``upto=k+1``) and untouched
        beyond.
        """
        n = len(identities) if upto is None else upto
        for i in range(n):
            self._attempts[identities[i]] = attempts[i] + 1

    def batch_uniform(
        self, kind: str, identities: list[tuple], attempts: list[int]
    ) -> np.ndarray:
        """``uniform01(seed, kind, *identity, attempt)`` per row, as float64.

        Bit-identical to the scalar draw: same blake2b keying, same
        ``first_word / 2**64`` mapping (computed in exact integer
        arithmetic before the float division).
        """
        out = np.empty(len(identities))
        prefixes: dict[tuple, "hashlib.blake2b"] = {}
        sep = b"\x1f"
        seed = self.seed
        for i, ident in enumerate(identities):
            pkey = ident[:3]  # (unit, gpu, stencil_key); kind fixed per call
            h = prefixes.get(pkey)
            if h is None:
                h = hashlib.blake2b(digest_size=16)
                for part in (seed, kind, ident[0], ident[1], ident[2]):
                    h.update(repr(part).encode())
                    h.update(sep)
                prefixes[pkey] = h
            d = h.copy()
            d.update(repr(ident[3]).encode())
            d.update(sep)
            d.update(repr(ident[4]).encode())
            d.update(sep)
            d.update(repr(attempts[i]).encode())
            d.update(sep)
            out[i] = struct.unpack_from("<Q", d.digest())[0] / 2**64
        return out

    def maybe_corrupt(self, identity: tuple, attempt: int, t: float) -> float:
        """Replace a measured time with detectable garbage, or keep it."""
        cfg = self.config
        if (
            cfg.corrupt_rate > 0
            and uniform01(self.seed, "corrupt", *identity, attempt)
            < cfg.corrupt_rate
        ):
            idx = int(uniform01(self.seed, "corrupt-kind", *identity, attempt)
                      * len(_CORRUPT_VALUES))
            return _CORRUPT_VALUES[min(idx, len(_CORRUPT_VALUES) - 1)]
        return t

    # ------------------------------------------------------------------
    def time(self, stencil, oc, setting, grid=None) -> float:
        """Simulated time with fault injection.

        Raises
        ------
        MeasurementTimeout, TransientMeasurementError, DeviceLostError
            According to the configured rates.
        KernelLaunchError
            Propagated unchanged from the wrapped simulator.
        """
        if not self.config.enabled:
            return self.sim.time(stencil, oc, setting, grid=grid)
        identity = self.identity(stencil, oc, setting)
        attempt = self.next_attempt(identity)
        err = self.pre_fault(identity, attempt, oc)
        if err is not None:
            raise err
        t = self.sim.time(stencil, oc, setting, grid=grid)
        return self.maybe_corrupt(identity, attempt, t)


def is_valid_time(t: float) -> bool:
    """Plausibility check a harness applies before accepting a sample."""
    return math.isfinite(t) and t > 0.0
