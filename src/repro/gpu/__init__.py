"""Simulated GPU substrate (Tables III/IV plus the timing model)."""

from .faults import FaultConfig, FaultInjector, is_valid_time
from .noise import noise_factor, uniform01
from .occupancy import Occupancy, compute_occupancy
from .simulator import GPUSimulator, SimResult, simulate
from .specs import (
    GPU_ORDER,
    GPUS,
    HARDWARE_FEATURE_NAMES,
    MACHINES,
    RENTAL_GPUS,
    GPUSpec,
    MachineSpec,
    get_gpu,
    hardware_features,
)

__all__ = [
    "FaultConfig",
    "FaultInjector",
    "GPU_ORDER",
    "GPUS",
    "GPUSimulator",
    "GPUSpec",
    "HARDWARE_FEATURE_NAMES",
    "MACHINES",
    "MachineSpec",
    "Occupancy",
    "RENTAL_GPUS",
    "SimResult",
    "compute_occupancy",
    "get_gpu",
    "hardware_features",
    "is_valid_time",
    "noise_factor",
    "simulate",
    "uniform01",
]
