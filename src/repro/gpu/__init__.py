"""Simulated GPU substrate (Tables III/IV plus the timing model)."""

from .faults import FaultConfig, FaultInjector, is_valid_time
from .noise import noise_factor, uniform01
from .occupancy import Occupancy, compute_occupancy
from .simulator import GPUSimulator, SimResult, simulate
from .specs import (
    ALL_GPU_ORDER,
    AMD_GPU_ORDER,
    GPU_ORDER,
    GPUS,
    HARDWARE_FEATURE_NAMES,
    MACHINES,
    RENTAL_GPUS,
    GPUSpec,
    MachineSpec,
    get_gpu,
    hardware_features,
)
from .vendor import VENDOR_INFO, Vendor, VendorInfo, vendor_info

__all__ = [
    "ALL_GPU_ORDER",
    "AMD_GPU_ORDER",
    "FaultConfig",
    "FaultInjector",
    "GPU_ORDER",
    "GPUS",
    "GPUSimulator",
    "GPUSpec",
    "HARDWARE_FEATURE_NAMES",
    "MACHINES",
    "MachineSpec",
    "Occupancy",
    "RENTAL_GPUS",
    "SimResult",
    "VENDOR_INFO",
    "Vendor",
    "VendorInfo",
    "compute_occupancy",
    "get_gpu",
    "hardware_features",
    "is_valid_time",
    "noise_factor",
    "simulate",
    "uniform01",
    "vendor_info",
]
