"""Simulated GPU substrate (Tables III/IV plus the timing model)."""

from .noise import noise_factor
from .occupancy import Occupancy, compute_occupancy
from .simulator import GPUSimulator, SimResult, simulate
from .specs import (
    GPU_ORDER,
    GPUS,
    HARDWARE_FEATURE_NAMES,
    MACHINES,
    RENTAL_GPUS,
    GPUSpec,
    MachineSpec,
    get_gpu,
    hardware_features,
)

__all__ = [
    "GPU_ORDER",
    "GPUS",
    "GPUSimulator",
    "GPUSpec",
    "HARDWARE_FEATURE_NAMES",
    "MACHINES",
    "MachineSpec",
    "Occupancy",
    "RENTAL_GPUS",
    "SimResult",
    "compute_occupancy",
    "get_gpu",
    "hardware_features",
    "noise_factor",
    "simulate",
]
