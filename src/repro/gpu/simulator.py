"""Analytical GPU timing simulator for stencil kernels.

This is the measurement substrate standing in for the paper's four physical
GPUs: given a :class:`~repro.optimizations.kernelmodel.KernelProfile` and a
:class:`~repro.gpu.specs.GPUSpec`, it produces an execution time per sweep
in milliseconds.  The model composes:

1. **Occupancy** -- CUDA-style residency math; zero-occupancy and
   over-limit configurations raise :class:`KernelLaunchError` ("the OC
   crashes under certain stencils", Section III-A).
2. **Latency hiding** -- achieved DRAM bandwidth and issue throughput are
   saturating functions of resident warps; register-heavy variants lose
   both.
3. **Memory hierarchy** -- DRAM time uses the profile's base reads plus an
   L2-capacity-dependent re-read amplification; L2 time uses the SM<->L2
   transaction volume against the GPU's L2 bandwidth; coalescing scales
   the effective DRAM bandwidth.
4. **Compute** -- FP64 roofline with the per-architecture achieved
   efficiency (the CUDA 10.0 / PTX-JIT penalty on A100 lives in the spec).
5. **Wave quantization** -- the dominant phase is stretched by the tail
   effect when the block count does not fill an integer number of waves.
6. **Streaming stalls** -- per-plane synchronization plus exposed load
   latency, mostly hidden by prefetching.
7. **Launch overhead** -- per kernel invocation; temporal blocking
   amortizes it across fused steps.
8. **Measurement noise** -- deterministic lognormal jitter keyed by the
   full run identity.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import KernelLaunchError
from ..optimizations.combos import OC
from ..optimizations.kernelmodel import TIME_STEPS, KernelProfile, build_profile
from ..optimizations.params import ParamSetting
from ..stencil.stencil import Stencil
from .noise import noise_factor
from .occupancy import Occupancy, compute_occupancy
from .specs import GPUSpec, get_gpu

#: Half-saturation occupancies for the latency-hiding curves: DRAM traffic
#: needs more parallelism to saturate than the issue pipelines do.
_BW_HALF_OCC = 0.15
_COMPUTE_HALF_OCC = 0.10

#: DRAM efficiency derating for cache-served schemes, whose warps keep many
#: concurrent row streams alive (DRAM page thrash, sector overfetch).
_SCATTER_EFF = 0.70

#: Fraction of nominal L2 capacity usable for stencil reuse windows.
_L2_USABLE = 0.80

#: Streaming per-iteration costs in cycles.
_SYNC_CYCLES = 25.0
_EXPOSED_LATENCY_CYCLES = 320.0
_PREFETCH_HIDING = 0.70

#: Exponent of the smooth-max combining the three roofline phases.
_SMOOTH_P = 4.0


@dataclass(frozen=True)
class SimResult:
    """Timing breakdown for one simulated kernel configuration.

    ``time_ms`` is the headline number: execution time per time step
    (sweep), noise included.  The phase fields are noise-free and per
    launch, kept for reports and ablation studies.
    """

    time_ms: float
    dram_ms: float
    l2_ms: float
    compute_ms: float
    stream_ms: float
    launch_ms: float
    occupancy: Occupancy
    utilization: float
    profile: KernelProfile


class GPUSimulator:
    """Timing model for one GPU.

    Parameters
    ----------
    gpu:
        GPU name or spec (Table III).
    sigma:
        Measurement-noise level; 0 disables noise (used by model tests).
    """

    def __init__(self, gpu: "GPUSpec | str", sigma: float = 0.03):
        self.spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
        self.sigma = float(sigma)

    # ------------------------------------------------------------------
    def run(
        self,
        stencil: Stencil,
        oc: OC,
        setting: ParamSetting,
        grid: tuple[int, ...] | None = None,
        boundary=None,
    ) -> SimResult:
        """Simulate *stencil* under *oc*/*setting*; returns per-step timing.

        ``boundary`` (a :class:`repro.stencil.Boundary`) enables the
        future-work extension: boundary handling scales the time by its
        overhead factor (divergent edge blocks, ghost traffic).

        Raises
        ------
        KernelLaunchError
            When the configuration exceeds a hardware limit on this GPU.
        """
        if self.spec.warp_size == 32:
            # Legacy positional call: keeps build_profile stubs (tests,
            # tooling) working and shares cache entries across NVIDIA
            # devices exactly as before.
            profile = build_profile(stencil, oc, setting, grid=grid)
        else:
            profile = build_profile(
                stencil, oc, setting, grid=grid, warp_size=self.spec.warp_size
            )
        result = self.time_profile(profile)
        if boundary is not None:
            from ..stencil.boundary import boundary_overhead_factor
            from ..optimizations.kernelmodel import default_grid

            dims = default_grid(stencil.ndim) if grid is None else tuple(grid)
            factor = boundary_overhead_factor(stencil, dims, boundary)
            result = replace(result, time_ms=result.time_ms * factor)
        if self.sigma > 0:
            jitter = noise_factor(
                self.spec.name,
                stencil.cache_key(),
                oc.name,
                setting.as_tuple(),
                sigma=self.sigma,
            )
            result = replace(result, time_ms=result.time_ms * jitter)
        return result

    def time(self, stencil, oc, setting, grid=None) -> float:
        """Per-step time in ms for a configuration: the one scalar path.

        This is the *single* per-point timing implementation in the repo:
        :func:`simulate`, the engine's
        :class:`~repro.engine.ScalarBackend` (and through it every
        backend's scalar fallback) and the fault injector all funnel into
        this method, so model changes land in one place.
        """
        return self.run(stencil, oc, setting, grid=grid).time_ms

    # ------------------------------------------------------------------
    def time_profile(self, profile: KernelProfile) -> SimResult:
        """Noise-free timing for a pre-built kernel profile."""
        spec = self.spec
        occ = compute_occupancy(
            spec,
            profile.threads_per_block,
            profile.regs_per_thread,
            profile.smem_per_block,
        )
        if profile.n_blocks < 1:
            raise KernelLaunchError("empty grid: zero thread blocks")

        # Resident parallelism may be supply-limited when few blocks exist.
        blocks_per_sm_eff = min(
            occ.blocks_per_sm,
            max(1, -(-profile.n_blocks // spec.sms)),  # ceil div
        )
        warps_per_block = -(-profile.threads_per_block // spec.warp_size)
        achieved_occ = min(
            1.0,
            blocks_per_sm_eff * warps_per_block / spec.max_warps_per_sm,
        )

        bw_frac = achieved_occ / (achieved_occ + _BW_HALF_OCC)
        comp_frac = achieved_occ / (achieved_occ + _COMPUTE_HALF_OCC)

        # Wave quantization / tail effect.
        slots_per_wave = occ.blocks_per_sm * spec.sms
        n_waves = -(-profile.n_blocks // slots_per_wave)
        utilization = profile.n_blocks / (n_waves * slots_per_wave)
        utilization = max(utilization, 1e-3)

        # --- DRAM phase -------------------------------------------------
        if profile.reuse_window_bytes > 0:
            p_hit = min(1.0, _L2_USABLE * spec.l2_bytes / profile.reuse_window_bytes)
        else:
            p_hit = 1.0
        reads = profile.read_bytes_base * (
            1.0 + (profile.read_amplification - 1.0) * (1.0 - p_hit)
        )
        dram_bytes = reads + profile.write_bytes
        dram_bw = (
            spec.dram_bytes_per_s
            * spec.memory_efficiency
            * bw_frac
            * profile.coalescing
        )
        if profile.scattered:
            dram_bw *= _SCATTER_EFF
        dram_s = dram_bytes / dram_bw

        # --- L2 phase ---------------------------------------------------
        l2_bw = spec.dram_bytes_per_s * spec.l2_bw_ratio * bw_frac
        l2_s = profile.l2_bytes / l2_bw

        # --- shared-memory phase ------------------------------------------
        # Aggregate scratchpad (smem/LDS) bandwidth: bytes/cycle per SM/CU
        # from the vendor layer, derated for bank conflicts and issue
        # overhead.
        smem_bw = (
            spec.sms
            * spec.smem_bytes_per_clk
            * spec.boost_clock_mhz
            * 1e6
            * 0.35
            * comp_frac
        )
        smem_s = profile.smem_bytes / smem_bw

        # --- compute phase ----------------------------------------------
        flops_rate = spec.peak_fp64_flops * spec.compute_efficiency * comp_frac
        compute_s = profile.flops / flops_rate

        # --- combine ----------------------------------------------------
        p = _SMOOTH_P
        main_s = (dram_s**p + l2_s**p + compute_s**p + smem_s**p) ** (1.0 / p)
        main_s /= utilization

        # --- streaming stalls ---------------------------------------------
        stream_s = 0.0
        if profile.stream_iters:
            exposed = _EXPOSED_LATENCY_CYCLES
            if profile.prefetch:
                exposed *= 1.0 - _PREFETCH_HIDING
            exposed /= max(1.0, warps_per_block / 4.0)
            cycles = profile.stream_iters * (_SYNC_CYCLES + exposed)
            stream_s = n_waves * cycles / (spec.boost_clock_mhz * 1e6)

        launch_s = spec.kernel_launch_us * 1e-6
        per_launch_s = main_s + stream_s + launch_s
        per_step_ms = per_launch_s * profile.launches / TIME_STEPS * 1e3

        return SimResult(
            time_ms=per_step_ms,
            dram_ms=dram_s * 1e3,
            l2_ms=l2_s * 1e3,
            compute_ms=compute_s * 1e3,
            stream_ms=stream_s * 1e3,
            launch_ms=launch_s * 1e3,
            occupancy=occ,
            utilization=utilization,
            profile=profile,
        )


def simulate(
    gpu: "GPUSpec | str",
    stencil: Stencil,
    oc: OC,
    setting: ParamSetting,
    sigma: float = 0.03,
) -> float:
    """One-shot convenience: per-step time in ms for a configuration."""
    return GPUSimulator(gpu, sigma=sigma).time(stencil, oc, setting)
