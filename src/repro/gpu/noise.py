"""Deterministic measurement noise.

Real profiling runs jitter run to run; a noiseless analytical model would
make the regression task unrealistically easy and the classification labels
unrealistically clean.  We perturb each simulated time with multiplicative
lognormal noise whose seed is derived from the full run identity
(GPU, stencil, OC, parameter setting), so repeated "measurements" of the
same configuration agree exactly while distinct configurations decorrelate.
"""

from __future__ import annotations

import hashlib
import math
import struct

#: Standard deviation of the lognormal jitter (about +/-3% per sample).
DEFAULT_SIGMA = 0.03


def _digest(*parts: object) -> tuple[int, int]:
    """Stable pair of 64-bit words from arbitrary run-identity parts.

    Python's builtin ``hash`` is salted per process, so we serialize the
    repr of each part through blake2b instead.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return struct.unpack("<QQ", h.digest())


def standard_normal(*key: object) -> float:
    """Deterministic standard-normal draw keyed by *key* (Box-Muller).

    Constructing a ``numpy`` Generator per call would dominate the
    simulator's runtime at dataset scale, so the two uniforms come straight
    from a blake2b digest of the key.
    """
    a, b = _digest(*key)
    u1 = (a + 1) / (2**64 + 1)  # in (0, 1), never exactly 0
    u2 = b / 2**64
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


def uniform01(*key: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by *key*.

    Shares the blake2b keying scheme of :func:`standard_normal` so fault
    injection (:mod:`repro.gpu.faults`) is reproducible across processes
    and independent of call order.
    """
    a, _ = _digest(*key)
    return a / 2**64


def noise_factor(*key: object, sigma: float = DEFAULT_SIGMA) -> float:
    """Deterministic multiplicative jitter for the run identified by *key*.

    Returns ``exp(sigma * z)`` with ``z`` standard normal derived from the
    key; the expected value is slightly above 1 (lognormal mean), which is
    harmless since every configuration receives the same treatment.
    """
    if sigma <= 0:
        return 1.0
    return math.exp(sigma * standard_normal(*key))
