"""Vendor abstraction: the architectural constants that differ by GPU maker.

The reproduction's original spec database was NVIDIA-shaped: a 32-thread
warp, CUDA-style shared memory, 256-register allocation granules and the
CUDA dialect were baked into the occupancy math, the kernel model and the
code generator.  Cross-vendor portability (Lappi et al., arXiv:2406.08923;
Sai et al., arXiv:2309.04671) needs those choices to be *data*, not code:
an AMD CDNA-class device schedules 64-lane wavefronts against a fixed
64 KB LDS and compiles HIP, and every formula that hard-codes 32 (or
emits ``<<< >>>``) silently mis-models it.

This module centralizes the per-vendor constants.  :class:`VendorInfo` is
deliberately small: only quantities at least one consumer actually reads
are recorded, so every field is testable.  Device-specific numbers
(memory, CU/SM count, register file, cache sizes) stay per-device in
:mod:`repro.gpu.specs`; what lives here is what all devices of a vendor
share.

NVIDIA values are the exact constants the formulas used before the
abstraction existed, so routing through the vendor layer is bit-identical
for every NVIDIA device -- the regression tests in
``tests/engine/test_portability_identity.py`` pin that.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Vendor(str, Enum):
    """GPU vendor; the key into :data:`VENDOR_INFO`."""

    NVIDIA = "nvidia"
    AMD = "amd"


@dataclass(frozen=True)
class VendorInfo:
    """Architectural constants shared by every device of one vendor.

    Attributes
    ----------
    warp_size:
        Threads per scheduling unit (NVIDIA warp: 32, AMD wavefront: 64).
    reg_alloc_unit:
        Register-file allocation granularity in registers per warp/wave
        (CUDA occupancy tables: 256; CDNA allocates 4-VGPR granules per
        64-lane wave, also 256 registers).
    smem_alloc_unit:
        Scratchpad allocation granularity in bytes (CUDA smem: 256 B;
        CDNA LDS is allocated in 512 B granules).
    smem_banks:
        Scratchpad banks (32 four-byte banks on both modeled vendors).
    smem_bytes_per_clk:
        Per-SM/CU scratchpad bandwidth in bytes per clock (128 B/clk on
        both: 32 banks x 4 B).
    dialect:
        Source dialect the code generator emits for this vendor
        (``"cuda"`` or ``"hip"``).
    smem_term:
        Vendor vocabulary for the scratchpad ("shared memory" vs "LDS"),
        used by reports and docs.
    compiler:
        Reference offline compiler for the dialect (``nvcc`` / ``hipcc``).
    """

    vendor: Vendor
    warp_size: int
    reg_alloc_unit: int
    smem_alloc_unit: int
    smem_banks: int
    smem_bytes_per_clk: float
    dialect: str
    smem_term: str
    compiler: str


VENDOR_INFO: dict[Vendor, VendorInfo] = {
    Vendor.NVIDIA: VendorInfo(
        vendor=Vendor.NVIDIA,
        warp_size=32,
        reg_alloc_unit=256,
        smem_alloc_unit=256,
        smem_banks=32,
        smem_bytes_per_clk=128.0,
        dialect="cuda",
        smem_term="shared memory",
        compiler="nvcc",
    ),
    Vendor.AMD: VendorInfo(
        vendor=Vendor.AMD,
        warp_size=64,
        reg_alloc_unit=256,
        smem_alloc_unit=512,
        smem_banks=32,
        smem_bytes_per_clk=128.0,
        dialect="hip",
        smem_term="LDS",
        compiler="hipcc",
    ),
}


def vendor_info(vendor: Vendor) -> VendorInfo:
    """Constants for *vendor* (total function over the enum)."""
    return VENDOR_INFO[vendor]
