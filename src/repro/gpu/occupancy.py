"""CUDA-style occupancy calculation.

Given a kernel's per-thread register count, per-block shared memory and
block size, compute how many blocks fit on one SM and the resulting warp
occupancy.  This follows the standard CUDA occupancy-calculator math with
register allocation rounded to warp granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import KernelLaunchError
from .specs import GPUSpec

#: Register allocation granularity on NVIDIA devices (registers are
#: allocated per warp in units of 256 on all modeled generations).  Kept
#: for backward compatibility; :func:`compute_occupancy` reads the
#: per-vendor granule from ``spec.reg_alloc_unit``.
_REG_ALLOC_UNIT = 256

#: Shared memory allocation granularity on NVIDIA devices (see above;
#: AMD LDS uses 512 B granules via ``spec.smem_alloc_unit``).
_SMEM_ALLOC_UNIT = 256


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy calculation for one kernel on one GPU.

    Attributes
    ----------
    blocks_per_sm:
        Resident thread blocks per SM.
    warps_per_sm:
        Resident warps per SM.
    occupancy:
        ``warps_per_sm / max_warps_per_sm`` in [0, 1].
    limiter:
        Which resource bounds residency: ``"threads"``, ``"registers"``,
        ``"smem"`` or ``"blocks"``.
    """

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float
    limiter: str


def compute_occupancy(
    spec: GPUSpec,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int,
) -> Occupancy:
    """Compute SM residency for a kernel configuration.

    Raises
    ------
    KernelLaunchError
        If the configuration cannot launch at all: block too large,
        registers per thread over the hardware limit, shared memory per
        block over the limit, or zero blocks fit on an SM.
    """
    if threads_per_block < 1:
        raise KernelLaunchError(f"block of {threads_per_block} threads")
    if threads_per_block > spec.max_threads_per_block:
        raise KernelLaunchError(
            f"block of {threads_per_block} threads exceeds "
            f"{spec.max_threads_per_block} on {spec.name}"
        )
    if regs_per_thread > spec.max_registers_per_thread:
        raise KernelLaunchError(
            f"{regs_per_thread} registers/thread exceeds "
            f"{spec.max_registers_per_thread} on {spec.name}"
        )
    if smem_per_block > spec.smem_per_block_max:
        raise KernelLaunchError(
            f"{smem_per_block} B shared memory/block exceeds "
            f"{spec.smem_per_block_max} B on {spec.name}"
        )

    warps_per_block = math.ceil(threads_per_block / spec.warp_size)

    limits: dict[str, int] = {}
    limits["threads"] = spec.max_warps_per_sm // warps_per_block
    limits["blocks"] = spec.max_blocks_per_sm

    regs_per_warp = _round_up(
        max(regs_per_thread, 1) * spec.warp_size, spec.reg_alloc_unit
    )
    regs_per_block = regs_per_warp * warps_per_block
    limits["registers"] = spec.registers_per_sm // regs_per_block

    if smem_per_block > 0:
        smem = _round_up(smem_per_block, spec.smem_alloc_unit)
        limits["smem"] = spec.smem_per_sm // smem
    else:
        limits["smem"] = limits["blocks"]

    # Tie-break toward the benign limiter so reports read naturally when a
    # light kernel saturates several limits at once.
    priority = {"threads": 0, "blocks": 1, "registers": 2, "smem": 3}
    limiter = min(limits, key=lambda k: (limits[k], priority[k]))
    blocks = limits[limiter]
    if blocks < 1:
        raise KernelLaunchError(
            f"zero occupancy on {spec.name}: limited by {limiter} "
            f"(threads/block={threads_per_block}, regs={regs_per_thread}, "
            f"smem={smem_per_block})"
        )
    warps = blocks * warps_per_block
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / spec.max_warps_per_sm,
        limiter=limiter,
    )


def _round_up(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit
