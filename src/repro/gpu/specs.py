"""GPU and host-machine specification database (paper Tables III and IV).

Table III lists the headline numbers (memory, bandwidth, SM count, peak
double-precision TFLOPS, Google Cloud rental price).  The simulator also
needs per-SM microarchitectural limits (register file, shared memory,
resident threads/blocks) and cache sizes; those are taken from the NVIDIA
whitepapers / CUDA occupancy tables for each generation and recorded here so
every model input is explicit and testable.

Two *efficiency* fields encode measured-vs-theoretical gaps that matter for
reproducing the paper's cross-architecture observations:

``compute_efficiency``
    Achieved fraction of peak FP64 FMA throughput for compiled stencil
    kernels.  The paper's software stack is CUDA v10.0, which cannot target
    Ampere (``sm_80``) natively -- A100 binaries run through PTX JIT and
    lose a significant fraction of compute throughput, which is how a V100
    can beat an A100 on compute-bound high-order box stencils (Fig. 4).
``memory_efficiency``
    Achieved fraction of peak DRAM bandwidth under ideal streaming access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownGPUError
from repro.gpu.vendor import VENDOR_INFO, Vendor, VendorInfo


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Headline fields mirror Table III; the remaining fields are the
    occupancy and memory-hierarchy limits the simulator consumes.
    Sizes are bytes unless suffixed otherwise; clocks are MHz.
    Architectural constants shared by a whole vendor (warp/wavefront
    width, allocation granules, scratchpad banking, source dialect) are
    not stored per device: they delegate to :data:`repro.gpu.vendor.VENDOR_INFO`
    via the ``vendor`` field.
    """

    name: str
    generation: str
    memory_gb: int
    mem_bw_gbs: float
    sms: int
    fp64_tflops: float
    rental_per_hour: float | None  # None: not offered by Google Cloud

    # Per-SM occupancy limits (CUDA occupancy tables).
    registers_per_sm: int
    smem_per_sm: int
    smem_per_block_max: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    max_registers_per_thread: int

    # Memory hierarchy.
    l2_bytes: int
    l2_bw_ratio: float  # L2 bandwidth as a multiple of DRAM bandwidth

    # Clocks and overheads.
    boost_clock_mhz: int
    kernel_launch_us: float

    # Achieved-vs-theoretical efficiency (see module docstring).
    compute_efficiency: float
    memory_efficiency: float

    # Vendor (defaulted last so the NVIDIA entries above need no edit).
    vendor: Vendor = Vendor.NVIDIA

    @property
    def vendor_info(self) -> VendorInfo:
        return VENDOR_INFO[self.vendor]

    @property
    def warp_size(self) -> int:
        """Threads per scheduling unit (warp on NVIDIA, wavefront on AMD)."""
        return self.vendor_info.warp_size

    @property
    def reg_alloc_unit(self) -> int:
        """Register allocation granularity (registers per warp/wave)."""
        return self.vendor_info.reg_alloc_unit

    @property
    def smem_alloc_unit(self) -> int:
        """Scratchpad (smem/LDS) allocation granularity in bytes."""
        return self.vendor_info.smem_alloc_unit

    @property
    def smem_banks(self) -> int:
        return self.vendor_info.smem_banks

    @property
    def smem_bytes_per_clk(self) -> float:
        """Per-SM/CU scratchpad bandwidth in bytes per clock."""
        return self.vendor_info.smem_bytes_per_clk

    @property
    def dialect(self) -> str:
        """Source dialect the code generator targets for this device."""
        return self.vendor_info.dialect

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_fp64_flops(self) -> float:
        """Peak FP64 throughput in FLOP/s."""
        return self.fp64_tflops * 1e12

    @property
    def dram_bytes_per_s(self) -> float:
        return self.mem_bw_gbs * 1e9

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        rent = f"${self.rental_per_hour:.2f}/hr" if self.rental_per_hour else "n/a"
        return (
            f"{self.name} ({self.generation}): {self.memory_gb} GB, "
            f"{self.mem_bw_gbs:.0f} GB/s, {self.sms} SMs, "
            f"{self.fp64_tflops} FP64 TFLOPS, rental {rent}"
        )


_KB = 1024
_MB = 1024 * 1024

#: The four evaluation GPUs (Table III).  Microarchitectural numbers follow
#: the Pascal/Volta/Turing/Ampere whitepapers; efficiency factors reflect
#: the paper's CUDA 10.0 stack (see module docstring).
GPUS: dict[str, GPUSpec] = {
    "P100": GPUSpec(
        name="P100",
        generation="Pascal",
        memory_gb=16,
        mem_bw_gbs=720.0,
        sms=56,
        fp64_tflops=5.3,
        rental_per_hour=1.46,
        registers_per_sm=65536,
        smem_per_sm=64 * _KB,
        smem_per_block_max=48 * _KB,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        max_registers_per_thread=255,
        l2_bytes=4 * _MB,
        l2_bw_ratio=2.6,
        boost_clock_mhz=1480,
        kernel_launch_us=5.0,
        compute_efficiency=0.92,
        memory_efficiency=0.76,
    ),
    "V100": GPUSpec(
        name="V100",
        generation="Volta",
        memory_gb=32,
        mem_bw_gbs=900.0,
        sms=80,
        fp64_tflops=7.8,
        rental_per_hour=2.48,
        registers_per_sm=65536,
        smem_per_sm=96 * _KB,
        smem_per_block_max=96 * _KB,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        max_registers_per_thread=255,
        l2_bytes=6 * _MB,
        l2_bw_ratio=3.0,
        boost_clock_mhz=1530,
        kernel_launch_us=5.0,
        compute_efficiency=0.95,
        memory_efficiency=0.80,
    ),
    "2080Ti": GPUSpec(
        name="2080Ti",
        generation="Turing",
        memory_gb=11,
        mem_bw_gbs=616.0,
        sms=68,
        fp64_tflops=0.41,
        rental_per_hour=None,
        registers_per_sm=65536,
        smem_per_sm=64 * _KB,
        smem_per_block_max=64 * _KB,
        max_threads_per_sm=1024,
        max_threads_per_block=1024,
        max_blocks_per_sm=16,
        max_registers_per_thread=255,
        l2_bytes=int(5.5 * _MB),
        l2_bw_ratio=4.2,
        boost_clock_mhz=1545,
        kernel_launch_us=3.0,
        compute_efficiency=0.93,
        memory_efficiency=0.79,
    ),
    "A100": GPUSpec(
        name="A100",
        generation="Ampere",
        memory_gb=40,
        mem_bw_gbs=1555.0,
        sms=108,
        fp64_tflops=9.7,
        rental_per_hour=2.93,
        registers_per_sm=65536,
        smem_per_sm=164 * _KB,
        smem_per_block_max=160 * _KB,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        max_registers_per_thread=255,
        l2_bytes=40 * _MB,
        l2_bw_ratio=2.8,
        boost_clock_mhz=1410,
        kernel_launch_us=6.0,
        # CUDA 10.0 cannot emit sm_80 SASS; A100 runs PTX-JIT-compiled
        # kernels with a substantial compute penalty but near-native
        # memory behaviour.
        compute_efficiency=0.70,
        memory_efficiency=0.82,
    ),
    # ------------------------------------------------------------------
    # AMD CDNA-class devices (cross-vendor extension, not in Table III).
    # Numbers follow the CDNA1/CDNA2 whitepapers and the ROCm tuning
    # guides: 64-lane wavefronts, a fixed 64 KB LDS per CU, a 256 KB
    # VGPR file per CU (128 KB x 2 SIMD pairs -> 131072 4-byte regs),
    # 40 resident waves per CU (2560 threads).  ``sms`` counts CUs.
    # Efficiency factors mirror the measured-vs-peak gaps reported for
    # HPC stencils on MI100/MI210/MI250 (rocHPL / BabelStream-class
    # numbers); the MI250 is modeled as its two GCDs aggregated, which
    # costs extra launch latency and some efficiency (no single kernel
    # spans both dies at full speed).
    "MI100": GPUSpec(
        name="MI100",
        generation="CDNA1",
        memory_gb=32,
        mem_bw_gbs=1228.8,
        sms=120,
        fp64_tflops=11.5,
        rental_per_hour=None,
        registers_per_sm=131072,
        smem_per_sm=64 * _KB,
        smem_per_block_max=64 * _KB,
        max_threads_per_sm=2560,
        max_threads_per_block=1024,
        max_blocks_per_sm=16,
        max_registers_per_thread=256,
        l2_bytes=8 * _MB,
        l2_bw_ratio=2.0,
        boost_clock_mhz=1502,
        kernel_launch_us=8.0,
        compute_efficiency=0.88,
        memory_efficiency=0.72,
        vendor=Vendor.AMD,
    ),
    "MI210": GPUSpec(
        name="MI210",
        generation="CDNA2",
        memory_gb=64,
        mem_bw_gbs=1638.4,
        sms=104,
        fp64_tflops=22.6,
        rental_per_hour=None,
        registers_per_sm=131072,
        smem_per_sm=64 * _KB,
        smem_per_block_max=64 * _KB,
        max_threads_per_sm=2560,
        max_threads_per_block=1024,
        max_blocks_per_sm=16,
        max_registers_per_thread=256,
        l2_bytes=8 * _MB,
        l2_bw_ratio=2.2,
        boost_clock_mhz=1700,
        kernel_launch_us=8.0,
        compute_efficiency=0.90,
        memory_efficiency=0.75,
        vendor=Vendor.AMD,
    ),
    "MI250": GPUSpec(
        name="MI250",
        generation="CDNA2",
        memory_gb=128,
        mem_bw_gbs=3276.8,
        sms=208,
        fp64_tflops=45.3,
        rental_per_hour=None,
        registers_per_sm=131072,
        smem_per_sm=64 * _KB,
        smem_per_block_max=64 * _KB,
        max_threads_per_sm=2560,
        max_threads_per_block=1024,
        max_blocks_per_sm=16,
        max_registers_per_thread=256,
        l2_bytes=16 * _MB,
        l2_bw_ratio=2.2,
        boost_clock_mhz=1700,
        kernel_launch_us=10.0,
        compute_efficiency=0.85,
        memory_efficiency=0.70,
        vendor=Vendor.AMD,
    ),
}

#: Evaluation order used by the figures (the paper's four NVIDIA GPUs).
GPU_ORDER = ("2080Ti", "P100", "V100", "A100")

#: AMD-class devices for the cross-vendor transfer experiment.
AMD_GPU_ORDER = ("MI100", "MI210", "MI250")

#: Every known device, NVIDIA first (figure order), then AMD.
ALL_GPU_ORDER = GPU_ORDER + AMD_GPU_ORDER

#: GPUs available for cloud rental (Fig. 15 excludes the 2080Ti).
RENTAL_GPUS = tuple(n for n in GPU_ORDER if GPUS[n].rental_per_hour is not None)


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (e.g. ``"V100"`` or ``"MI210"``).

    Raises :class:`~repro.errors.UnknownGPUError` (a ``KeyError``
    subclass, so legacy ``except KeyError`` handlers still match) with a
    message naming every known device.
    """
    try:
        return GPUS[name]
    except KeyError:
        known = ", ".join(ALL_GPU_ORDER)
        raise UnknownGPUError(f"unknown GPU {name!r}; known: {known}") from None


@dataclass(frozen=True)
class MachineSpec:
    """Host machine description (paper Table IV)."""

    cpu: str
    frequency_ghz: float
    cores: int
    main_memory_gb: int
    gpus: tuple[str, ...]


#: The two evaluation hosts (Table IV).
MACHINES: tuple[MachineSpec, ...] = (
    MachineSpec("Xeon Silver 4110", 2.1, 16, 192, ("2080Ti",)),
    MachineSpec("Xeon E5-2680 v4", 2.4, 28, 252, ("P100", "V100", "A100")),
)


def hardware_features(gpu: "GPUSpec | str") -> "tuple[float, ...]":
    """The GPU feature vector attached to regression inputs (Section IV-E).

    Following the paper (inspired by Habitat [27]) this is: memory
    capacity, memory bandwidth, SM count, and peak FLOPS.
    """
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    return (
        float(spec.memory_gb),
        float(spec.mem_bw_gbs),
        float(spec.sms),
        float(spec.fp64_tflops),
    )


HARDWARE_FEATURE_NAMES = ("mem_gb", "mem_bw_gbs", "sms", "fp64_tflops")
