"""GPU and host-machine specification database (paper Tables III and IV).

Table III lists the headline numbers (memory, bandwidth, SM count, peak
double-precision TFLOPS, Google Cloud rental price).  The simulator also
needs per-SM microarchitectural limits (register file, shared memory,
resident threads/blocks) and cache sizes; those are taken from the NVIDIA
whitepapers / CUDA occupancy tables for each generation and recorded here so
every model input is explicit and testable.

Two *efficiency* fields encode measured-vs-theoretical gaps that matter for
reproducing the paper's cross-architecture observations:

``compute_efficiency``
    Achieved fraction of peak FP64 FMA throughput for compiled stencil
    kernels.  The paper's software stack is CUDA v10.0, which cannot target
    Ampere (``sm_80``) natively -- A100 binaries run through PTX JIT and
    lose a significant fraction of compute throughput, which is how a V100
    can beat an A100 on compute-bound high-order box stencils (Fig. 4).
``memory_efficiency``
    Achieved fraction of peak DRAM bandwidth under ideal streaming access.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Headline fields mirror Table III; the remaining fields are the
    occupancy and memory-hierarchy limits the simulator consumes.
    Sizes are bytes unless suffixed otherwise; clocks are MHz.
    """

    name: str
    generation: str
    memory_gb: int
    mem_bw_gbs: float
    sms: int
    fp64_tflops: float
    rental_per_hour: float | None  # None: not offered by Google Cloud

    # Per-SM occupancy limits (CUDA occupancy tables).
    registers_per_sm: int
    smem_per_sm: int
    smem_per_block_max: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    max_registers_per_thread: int

    # Memory hierarchy.
    l2_bytes: int
    l2_bw_ratio: float  # L2 bandwidth as a multiple of DRAM bandwidth

    # Clocks and overheads.
    boost_clock_mhz: int
    kernel_launch_us: float

    # Achieved-vs-theoretical efficiency (see module docstring).
    compute_efficiency: float
    memory_efficiency: float

    @property
    def warp_size(self) -> int:
        return 32

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_fp64_flops(self) -> float:
        """Peak FP64 throughput in FLOP/s."""
        return self.fp64_tflops * 1e12

    @property
    def dram_bytes_per_s(self) -> float:
        return self.mem_bw_gbs * 1e9

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        rent = f"${self.rental_per_hour:.2f}/hr" if self.rental_per_hour else "n/a"
        return (
            f"{self.name} ({self.generation}): {self.memory_gb} GB, "
            f"{self.mem_bw_gbs:.0f} GB/s, {self.sms} SMs, "
            f"{self.fp64_tflops} FP64 TFLOPS, rental {rent}"
        )


_KB = 1024
_MB = 1024 * 1024

#: The four evaluation GPUs (Table III).  Microarchitectural numbers follow
#: the Pascal/Volta/Turing/Ampere whitepapers; efficiency factors reflect
#: the paper's CUDA 10.0 stack (see module docstring).
GPUS: dict[str, GPUSpec] = {
    "P100": GPUSpec(
        name="P100",
        generation="Pascal",
        memory_gb=16,
        mem_bw_gbs=720.0,
        sms=56,
        fp64_tflops=5.3,
        rental_per_hour=1.46,
        registers_per_sm=65536,
        smem_per_sm=64 * _KB,
        smem_per_block_max=48 * _KB,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        max_registers_per_thread=255,
        l2_bytes=4 * _MB,
        l2_bw_ratio=2.6,
        boost_clock_mhz=1480,
        kernel_launch_us=5.0,
        compute_efficiency=0.92,
        memory_efficiency=0.76,
    ),
    "V100": GPUSpec(
        name="V100",
        generation="Volta",
        memory_gb=32,
        mem_bw_gbs=900.0,
        sms=80,
        fp64_tflops=7.8,
        rental_per_hour=2.48,
        registers_per_sm=65536,
        smem_per_sm=96 * _KB,
        smem_per_block_max=96 * _KB,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        max_registers_per_thread=255,
        l2_bytes=6 * _MB,
        l2_bw_ratio=3.0,
        boost_clock_mhz=1530,
        kernel_launch_us=5.0,
        compute_efficiency=0.95,
        memory_efficiency=0.80,
    ),
    "2080Ti": GPUSpec(
        name="2080Ti",
        generation="Turing",
        memory_gb=11,
        mem_bw_gbs=616.0,
        sms=68,
        fp64_tflops=0.41,
        rental_per_hour=None,
        registers_per_sm=65536,
        smem_per_sm=64 * _KB,
        smem_per_block_max=64 * _KB,
        max_threads_per_sm=1024,
        max_threads_per_block=1024,
        max_blocks_per_sm=16,
        max_registers_per_thread=255,
        l2_bytes=int(5.5 * _MB),
        l2_bw_ratio=4.2,
        boost_clock_mhz=1545,
        kernel_launch_us=3.0,
        compute_efficiency=0.93,
        memory_efficiency=0.79,
    ),
    "A100": GPUSpec(
        name="A100",
        generation="Ampere",
        memory_gb=40,
        mem_bw_gbs=1555.0,
        sms=108,
        fp64_tflops=9.7,
        rental_per_hour=2.93,
        registers_per_sm=65536,
        smem_per_sm=164 * _KB,
        smem_per_block_max=160 * _KB,
        max_threads_per_sm=2048,
        max_threads_per_block=1024,
        max_blocks_per_sm=32,
        max_registers_per_thread=255,
        l2_bytes=40 * _MB,
        l2_bw_ratio=2.8,
        boost_clock_mhz=1410,
        kernel_launch_us=6.0,
        # CUDA 10.0 cannot emit sm_80 SASS; A100 runs PTX-JIT-compiled
        # kernels with a substantial compute penalty but near-native
        # memory behaviour.
        compute_efficiency=0.70,
        memory_efficiency=0.82,
    ),
}

#: Evaluation order used by the figures.
GPU_ORDER = ("2080Ti", "P100", "V100", "A100")

#: GPUs available for cloud rental (Fig. 15 excludes the 2080Ti).
RENTAL_GPUS = tuple(n for n in GPU_ORDER if GPUS[n].rental_per_hour is not None)


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (e.g. ``"V100"``)."""
    try:
        return GPUS[name]
    except KeyError:
        known = ", ".join(GPU_ORDER)
        raise KeyError(f"unknown GPU {name!r}; known: {known}") from None


@dataclass(frozen=True)
class MachineSpec:
    """Host machine description (paper Table IV)."""

    cpu: str
    frequency_ghz: float
    cores: int
    main_memory_gb: int
    gpus: tuple[str, ...]


#: The two evaluation hosts (Table IV).
MACHINES: tuple[MachineSpec, ...] = (
    MachineSpec("Xeon Silver 4110", 2.1, 16, 192, ("2080Ti",)),
    MachineSpec("Xeon E5-2680 v4", 2.4, 28, 252, ("P100", "V100", "A100")),
)


def hardware_features(gpu: "GPUSpec | str") -> "tuple[float, ...]":
    """The GPU feature vector attached to regression inputs (Section IV-E).

    Following the paper (inspired by Habitat [27]) this is: memory
    capacity, memory bandwidth, SM count, and peak FLOPS.
    """
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    return (
        float(spec.memory_gb),
        float(spec.mem_bw_gbs),
        float(spec.sms),
        float(spec.fp64_tflops),
    )


HARDWARE_FEATURE_NAMES = ("mem_gb", "mem_bw_gbs", "sms", "fp64_tflops")
