"""CUDA dialect backend: thin wrapper over the vendor-neutral core.

The full emitter (loop structure, tiling, guards, merge/stream logic)
lives in :mod:`repro.codegen.core`; this module binds it to the CUDA
dialect (``<<< >>>`` launches, ``cuda_runtime.h``, ``cudaGetLastError``)
and keeps the historical ``CudaKernelGenerator`` / ``generate_cuda``
names.  Output is byte-for-byte identical to the pre-split generator.
"""

from __future__ import annotations

from ..optimizations.combos import OC
from ..optimizations.params import ParamSetting
from ..stencil.stencil import Stencil
from .core import CUDA_DIALECT, KernelEmitter


class CudaKernelGenerator(KernelEmitter):
    """Emit CUDA C for one kernel variant.

    Parameters mirror the analytical model: the same (stencil, OC,
    setting) triple that the simulator times.
    """

    dialect = CUDA_DIALECT


def generate_cuda(
    stencil: Stencil,
    oc: "OC | str",
    setting: ParamSetting,
    grid: "tuple[int, ...] | None" = None,
) -> str:
    """Convenience wrapper: CUDA translation unit for one kernel variant."""
    oc_obj = OC.parse(oc) if isinstance(oc, str) else oc
    return CudaKernelGenerator(stencil, oc_obj, setting, grid).generate()
