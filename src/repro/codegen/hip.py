"""HIP dialect backend: thin wrapper over the vendor-neutral core.

HIP device code is source-compatible with the CUDA subset the emitter
uses (``__global__``, ``__shared__``, ``__syncthreads()``), so the kernel
bodies are byte-identical to the CUDA backend's; only the runtime include
(``hip/hip_runtime.h``), the portable ``hipLaunchKernelGGL`` launch macro
and the host-side ``hipDeviceSynchronize`` / ``hipGetLastError`` calls
differ.  The header additionally carries a ``// dialect: hip`` metadata
line so the analysis IR can recover the dialect from source alone.
"""

from __future__ import annotations

from ..optimizations.combos import OC
from ..optimizations.params import ParamSetting
from ..stencil.stencil import Stencil
from .core import HIP_DIALECT, KernelEmitter


class HipKernelGenerator(KernelEmitter):
    """Emit HIP C++ for one kernel variant (AMD-class devices)."""

    dialect = HIP_DIALECT


def generate_hip(
    stencil: Stencil,
    oc: "OC | str",
    setting: ParamSetting,
    grid: "tuple[int, ...] | None" = None,
) -> str:
    """Convenience wrapper: HIP translation unit for one kernel variant."""
    oc_obj = OC.parse(oc) if isinstance(oc, str) else oc
    return HipKernelGenerator(stencil, oc_obj, setting, grid).generate()
