"""Vendor-neutral kernel source generation core.

StencilMART's pipeline profiles *generated stencil programs*; this module
is the code-generation half of that story: given an access pattern, an
optimization combination and a concrete parameter setting, emit the kernel
(plus host launcher) a real harness would compile.  The repository's
simulator consumes the analytical profile instead of running this source,
but the generator keeps the optimization semantics honest and demonstrates
each transformation concretely:

- global-memory (naive) and shared-memory/LDS tiled bodies,
- streaming plane loops with a register/scratchpad queue,
- block/cyclic merging loops,
- retimed accumulation along the stream axis,
- prefetch double-buffering,
- temporal-blocking step loops with widened halos.

Everything the optimizations dictate -- loop structure, tiling, boundary
guards, merge/stream logic, queue lengths -- is vendor-neutral and lives
in :class:`KernelEmitter`.  What differs between CUDA and HIP is a thin
:class:`Dialect`: the runtime header, the kernel-launch statement and the
host-side sync/error calls.  The device code itself (``__global__``,
``__shared__``, ``__syncthreads()``) is source-compatible across both
toolchains, so the emitted kernel bodies are byte-identical and only the
host launcher and includes change (the single-core/thin-emitter layout of
Sai et al., arXiv:2309.04671).

Tests validate the emitted source structurally (declarations, barriers,
tap counts, loop structure), since no CUDA/ROCm toolchain is available
offline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizationError
from ..optimizations.combos import OC
from ..optimizations.kernelmodel import (
    default_grid,
    register_queue_planes,
    smem_plane_count,
)
from ..optimizations.params import ParamSetting
from ..optimizations.passes import Opt
from ..stencil.stencil import Stencil

_AXES = ("x", "y", "z")


@dataclass(frozen=True)
class Dialect:
    """The vendor-specific surface of a translation unit.

    Attributes
    ----------
    name:
        Dialect tag (``"cuda"`` / ``"hip"``), recorded in the source
        metadata comment for non-default dialects.
    runtime_header:
        The runtime include (``cuda_runtime.h`` / ``hip/hip_runtime.h``).
    source_suffix:
        Conventional file suffix for emitted sources.
    device_sync:
        Host-side device synchronization statement.
    last_error_ok:
        Boolean C expression that is true when no launch error occurred.
    chevron_launch:
        ``True`` for CUDA's ``<<< >>>`` syntax; ``False`` emits the
        portable ``hipLaunchKernelGGL`` macro call.
    emit_dialect_comment:
        Whether the header carries a ``// dialect:`` metadata line.  The
        default (CUDA) dialect does not, keeping its output byte-for-byte
        identical to the pre-split generator.
    """

    name: str
    runtime_header: str
    source_suffix: str
    device_sync: str
    last_error_ok: str
    chevron_launch: bool
    emit_dialect_comment: bool

    def launch(self, kernel: str, args: str) -> str:
        """The kernel-launch statement for ``grid``/``block`` dims."""
        if self.chevron_launch:
            return f"{kernel}<<<grid, block>>>({args});"
        return f"hipLaunchKernelGGL({kernel}, grid, block, 0, 0, {args});"


CUDA_DIALECT = Dialect(
    name="cuda",
    runtime_header="cuda_runtime.h",
    source_suffix=".cu",
    device_sync="cudaDeviceSynchronize();",
    last_error_ok="cudaGetLastError() == cudaSuccess",
    chevron_launch=True,
    emit_dialect_comment=False,
)

HIP_DIALECT = Dialect(
    name="hip",
    runtime_header="hip/hip_runtime.h",
    source_suffix=".hip.cpp",
    device_sync="hipDeviceSynchronize();",
    last_error_ok="hipGetLastError() == hipSuccess",
    chevron_launch=False,
    emit_dialect_comment=True,
)

DIALECTS: dict[str, Dialect] = {
    "cuda": CUDA_DIALECT,
    "hip": HIP_DIALECT,
}


def get_dialect(name: str) -> Dialect:
    """Look up a dialect by name (``"cuda"`` or ``"hip"``)."""
    try:
        return DIALECTS[name]
    except KeyError:
        known = ", ".join(sorted(DIALECTS))
        raise OptimizationError(
            f"unknown codegen dialect {name!r}; known: {known}"
        ) from None


def _idx_expr(ndim: int, coords: "list[str]", dims: "list[str]") -> str:
    """Row-major flat index: x fastest."""
    if ndim == 2:
        return f"({coords[1]}) * {dims[0]} + ({coords[0]})"
    return (
        f"(({coords[2]}) * {dims[1]} + ({coords[1]})) * {dims[0]} + ({coords[0]})"
    )


class KernelEmitter:
    """Emit one kernel variant in a given dialect.

    Parameters mirror the analytical model: the same (stencil, OC,
    setting) triple that the simulator times.  The dialect only touches
    the header includes and the host launcher; the kernel body is
    identical for every dialect.
    """

    dialect: Dialect = CUDA_DIALECT

    def __init__(
        self,
        stencil: Stencil,
        oc: OC,
        setting: ParamSetting,
        grid: "tuple[int, ...] | None" = None,
        dialect: "Dialect | None" = None,
    ):
        if dialect is not None:
            self.dialect = dialect
        self.stencil = stencil
        self.oc = oc
        self.setting = setting
        self.ndim = stencil.ndim
        self.dims = default_grid(self.ndim) if grid is None else tuple(grid)

        self.streaming = Opt.ST in oc.opts
        self.merging = Opt.BM in oc.opts or Opt.CM in oc.opts
        self.block_merge = Opt.BM in oc.opts
        self.retiming = Opt.RT in oc.opts
        self.prefetch = Opt.PR in oc.opts
        self.temporal = Opt.TB in oc.opts

        self.stream_axis = setting["stream_dim"] - 1 if self.streaming else -1
        self.merge_axis = setting["merge_dim"] - 1 if self.merging else -1
        self.m = setting["merge_factor"] if self.merging else 1
        self.t = setting["temporal_steps"] if self.temporal else 1
        self.use_smem = bool(setting["use_smem"]) or self.temporal
        if self.streaming and self.stream_axis >= self.ndim:
            raise OptimizationError("stream_dim beyond grid rank")
        if self.merging and self.merge_axis >= self.ndim:
            raise OptimizationError("merge_dim beyond grid rank")

        self.coeff = 1.0 / stencil.nnz
        self.kernel_name = f"stencil_{oc.name.lower()}_{self.ndim}d"

    # ------------------------------------------------------------------
    def generate(self) -> str:
        """Full translation unit: header, kernel, host launcher."""
        parts = [self._header(), self.kernel_source(), self._host_source()]
        return "\n\n".join(parts) + "\n"

    # ------------------------------------------------------------------
    def _header(self) -> str:
        dims = ", ".join(f"{_AXES[d].upper()}N={self.dims[d]}" for d in range(self.ndim))
        lines = [
            "// Auto-generated by the StencilMART reproduction.",
            f"// stencil: {self.stencil.name or 'anonymous'} "
            f"(ndim={self.ndim}, order={self.stencil.order}, nnz={self.stencil.nnz})",
            f"// optimization combination: {self.oc.name}",
            f"// grid: {dims}",
        ]
        if self.dialect.emit_dialect_comment:
            lines.append(f"// dialect: {self.dialect.name}")
        lines += [
            f"#include <{self.dialect.runtime_header}>",
            "#include <stdio.h>",
            "",
            f"#define COEFF {self.coeff!r}",
            f"#define BLOCK_X {self.setting['block_x']}",
            f"#define BLOCK_Y {self.setting['block_y']}",
        ]
        if self.ndim == 3:
            lines.append(f"#define BLOCK_Z {self.setting['block_z']}")
        for d in range(self.ndim):
            lines.append(f"#define N{_AXES[d].upper()} {self.dims[d]}")
        if self.temporal:
            lines.append(f"#define TSTEPS {self.t}")
        if self.streaming:
            lines.append(f"#define STREAM_TILES {self.setting['stream_tiles']}")
            lines.append(f"#define STREAM_UNROLL {self.setting['stream_unroll']}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _tap_sum(self, coords: "list[str]", array: str = "in") -> "list[str]":
        """One fused-multiply-add line per accessed neighbor."""
        dims = [f"N{_AXES[d].upper()}" for d in range(self.ndim)]
        lines = []
        for p in self.stencil.sorted_offsets:
            shifted = [
                f"{coords[d]} + ({p[d]})" if p[d] else coords[d]
                for d in range(self.ndim)
            ]
            lines.append(f"acc += {array}[{_idx_expr(self.ndim, shifted, dims)}];")
        return lines

    def _guard(self, coords: "list[str]") -> str:
        # Clip by the *per-axis* extent, not the uniform Chebyshev order:
        # an anisotropic stencil guarded by its largest radius on every
        # axis skips interior points the analytical model prices.
        ext = self.stencil.axis_extents
        checks = [
            f"{coords[d]} >= {ext[d]} && {coords[d]} < N{_AXES[d].upper()} - {ext[d]}"
            for d in range(self.ndim)
        ]
        return " && ".join(checks)

    # ------------------------------------------------------------------
    def kernel_source(self) -> str:
        if self.streaming:
            body = self._streaming_body()
        elif self.use_smem:
            body = self._tiled_body()
        else:
            body = self._naive_body()
        sig_dims = ", ".join(f"int n{_AXES[d]}" for d in range(self.ndim))
        lines = [
            "__global__ void "
            f"{self.kernel_name}(const double* __restrict__ in, "
            f"double* __restrict__ out, {sig_dims})",
            "{",
        ]
        lines += ["    " + b for b in body]
        lines.append("}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _thread_coords(self) -> "list[str]":
        """Declarations mapping thread/block ids to grid coordinates."""
        out = []
        if self.streaming:
            plane_axes = [a for a in range(self.ndim) if a != self.stream_axis]
            block_vars = ["BLOCK_X", "BLOCK_Y"]
            tids = ["threadIdx.x", "threadIdx.y"]
            bids = ["blockIdx.x", "blockIdx.y"]
            for k, a in enumerate(plane_axes):
                cover, tid = block_vars[k], tids[k]
                if self.merging and a == self.merge_axis:
                    # A merged block covers m x the threads along this axis
                    # (the model's coverage and the host grid both say so).
                    cover = f"({block_vars[k]} * {self.m})"
                    if self.block_merge:
                        tid = f"{tids[k]} * {self.m}"
                out.append(f"const int {_AXES[a]}0 = {bids[k]} * {cover} + {tid};")
        else:
            block_vars = ["BLOCK_X", "BLOCK_Y", "BLOCK_Z"][: self.ndim]
            tids = ["threadIdx.x", "threadIdx.y", "threadIdx.z"][: self.ndim]
            bids = ["blockIdx.x", "blockIdx.y", "blockIdx.z"][: self.ndim]
            for a in range(self.ndim):
                # Both merge flavours widen the block's coverage; only BM
                # additionally strides the per-thread origin (CM threads
                # stay adjacent and revisit the axis at BLOCK stride).
                cover, tid = block_vars[a], tids[a]
                if self.merging and a == self.merge_axis:
                    cover = f"({block_vars[a]} * {self.m})"
                    if self.block_merge:
                        tid = f"{tids[a]} * {self.m}"
                out.append(f"const int {_AXES[a]}0 = {bids[a]} * {cover} + {tid};")
        return out

    def _merge_loop(self, inner: "list[str]") -> "list[str]":
        """Wrap *inner* in the block/cyclic merging loop when enabled."""
        if not self.merging or self.merge_axis == self.stream_axis:
            return inner
        axis = _AXES[self.merge_axis]
        stride = "1" if self.block_merge else f"BLOCK_{axis.upper()}"
        out = [
            "#pragma unroll",
            f"for (int mi = 0; mi < {self.m}; ++mi) {{",
            f"    const int {axis} = {axis}0 + mi * {stride};",
        ]
        out += ["    " + line for line in inner]
        out.append("}")
        return out

    def _coords_with_merge(self) -> "list[str]":
        coords = [f"{_AXES[d]}0" for d in range(self.ndim)]
        if self.merging and self.merge_axis != self.stream_axis:
            coords[self.merge_axis] = _AXES[self.merge_axis]
        return coords

    # ------------------------------------------------------------------
    def _naive_body(self) -> "list[str]":
        coords = self._coords_with_merge()
        inner = [
            f"if ({self._guard(coords)}) {{",
            "    double acc = 0.0;",
        ]
        dims = [f"N{_AXES[d].upper()}" for d in range(self.ndim)]
        inner += ["    " + l for l in self._tap_sum(coords)]
        inner += [
            f"    out[{_idx_expr(self.ndim, coords, dims)}] = COEFF * acc;",
            "}",
        ]
        return self._thread_coords() + self._merge_loop(inner)

    # ------------------------------------------------------------------
    def _tiled_body(self) -> "list[str]":
        ext = self.stencil.axis_extents
        halo = [e * self.t for e in ext]
        tile_dims = []
        for a in range(self.ndim):
            base = f"BLOCK_{_AXES[a].upper()}"
            cover = f"({base} * {self.m})" if self.merging and a == self.merge_axis else base
            tile_dims.append(f"({cover} + {2 * halo[a]})")
        tile_decl = "".join(f"[{d}]" for d in reversed(tile_dims))
        # Temporal blocking double-buffers the tile (read plane t, write
        # plane t+1), exactly the factor the model's smem claim carries.
        buf = "[2]" if self.temporal else ""
        body = self._thread_coords()
        body += [
            f"__shared__ double tile{buf}{tile_decl};",
            "// cooperative load of the tile plus halo",
            "for (int l = _flat_tid(); l < _tile_cells(); l += _block_threads()) {",
            "    _tile_store(tile, l, in, " + ", ".join(f"{_AXES[d]}0" for d in range(self.ndim)) + ");",
            "}",
            "__syncthreads();",
        ]
        if self.temporal:
            body += [
                "#pragma unroll",
                "for (int step = 0; step < TSTEPS; ++step) {",
                "    _tile_update(tile, step);  // trapezoidal interior shrinks per step",
                "    __syncthreads();",
                "}",
            ]
        coords = self._coords_with_merge()
        dims = [f"N{_AXES[d].upper()}" for d in range(self.ndim)]
        inner = [
            f"if ({self._guard(coords)}) {{",
            "    double acc = 0.0;",
        ]
        inner += ["    " + l for l in self._tap_sum(coords, array="in")]
        inner += [
            f"    out[{_idx_expr(self.ndim, coords, dims)}] = COEFF * acc;",
            "}",
        ]
        return body + self._merge_loop(inner)

    # ------------------------------------------------------------------
    def _streaming_body(self) -> "list[str]":
        s = self.stream_axis
        axis = _AXES[s]
        es = self.stencil.axis_extents[s]
        # Queue lengths come from the analytical model so the two sides
        # cannot drift: the reuse queue shrinks under retiming, and the
        # shared variant grows by the prefetch landing plane and the
        # temporal staging planes.
        reuse = register_queue_planes(self.stencil, self.oc, self.setting)
        body = self._thread_coords()
        body += [
            f"const int tile_len = N{axis.upper()} / STREAM_TILES;",
            f"const int {axis}_begin = blockIdx.z * tile_len;",
            f"const int {axis}_end = {axis}_begin + tile_len;",
        ]
        if self.use_smem:
            plane_axes = [a for a in range(self.ndim) if a != s]
            plane_dims = []
            for k, a in enumerate(plane_axes):
                base = f"BLOCK_{['X', 'Y'][k]}"
                cover = (
                    f"({base} * {self.m})"
                    if self.merging and a == self.merge_axis
                    else base
                )
                plane_dims.append(f"({cover} + {2 * self.stencil.axis_extents[a] * self.t})")
            decl = "".join(f"[{d}]" for d in reversed(plane_dims))
            planes = smem_plane_count(self.stencil, self.oc, self.setting)
            body.append(f"__shared__ double planes[{planes}]{decl};")
        else:
            body.append(
                f"double q[{reuse} * STREAM_UNROLL];  // register plane queue"
            )
        if self.retiming:
            body.append(
                "double partial = 0.0;  // retimed accumulation along the stream axis"
            )
        if self.prefetch:
            body.append("double next_plane;  // prefetch double buffer")
        body += [
            "// prologue: fill the plane queue",
            f"for (int {axis} = {axis}_begin; {axis} < {axis}_begin + {reuse - 1}; ++{axis}) {{",
            "    _queue_push(/* load plane */);",
            "}",
        ]
        if self.use_smem:
            body.append("__syncthreads();  // queue visible before first read")
        body += [
            "#pragma unroll STREAM_UNROLL",
            f"for (int {axis} = {axis}_begin + {es}; {axis} < {axis}_end - {es}; ++{axis}) {{",
        ]
        if self.prefetch:
            body.append(
                f"    next_plane = in[_plane_index(min({axis} + {es + 1}, {axis}_end - 1))];  "
                "// overlap next load with compute"
            )
        if self.temporal:
            body += [
                "    #pragma unroll",
                "    for (int step = 1; step < TSTEPS; ++step) {",
                "        _plane_time_update(step);  // advance staged time planes",
                "        __syncthreads();",
                "    }",
            ]
        coords = self._coords_with_merge()
        coords[s] = axis
        dims = [f"N{_AXES[d].upper()}" for d in range(self.ndim)]
        inner = [
            f"if ({self._guard([c for c in coords])}) {{",
            "    double acc = 0.0;",
        ]
        inner += ["    " + l for l in self._tap_sum(coords)]
        if self.retiming:
            inner.append("    acc += partial; partial = 0.0;")
        inner += [
            f"    out[{_idx_expr(self.ndim, coords, dims)}] = COEFF * acc;",
            "}",
        ]
        body += ["    " + l for l in self._merge_loop(inner)]
        if self.prefetch:
            body.append("    _queue_rotate(next_plane);")
        else:
            body.append("    _queue_push(/* load plane */);")
        if self.use_smem:
            body.append("    __syncthreads();")
        body.append("}")
        return body

    # ------------------------------------------------------------------
    def _host_source(self) -> str:
        if self.streaming:
            plane_axes = [a for a in range(self.ndim) if a != self.stream_axis]
            grid_terms = []
            for k, a in enumerate(plane_axes):
                base = ["BLOCK_X", "BLOCK_Y"][k]
                cover = (
                    f"({base} * {self.m})"
                    if self.merging and a == self.merge_axis
                    else base
                )
                grid_terms.append(f"(N{_AXES[a].upper()} + {cover} - 1) / {cover}")
            while len(grid_terms) < 2:
                grid_terms.append("1")
            grid_terms.append("STREAM_TILES")
            block = "dim3 block(BLOCK_X, BLOCK_Y, 1);" if len(plane_axes) > 1 else "dim3 block(BLOCK_X, 1, 1);"
        else:
            grid_terms = []
            for a in range(self.ndim):
                base = f"BLOCK_{_AXES[a].upper()}"
                cover = (
                    f"({base} * {self.m})"
                    if self.merging and a == self.merge_axis
                    else base
                )
                grid_terms.append(f"(N{_AXES[a].upper()} + {cover} - 1) / {cover}")
            while len(grid_terms) < 3:
                grid_terms.append("1")
            block = (
                "dim3 block(BLOCK_X, BLOCK_Y, BLOCK_Z);"
                if self.ndim == 3
                else "dim3 block(BLOCK_X, BLOCK_Y, 1);"
            )
        steps = "TIME_STEPS / TSTEPS" if self.temporal else "TIME_STEPS"
        dims_args = ", ".join(f"N{_AXES[d].upper()}" for d in range(self.ndim))
        return "\n".join(
            [
                "#define TIME_STEPS 8",
                "",
                "int run(double* d_in, double* d_out)",
                "{",
                f"    {block}",
                f"    dim3 grid({', '.join(grid_terms)});",
                f"    for (int step = 0; step < {steps}; ++step) {{",
                f"        {self.dialect.launch(self.kernel_name, f'd_in, d_out, {dims_args}')}",
                f"        {self.dialect.device_sync}",
                "        double* tmp = d_in; d_in = d_out; d_out = tmp;",
                "    }",
                f"    return {self.dialect.last_error_ok} ? 0 : 1;",
                "}",
            ]
        )


def generate_source(
    stencil: Stencil,
    oc: "OC | str",
    setting: ParamSetting,
    grid: "tuple[int, ...] | None" = None,
    dialect: "Dialect | str" = CUDA_DIALECT,
) -> str:
    """Translation unit for one kernel variant in the requested dialect.

    Dispatches through the dialect's registered generator class
    (:class:`~repro.codegen.cuda.CudaKernelGenerator` /
    :class:`~repro.codegen.hip.HipKernelGenerator`) so per-dialect
    subclass customizations -- including test stubs patched onto them --
    take effect.
    """
    oc_obj = OC.parse(oc) if isinstance(oc, str) else oc
    d = get_dialect(dialect) if isinstance(dialect, str) else dialect
    if d.name == "hip":
        from .hip import HipKernelGenerator as cls
    else:
        from .cuda import CudaKernelGenerator as cls
    return cls(stencil, oc_obj, setting, grid).generate()
