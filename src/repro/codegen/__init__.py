"""Kernel source generation for stencil variants (CUDA and HIP dialects).

A vendor-neutral core (:mod:`repro.codegen.core`) owns the optimization
semantics; thin dialect backends bind it to CUDA (:mod:`.cuda`) and HIP
(:mod:`.hip`).  :func:`dialect_for_gpu` maps a device spec to the dialect
its vendor compiles.
"""

from ..gpu.specs import GPUSpec, get_gpu
from .core import (
    CUDA_DIALECT,
    DIALECTS,
    HIP_DIALECT,
    Dialect,
    KernelEmitter,
    generate_source,
    get_dialect,
)
from .cuda import CudaKernelGenerator, generate_cuda
from .hip import HipKernelGenerator, generate_hip


def dialect_for_gpu(gpu: "GPUSpec | str") -> Dialect:
    """The source dialect a device's vendor toolchain compiles."""
    spec = get_gpu(gpu) if isinstance(gpu, str) else gpu
    return get_dialect(spec.dialect)


__all__ = [
    "CUDA_DIALECT",
    "CudaKernelGenerator",
    "DIALECTS",
    "Dialect",
    "HIP_DIALECT",
    "HipKernelGenerator",
    "KernelEmitter",
    "dialect_for_gpu",
    "generate_cuda",
    "generate_hip",
    "generate_source",
    "get_dialect",
]
