"""CUDA source generation for stencil kernel variants."""

from .cuda import CudaKernelGenerator, generate_cuda

__all__ = ["CudaKernelGenerator", "generate_cuda"]
