"""Command-line interface for the StencilMART reproduction.

Subcommands mirror the pipeline stages::

    python -m repro generate --ndim 2 --count 20          # print stencils
    python -m repro profile  --ndim 2 --count 20 -o c.json  # profile -> JSON
    python -m repro select   --campaign c.json --stencil star2d2r --gpu V100
    python -m repro predict  --campaign c.json --stencil star2d2r \
        --oc ST_RT --gpu A100                              # time prediction
    python -m repro codegen  --stencil star2d2r --oc ST_RT  # emit CUDA
    python -m repro lint                                   # verify kernels
    python -m repro estimate --stencil star2d2r            # static time model
    python -m repro train --campaign c.json --gpu V100 \
        --registry models/                                 # persist a model
    python -m repro serve --registry models/ --port 8340   # HTTP service
    python -m repro query --stencil star2d2r --gpu V100    # ask the service
    python -m repro serve-chaos --quick                    # robustness drill

``generate`` and ``profile`` run standalone; ``select`` and ``predict``
train on a saved campaign so repeated queries do not re-simulate, or
reuse a trained artifact via ``--model``.  ``codegen`` prints (or
writes) generated CUDA sources and ``lint`` runs the static analyzer
over the generated sweep, exiting nonzero on any error-severity
finding.  ``train`` turns a campaign into a checksummed model artifact
(written to a file and/or published into a registry), ``serve`` exposes
artifacts over a stdlib HTTP endpoint with micro-batching, admission
control (bounded queue, 503 load shedding), optional hot model reload,
and telemetry, and ``query`` is the matching client.  ``serve-chaos``
runs the scripted fault-injection scenario against the whole serving
stack and exits nonzero if any robustness invariant is violated.
"""

from __future__ import annotations

import argparse
import sys

from .config import DEFAULT_SEED
from .gpu.specs import ALL_GPU_ORDER, GPU_ORDER


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=DEFAULT_SEED, help="master seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="StencilMART reproduction pipeline"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate random stencils (Algorithm 1)")
    g.add_argument("--ndim", type=int, choices=(2, 3), required=True)
    g.add_argument("--count", type=int, default=10)
    g.add_argument("--max-order", type=int, default=4)
    _add_common(g)

    p = sub.add_parser("profile", help="profile a population across GPUs")
    p.add_argument("--ndim", type=int, choices=(2, 3), required=True)
    p.add_argument("--count", type=int, default=20)
    p.add_argument("--gpus", nargs="+", default=list(GPU_ORDER))
    p.add_argument("--n-settings", type=int, default=6)
    p.add_argument(
        "--backend",
        default="vector",
        choices=("scalar", "vector", "cached", "parallel"),
        help="measurement backend: per-point reference (the oracle), "
        "NumPy-vectorized batches (default), vectorized with "
        "content-keyed memoization, or batches sharded across a process "
        "pool (equivalent results, much faster than scalar)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard (gpu, stencil) units across this many worker "
        "processes (0 = one per CPU; results are bit-identical for "
        "every worker count, and checkpoints resume across counts)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="units per shard in parallel runs (default: split pending "
        "work evenly across workers)",
    )
    p.add_argument(
        "--transport",
        default="shm",
        choices=("shm", "pickle"),
        help="request transport for the parallel backend kind: "
        "shared-memory arrays (default; falls back to pickle where "
        "unavailable) or the per-row pickle codec -- results are "
        "bit-identical and checkpoints resume across transports",
    )
    p.add_argument("-o", "--output", required=True, help="campaign JSON path")
    p.add_argument(
        "--checkpoint",
        help="checkpoint JSON path; progress is saved here atomically",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from an existing --checkpoint file (fresh start "
        "if the file does not exist yet)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        help="completed (gpu, stencil) units between checkpoints",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="base transient-fault injection rate per measurement "
        "(timeouts, sporadic errors, corrupted timings at this rate; "
        "device losses at a hundredth of it); 0 disables injection",
    )
    p.add_argument(
        "--timeout-rate", type=float, default=None,
        help="override the kernel-hang rate (default: --fault-rate)",
    )
    p.add_argument(
        "--transient-rate", type=float, default=None,
        help="override the sporadic-failure rate (default: --fault-rate)",
    )
    p.add_argument(
        "--device-lost-rate", type=float, default=None,
        help="override the device-loss rate (default: --fault-rate / 100)",
    )
    p.add_argument(
        "--corrupt-rate", type=float, default=None,
        help="override the corrupted-timing rate (default: --fault-rate)",
    )
    _add_common(p)

    s = sub.add_parser("select", help="predict the best OC for a stencil")
    s.add_argument(
        "--campaign",
        help="campaign JSON path (optional when --model is given)",
    )
    s.add_argument("--stencil", required=True, help="named stencil, e.g. star2d2r")
    s.add_argument("--gpu", required=True, choices=list(ALL_GPU_ORDER))
    s.add_argument("--method", default="gbdt", choices=("gbdt", "convnet", "fcnet"))
    s.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallelize model training across this many processes "
        "(0 = one per CPU; currently the GBDT classifier fits its "
        "per-class trees in parallel, other methods train sequentially)",
    )
    s.add_argument(
        "--model",
        help="selector artifact JSON (see `repro train`); skips retraining "
        "and uses the stored model (its method/GPU must match)",
    )
    _add_common(s)

    tu = sub.add_parser(
        "tune",
        help="tune one (stencil, OC) pair through the unified front door",
    )
    tu.add_argument("--stencil", required=True, help="named stencil, e.g. star2d2r")
    tu.add_argument("--oc", required=True, help="optimization combination, e.g. ST_RT")
    tu.add_argument("--gpu", required=True, choices=list(ALL_GPU_ORDER))
    tu.add_argument(
        "--strategy",
        default="random",
        help="zoo member: random, coordinate, genetic, annealing, bayes, "
        "halving (see docs/tuning.md)",
    )
    tu.add_argument(
        "--budget",
        type=float,
        default=None,
        help="evaluation allowance in full-fidelity units (strategies "
        "size themselves to it; default: per-strategy defaults)",
    )
    tu.add_argument(
        "--restrictions",
        nargs="*",
        default=(),
        metavar="EXPR",
        help="constraint expressions over parameter names, kernel_tuner "
        "style (e.g. 'block_x * block_y <= 1024')",
    )
    tu.add_argument(
        "--cache-dir",
        default=None,
        help="persistent tuning cache directory (settled results are "
        "replayed across runs; see docs/tuning.md)",
    )
    tu.add_argument(
        "--backend",
        default="vector",
        choices=("scalar", "vector", "cached", "parallel"),
        help="measurement backend (results are equivalent; vector is "
        "the fast default)",
    )
    tu.add_argument(
        "--trials",
        action="store_true",
        help="also print every observed trial in consumption order",
    )
    _add_common(tu)

    e = sub.add_parser(
        "evaluate",
        help="cross-validate selection/prediction mechanisms (Figs. 9, 12)",
    )
    e.add_argument(
        "--campaign",
        help="campaign JSON path; omit to profile on the fly "
        "(requires --ndim, honors --backend/--workers/--chunk-size)",
    )
    e.add_argument(
        "--task",
        default="select",
        choices=("select", "predict"),
        help="evaluate OC selection (fold accuracy) or time prediction "
        "(fold MAPE)",
    )
    e.add_argument(
        "--method",
        default=None,
        help="mechanism to evaluate (default: gbdt for select, gbr for "
        "predict)",
    )
    e.add_argument("--gpu", required=True, choices=list(ALL_GPU_ORDER))
    e.add_argument("--folds", type=int, default=5)
    e.add_argument(
        "--ndim", type=int, choices=(2, 3),
        help="stencil dimensionality for on-the-fly profiling "
        "(required without --campaign)",
    )
    e.add_argument(
        "--count", type=int, default=20,
        help="stencil population size for on-the-fly profiling",
    )
    e.add_argument(
        "--n-settings", type=int, default=6,
        help="random settings per OC for on-the-fly profiling",
    )
    e.add_argument(
        "--backend",
        default="scalar",
        choices=("scalar", "vector", "cached", "parallel"),
        help="measurement backend for on-the-fly profiling (same choices "
        "and semantics as `repro profile`)",
    )
    e.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes: shards on-the-fly profiling and fits "
        "cross-validation folds concurrently (0 = one per CPU; results "
        "are identical for any count)",
    )
    e.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="units per shard for on-the-fly parallel profiling "
        "(default: split pending work evenly across workers)",
    )
    _add_common(e)

    t = sub.add_parser("predict", help="predict execution time cross-architecture")
    t.add_argument(
        "--campaign",
        help="campaign JSON path to train on (optional with --model)",
    )
    t.add_argument("--stencil", required=True)
    t.add_argument("--oc", required=True, help="OC name, e.g. ST_RT")
    t.add_argument("--gpu", required=True, choices=list(ALL_GPU_ORDER))
    t.add_argument(
        "--method", default="gbr", choices=("gbr", "mlp", "convmlp", "hybrid")
    )
    t.add_argument(
        "--model",
        help="predictor artifact JSON (see `repro train`); skips "
        "retraining and uses the stored model",
    )
    _add_common(t)

    c = sub.add_parser(
        "codegen", help="emit CUDA/HIP source for a kernel variant"
    )
    c.add_argument("--stencil", required=True, help="named stencil, e.g. star2d2r")
    c.add_argument(
        "--oc",
        default="naive",
        help="OC name (e.g. ST_RT) or 'all' for every valid combination",
    )
    c.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        dest="overrides",
        help="pin a parameter (repeatable), e.g. --set block_x=64",
    )
    c.add_argument(
        "--sample",
        action="store_true",
        help="sample a feasible setting instead of starting from defaults",
    )
    c.add_argument(
        "--gpu",
        choices=list(ALL_GPU_ORDER),
        help="target device; selects the dialect via its vendor unless "
        "--dialect overrides it",
    )
    c.add_argument(
        "--dialect",
        choices=("cuda", "hip"),
        help="source dialect (default: the target GPU's vendor dialect, "
        "or cuda)",
    )
    c.add_argument(
        "-o",
        "--output-dir",
        help="write <stencil>__<oc>.<ext> files here instead of stdout",
    )
    _add_common(c)

    lint = sub.add_parser(
        "lint", help="statically analyze generated kernels (nonzero exit on errors)"
    )
    lint.add_argument(
        "--stencil",
        action="append",
        dest="stencils",
        metavar="NAME",
        help="restrict to named stencils (repeatable; default: whole library)",
    )
    lint.add_argument(
        "--oc",
        action="append",
        dest="ocs",
        metavar="NAME",
        help="restrict to OCs (repeatable; default: all 30)",
    )
    lint.add_argument(
        "--n-settings", type=int, default=1,
        help="sampled parameter settings per (stencil, OC)",
    )
    lint.add_argument(
        "--format", default="text", choices=("text", "json"), dest="fmt"
    )
    lint.add_argument(
        "--fail-on",
        default="error",
        choices=("error", "warning", "info", "never"),
        help="lowest severity that fails the lint (default: error; "
        "'never' always exits 0). Exit codes: 0 = no finding at or "
        "above the threshold, 1 = at least one, 2 = usage error",
    )
    lint.add_argument("--baseline", help="accept findings recorded in this file")
    lint.add_argument(
        "--write-baseline",
        help="record current findings to this file and exit 0",
    )
    lint.add_argument(
        "-v", "--verbose", action="store_true", help="also list clean kernels"
    )
    lint.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.add_argument(
        "--gpu",
        choices=list(ALL_GPU_ORDER),
        help="target device; warp-sensitive rules use its scheduling "
        "width and the dialect defaults to its vendor's",
    )
    lint.add_argument(
        "--dialect",
        choices=("cuda", "hip"),
        help="source dialect to emit and lint (default: the target GPU's "
        "vendor dialect, or cuda)",
    )
    _add_common(lint)

    est = sub.add_parser(
        "estimate",
        help="statically estimate kernel execution time from generated "
        "source (analytical performance model; no campaign, no training)",
    )
    est.add_argument(
        "--stencil",
        action="append",
        dest="stencils",
        metavar="NAME",
        help="named stencil (repeatable; default: star2d1r)",
    )
    est.add_argument(
        "--oc",
        action="append",
        dest="ocs",
        metavar="NAME",
        help="restrict to OCs (repeatable; default: the analytical "
        "selector's candidate set)",
    )
    est.add_argument(
        "--gpu",
        action="append",
        dest="gpus",
        choices=list(ALL_GPU_ORDER),
        help="target GPUs (repeatable; default: all)",
    )
    est.add_argument(
        "--n-settings", type=int, default=1,
        help="sampled feasible parameter settings per (stencil, OC)",
    )
    est.add_argument(
        "--format", default="text", choices=("text", "json"), dest="fmt"
    )
    est.add_argument(
        "--metrics",
        action="store_true",
        help="include the full extracted kernel metrics (JSON only)",
    )
    _add_common(est)

    tr = sub.add_parser(
        "train",
        help="train a model from a campaign and save it as a serve artifact",
    )
    tr.add_argument(
        "--campaign",
        required=True,
        help="campaign JSON path, a published campaign-dataset document, "
        "or a dataset-registry directory (latest version is used)",
    )
    tr.add_argument(
        "--task",
        default="select",
        choices=("select", "predict"),
        help="train an OC selector (per GPU) or a cross-architecture "
        "time predictor",
    )
    tr.add_argument(
        "--method",
        default=None,
        help="gbdt/convnet/fcnet/analytical for select, "
        "gbr/mlp/convmlp/hybrid for predict (defaults: gbdt / gbr)",
    )
    tr.add_argument(
        "--gpu",
        choices=list(ALL_GPU_ORDER),
        help="target GPU (required for --task select)",
    )
    tr.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallelize selector training (0 = one per CPU; reaches "
        "methods that fit in parallel, currently GBDT)",
    )
    tr.add_argument(
        "--max-rows",
        type=int,
        default=None,
        help="deterministically subsample regression rows (predict only)",
    )
    tr.add_argument("--out", help="write the artifact JSON to this path")
    tr.add_argument(
        "--registry",
        help="publish the artifact into this registry directory as the "
        "next version (and move its LATEST tag)",
    )
    tr.add_argument(
        "--name",
        help="registry name to publish under (default: derived, e.g. "
        "select-gbdt-V100-2d)",
    )
    _add_common(tr)

    sv = sub.add_parser(
        "serve", help="serve model artifacts over HTTP (stdlib only)"
    )
    sv.add_argument(
        "--registry",
        help="registry directory; the latest version of every artifact "
        "is loaded (unreadable ones degrade to the heuristic fallback)",
    )
    sv.add_argument(
        "--model",
        action="append",
        default=[],
        dest="models",
        metavar="PATH",
        help="artifact JSON to load directly (repeatable; later installs "
        "win per (kind, ndim, GPU) slot)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8340, help="0 = ephemeral")
    sv.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="micro-batch size cap for coalescing concurrent requests",
    )
    sv.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long a request waits for batch-mates before running",
    )
    sv.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="admission bound: queued + in-flight requests beyond this "
        "are shed with 503 + Retry-After (0 disables)",
    )
    sv.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        help="default per-request deadline budget; queued work past its "
        "deadline is shed before compute (requests may override via "
        "their own budget_ms field)",
    )
    sv.add_argument(
        "--reload-interval",
        type=float,
        default=0.0,
        help="poll the registry's LATEST tags every this many seconds "
        "and hot-swap validated new artifacts (0 disables; needs "
        "--registry)",
    )
    sv.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="on SIGTERM/SIGINT: stop accepting and wait up to this "
        "long for in-flight requests before closing",
    )
    sv.add_argument(
        "-v", "--verbose", action="store_true", help="log every request"
    )
    _add_common(sv)

    ch = sub.add_parser(
        "serve-chaos",
        help="run the scripted fault-injection scenario against the "
        "serving stack (overload, corrupt publishes, torn tags, hot "
        "swap, poisoned model); nonzero exit on any violated invariant",
    )
    ch.add_argument(
        "--quick", action="store_true",
        help="smaller artifacts and traffic mix (the CI smoke setting)",
    )
    ch.add_argument("--report", help="write the full JSON report here")
    _add_common(ch)

    q = sub.add_parser("query", help="query a running serve endpoint")
    q.add_argument(
        "--url", default="http://127.0.0.1:8340", help="serve base URL"
    )
    q.add_argument(
        "--stats", action="store_true", help="print /stats JSON and exit"
    )
    q.add_argument("--stencil", help="named stencil, e.g. star2d2r")
    q.add_argument("--gpu", choices=list(ALL_GPU_ORDER))
    q.add_argument(
        "--oc",
        help="ask /v1/predict for this OC's execution time instead of "
        "/v1/select",
    )
    q.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        dest="overrides",
        help="parameter setting for --oc predictions (repeatable)",
    )
    _add_common(q)

    return parser


def _mart_from_campaign(campaign, seed: int):
    """Wrap an in-memory campaign in a ready-to-train StencilMART."""
    from .core import StencilMART
    from .profiling import merge_ocs

    mart = StencilMART(
        ndim=campaign.ndim,
        gpus=campaign.gpus,
        n_settings=campaign.n_settings,
        seed=seed,
    )
    mart.campaign = campaign
    mart.grouping = merge_ocs(campaign, n_classes=mart.n_classes)
    return mart


def _load_mart_from_campaign(path: str, seed: int):
    from .profiling import load_campaign

    return _mart_from_campaign(load_campaign(path), seed)


def cmd_generate(args) -> int:
    from .stencil import classify, generate_population

    pop = generate_population(
        args.ndim, args.count, max_order=args.max_order, seed=args.seed
    )
    for s in pop:
        print(
            f"{s.name}: order={s.order} nnz={s.nnz} shape={classify(s).value} "
            f"offsets={sorted(s.offsets)}"
        )
    return 0


def cmd_profile(args) -> int:
    from .errors import CampaignInterrupted
    from .gpu.faults import FaultConfig
    from .profiling import CampaignRunner, save_campaign
    from .stencil import generate_population

    base = args.fault_rate
    faults = FaultConfig(
        timeout_rate=base if args.timeout_rate is None else args.timeout_rate,
        transient_rate=(
            base if args.transient_rate is None else args.transient_rate
        ),
        device_lost_rate=(
            base / 100.0
            if args.device_lost_rate is None
            else args.device_lost_rate
        ),
        corrupt_rate=base if args.corrupt_rate is None else args.corrupt_rate,
    )
    pop = generate_population(args.ndim, args.count, seed=args.seed)
    runner = CampaignRunner(
        pop,
        gpus=tuple(args.gpus),
        n_settings=args.n_settings,
        seed=args.seed,
        backend=args.backend,
        faults=faults,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        workers=args.workers,
        chunk_size=args.chunk_size,
        transport=args.transport,
    )
    try:
        campaign = runner.run(resume=args.resume)
    except CampaignInterrupted as e:
        print(f"campaign interrupted: {e}", file=sys.stderr)
        print(runner.health.summary(), file=sys.stderr)
        return 3
    save_campaign(campaign, args.output)
    n_meas = sum(len(campaign.measurements(g)) for g in campaign.gpus)
    print(
        f"profiled {len(pop)} stencils x {len(campaign.ocs)} OCs on "
        f"{len(campaign.gpus)} GPUs ({n_meas} measurements) -> {args.output}"
    )
    print(runner.health.summary())
    return 0


def cmd_evaluate(args) -> int:
    if args.campaign:
        mart = _load_mart_from_campaign(args.campaign, args.seed)
    else:
        if args.ndim is None:
            print(
                "evaluate: --ndim is required when no --campaign is given",
                file=sys.stderr,
            )
            return 2
        from .profiling import CampaignRunner
        from .stencil import generate_population

        pop = generate_population(args.ndim, args.count, seed=args.seed)
        runner = CampaignRunner(
            pop,
            gpus=(args.gpu,),
            n_settings=args.n_settings,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers,
            chunk_size=args.chunk_size,
        )
        mart = _mart_from_campaign(runner.run(), args.seed)
    if args.task == "select":
        method = args.method or "gbdt"
        res = mart.evaluate_selector(
            method, args.gpu, n_folds=args.folds, workers=args.workers
        )
        scores, mean, label = res.fold_accuracies, res.accuracy, "accuracy"
    else:
        method = args.method or "gbr"
        res = mart.evaluate_predictor(
            method, args.gpu, n_folds=args.folds, workers=args.workers
        )
        scores, mean, label = res.fold_mapes, res.mape, "MAPE"
    folds = " ".join(f"{s:.4f}" for s in scores)
    print(f"{args.task}/{method} on {args.gpu}: per-fold {label}: {folds}")
    print(f"mean {label}: {mean:.4f}")
    return 0


def cmd_select(args) -> int:
    from .stencil import get

    art = None
    if args.model:
        art = _load_cli_artifact(args.model, "selector")
        if art is None:
            return 2
    if args.campaign:
        mart = _load_mart_from_campaign(args.campaign, args.seed)
    elif art is not None:
        from .core import StencilMART

        mart = StencilMART(
            ndim=art.ndim, max_order=art.max_order, seed=args.seed
        )
    else:
        print("select: need --campaign and/or --model", file=sys.stderr)
        return 2
    method = args.method
    if art is not None:
        if art.gpu != args.gpu or art.ndim != mart.ndim:
            print(
                f"artifact {args.model} was trained for "
                f"{art.ndim}d/{art.gpu}, not {mart.ndim}d/{args.gpu}",
                file=sys.stderr,
            )
            return 2
        method = art.method
        mart.install_selector(
            method, args.gpu, art.model, representatives=art.representatives
        )
    else:
        mart.fit_selector(method, args.gpu, workers=args.workers)
    stencil = get(args.stencil)
    oc = mart.predict_best_oc(stencil, args.gpu, method=method)
    print(f"predicted best OC for {stencil.name} on {args.gpu}: {oc.name}")
    oc, setting, t = mart.tune(stencil, args.gpu, method=method)
    print(f"tuned: {oc.name} {dict((k, v) for k, v in setting.items() if v)}")
    print(f"simulated time: {t:.3f} ms/step")
    return 0


def cmd_tune(args) -> int:
    from .errors import TuningError
    from .optimizations import OC_BY_NAME
    from .stencil import get
    from .tuning import available_strategies, tune

    if args.strategy not in available_strategies():
        print(
            f"unknown strategy {args.strategy!r} "
            f"(available: {', '.join(available_strategies())})",
            file=sys.stderr,
        )
        return 2
    if args.oc not in OC_BY_NAME:
        print(
            f"unknown OC {args.oc!r} "
            f"(available: {', '.join(sorted(OC_BY_NAME))})",
            file=sys.stderr,
        )
        return 2
    stencil = get(args.stencil)
    try:
        result = tune(
            stencil,
            oc=OC_BY_NAME[args.oc],
            gpu=args.gpu,
            backend=args.backend,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            restrictions=tuple(args.restrictions),
            cache_dir=args.cache_dir,
        )
    except TuningError as e:
        print(f"tune: {e}", file=sys.stderr)
        return 2
    if args.trials:
        for i, rec in enumerate(result.trial_log):
            t = "crash" if rec.crashed else f"{rec.time_ms:.4f} ms"
            print(f"  [{i:4d}] x{rec.fidelity:<6g} {t:>12}  {dict(rec.setting)}")
    print(f"{stencil.name} / {result.oc} on {result.gpu}:")
    print(f"  {result.describe()}")
    if not result.ok:
        return 1
    return 0


def _load_cli_artifact(path: str, kind: str):
    """Load a serve artifact for --model flags; None + message on failure."""
    from .errors import ArtifactError
    from .serve import load_artifact

    try:
        art = load_artifact(path)
    except ArtifactError as e:
        print(f"cannot use --model {path}: {e}", file=sys.stderr)
        return None
    if art.kind != kind:
        print(
            f"artifact {path} is a {art.kind}, expected a {kind}",
            file=sys.stderr,
        )
        return None
    return art


def cmd_predict(args) -> int:
    from .gpu import GPUSimulator
    from .optimizations import OC_BY_NAME, sample_setting
    from .stencil import get

    import numpy as np

    stencil = get(args.stencil)
    method = args.method
    if args.model:
        art = _load_cli_artifact(args.model, "predictor")
        if art is None:
            return 2
        if art.ndim != stencil.ndim:
            print(
                f"artifact {args.model} predicts {art.ndim}d stencils, "
                f"but {stencil.name} is {stencil.ndim}d",
                file=sys.stderr,
            )
            return 2
        from .core import StencilMART

        method = art.method
        mart = StencilMART(
            ndim=art.ndim, max_order=art.max_order, seed=args.seed
        )
        mart.install_predictor(method, art.model)
    elif args.campaign:
        mart = _load_mart_from_campaign(args.campaign, args.seed)
        mart.fit_predictor(method, max_rows=8000)
    else:
        print("predict: need --campaign and/or --model", file=sys.stderr)
        return 2
    oc = OC_BY_NAME.get(args.oc)
    if oc is None:
        print(f"unknown OC {args.oc!r}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    setting = sample_setting(oc, stencil.ndim, rng)
    pred = mart.predict_time(stencil, oc, setting, args.gpu, method=method)
    actual = GPUSimulator(args.gpu).time(stencil, oc, setting)
    print(f"{stencil.name} under {oc.name} on {args.gpu}:")
    print(f"  setting: {dict((k, v) for k, v in setting.items() if v)}")
    print(f"  predicted {pred:.3f} ms/step; simulated {actual:.3f} ms/step "
          f"({abs(pred - actual) / actual:.1%} error)")
    return 0


def _parse_overrides(pairs: "list[str]") -> dict:
    out: dict = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name or not value:
            raise SystemExit(f"bad --set {pair!r}; expected NAME=VALUE")
        out[name] = int(value)
    return out


def _resolve_dialect(args):
    """The codegen dialect from ``--dialect`` / ``--gpu`` (cuda default)."""
    from .codegen import dialect_for_gpu, get_dialect

    if getattr(args, "dialect", None):
        return get_dialect(args.dialect)
    if getattr(args, "gpu", None):
        return dialect_for_gpu(args.gpu)
    return get_dialect("cuda")


def cmd_codegen(args) -> int:
    import os

    from .analysis.lint import feasible_settings
    from .codegen import generate_source
    from .optimizations import ALL_OCS, OC_BY_NAME
    from .optimizations.params import ParamSetting
    from .stencil import get

    stencil = get(args.stencil)
    dialect = _resolve_dialect(args)
    if args.oc == "all":
        ocs = list(ALL_OCS)
    else:
        oc = OC_BY_NAME.get(args.oc)
        if oc is None:
            print(f"unknown OC {args.oc!r}", file=sys.stderr)
            return 2
        ocs = [oc]

    overrides = _parse_overrides(args.overrides)
    emitted = 0
    for oc in ocs:
        if args.sample:
            sampled = feasible_settings(stencil, oc, 1, args.seed)
            if not sampled:
                print(
                    f"{stencil.name} x {oc.name}: no feasible setting",
                    file=sys.stderr,
                )
                continue
            setting = sampled[0].replace(**overrides) if overrides else sampled[0]
        else:
            setting = ParamSetting(**overrides)
        source = generate_source(stencil, oc, setting, dialect=dialect)
        if args.output_dir:
            os.makedirs(args.output_dir, exist_ok=True)
            path = os.path.join(
                args.output_dir,
                f"{stencil.name}__{oc.name}{dialect.source_suffix}",
            )
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(source)
            print(path)
        else:
            print(source)
        emitted += 1
    return 0 if emitted else 1


def cmd_lint(args) -> int:
    import json

    from .analysis import Baseline, Severity, all_rules, lint_sweep
    from .analysis.lint import worst_severity
    from .optimizations import OC_BY_NAME
    from .stencil import get

    if args.rules:
        for info in all_rules():
            print(f"{info.rule} [{info.severity.value}] {info.title}")
            print(f"    {info.rationale}")
        return 0

    stencils = None
    if args.stencils:
        stencils = [get(n) for n in args.stencils]
    ocs = None
    if args.ocs:
        ocs = []
        for name in args.ocs:
            oc = OC_BY_NAME.get(name)
            if oc is None:
                print(f"unknown OC {name!r}", file=sys.stderr)
                return 2
            ocs.append(oc)

    baseline = Baseline.load(args.baseline) if args.baseline else None
    summary = lint_sweep(
        stencils=stencils,
        ocs=ocs,
        n_settings=args.n_settings,
        seed=args.seed,
        baseline=baseline,
        dialect=_resolve_dialect(args).name,
        gpu=getattr(args, "gpu", None),
    )

    if args.write_baseline:
        Baseline.from_findings(summary.all_findings()).save(args.write_baseline)
        print(
            f"baseline of {len(summary.all_findings())} finding(s) -> "
            f"{args.write_baseline}"
        )
        return 0

    worst = worst_severity(summary)
    if args.fmt == "json":
        doc = summary.to_dict()
        doc["worst_severity"] = worst.value if worst else None
        doc["fail_on"] = args.fail_on
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(summary.format_text(verbose=args.verbose))
    if args.fail_on == "never" or worst is None:
        return 0
    # Ranks ascend from most severe (error=0): fail when the worst
    # finding is at or above the requested threshold.
    return 1 if worst.rank <= Severity(args.fail_on).rank else 0


def cmd_estimate(args) -> int:
    import json

    from .analysis.ir import ParseError
    from .analysis.lint import feasible_settings
    from .analysis.perfmodel import EstimateError, estimate_kernel
    from .errors import KernelLaunchError
    from .ml.analytical import DEFAULT_CANDIDATES
    from .optimizations import OC_BY_NAME
    from .stencil import get

    stencils = [get(n) for n in (args.stencils or ["star2d1r"])]
    oc_names = args.ocs or list(DEFAULT_CANDIDATES)
    ocs = []
    for name in oc_names:
        oc = OC_BY_NAME.get(name)
        if oc is None:
            print(f"unknown OC {name!r}", file=sys.stderr)
            return 2
        ocs.append(oc)
    gpus = args.gpus or list(GPU_ORDER)

    estimates: "list[dict]" = []
    skipped: "list[list[str]]" = []
    crashed = 0
    for stencil in stencils:
        for oc in ocs:
            settings = feasible_settings(stencil, oc, args.n_settings, args.seed)
            if not settings:
                skipped.append([stencil.name or "anonymous", oc.name])
                continue
            for k, setting in enumerate(settings):
                for gpu in gpus:
                    row = {
                        "stencil": stencil.name or "anonymous",
                        "oc": oc.name,
                        "setting": dict(setting),
                        "setting_index": k,
                    }
                    try:
                        est = estimate_kernel(stencil, oc, setting, gpu)
                    except (KernelLaunchError, EstimateError, ParseError) as e:
                        crashed += 1
                        row.update({"gpu": gpu, "crashed": str(e)})
                    else:
                        row.update(est.to_dict(), crashed=None)
                        if args.metrics:
                            row["metrics"] = est.metrics.to_dict()
                    estimates.append(row)

    if args.fmt == "json":
        print(json.dumps(
            {
                "estimates": estimates,
                "skipped": skipped,
                "crashed": crashed,
            },
            indent=2,
            sort_keys=True,
        ))
    else:
        for row in estimates:
            head = f"{row['stencil']} x {row['oc']} [s{row['setting_index']}] on {row['gpu']}"
            if row["crashed"]:
                print(f"{head}: cannot launch ({row['crashed']})")
                continue
            ph = row["phases_ms"]
            print(
                f"{head}: {row['time_ms']:.4f} ms/step  "
                f"(dram {ph['dram']:.4f}, l2 {ph['l2']:.4f}, "
                f"smem {ph['smem']:.4f}, compute {ph['compute']:.4f}, "
                f"occupancy {row['occupancy']:.2f})"
            )
        for stencil, oc in skipped:
            print(f"{stencil} x {oc}: skipped (no feasible setting)")
        n_ok = len(estimates) - crashed
        print(
            f"{len(estimates)} variant(s) estimated: {n_ok} ok, "
            f"{crashed} cannot launch, {len(skipped)} skipped"
        )
    return 0 if any(not r["crashed"] for r in estimates) else 1


def cmd_train(args) -> int:
    from .errors import DatasetError
    from .profiling import (
        load_campaign,
        resolve_dataset_path,
        train_predictor_artifact,
        train_selector_artifact,
    )
    from .serve import ModelRegistry, save_artifact
    from .serve.registry import default_artifact_name

    if not args.out and not args.registry:
        print("train: need --out and/or --registry", file=sys.stderr)
        return 2
    try:
        campaign = load_campaign(resolve_dataset_path(args.campaign))
    except DatasetError as e:
        print(f"train: {e}", file=sys.stderr)
        return 2
    if args.task == "select":
        if not args.gpu:
            print("train --task select requires --gpu", file=sys.stderr)
            return 2
        artifact = train_selector_artifact(
            campaign,
            args.gpu,
            method=args.method or "gbdt",
            seed=args.seed,
            workers=args.workers,
        )
    else:
        artifact = train_predictor_artifact(
            campaign,
            method=args.method or "gbr",
            seed=args.seed,
            max_rows=args.max_rows,
        )
    if args.out:
        save_artifact(artifact, args.out)
        print(f"{artifact.describe()} -> {args.out}")
    if args.registry:
        reg = ModelRegistry(args.registry)
        name = args.name or default_artifact_name(
            artifact.kind, artifact.method, artifact.gpu, artifact.ndim
        )
        version = reg.publish(artifact, name)
        print(f"published {name}@{version} -> {reg.path(name, version)}")
    return 0


def cmd_serve(args) -> int:
    import json
    import signal
    import threading

    from .errors import ArtifactError
    from .serve import (
        AdmissionPolicy,
        ModelRegistry,
        ModelReloader,
        PredictionService,
        load_artifact,
    )
    from .serve.http import drain, make_server

    service = PredictionService(
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
        admission=AdmissionPolicy(
            max_queue=args.max_queue,
            default_budget_s=(
                args.budget_ms / 1000.0 if args.budget_ms else None
            ),
        ),
    )
    registry = ModelRegistry(args.registry) if args.registry else None
    if registry is not None:
        service.load_registry(registry)
    for path in args.models:
        try:
            service.install(load_artifact(path), label=path)
        except ArtifactError as e:
            service.degraded.append({"artifact": path, "error": str(e)})
    caps = service.capabilities()
    for slot, label in caps["selectors"].items():
        print(f"selector {slot}: {label}")
    for slot, label in caps["predictors"].items():
        print(f"predictor {slot}: {label}")
    for entry in caps["degraded"]:
        print(
            f"degraded (fallback active): {entry['artifact']}: "
            f"{entry['error']}",
            file=sys.stderr,
        )
    if not caps["selectors"] and not caps["predictors"]:
        print(
            "no artifacts installed; selections use the heuristic fallback",
            file=sys.stderr,
        )
    reloader = None
    if registry is not None and args.reload_interval > 0:
        reloader = ModelReloader(service, registry)
        reloader.start(args.reload_interval)
        print(
            f"hot reload: polling {args.registry} every "
            f"{args.reload_interval:g}s"
        )
    server = make_server(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} (Ctrl-C to stop)", flush=True)

    # Graceful shutdown: SIGTERM/SIGINT stop the accept loop, in-flight
    # requests drain up to --drain-timeout, final stats go to stderr.
    stop = threading.Event()

    def _request_stop(signum, frame) -> None:  # noqa: ARG001
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
    except ValueError:
        pass  # not on the main thread (tests drive stop directly)
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print(
        f"shutting down: draining in-flight requests "
        f"(timeout {args.drain_timeout:g}s)",
        file=sys.stderr,
    )
    if reloader is not None:
        reloader.stop()
    if not drain(server, args.drain_timeout):
        print(
            "drain timeout: closing with requests still in flight",
            file=sys.stderr,
        )
    serve_thread.join(timeout=1.0)
    print(json.dumps(service.stats_snapshot(), sort_keys=True), file=sys.stderr)
    return 0


def cmd_serve_chaos(args) -> int:
    import json
    import tempfile

    from .serve.bench import train_bench_artifacts
    from .serve.chaos import ChaosConfig, chaos_passed, run_chaos

    print("training artifacts for the chaos scenario...", flush=True)
    selector, predictor = train_bench_artifacts(args.quick, args.seed)
    cfg = ChaosConfig.make(quick=args.quick, seed=args.seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        report = run_chaos(selector, predictor, cfg, workdir)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report -> {args.report}")
    t = report["totals"]
    print(
        f"{t['requests']} requests: {t['ok']} ok, {t['shed']} shed, "
        f"{t['deadline']} deadline, {report['non_503_errors']} failed"
    )
    print(
        f"availability {report['availability']:.3f} "
        f"(excluding shed: {report['availability_excluding_shed']:.3f}); "
        f"p99 under overload {report['p99_under_overload_ms']:.1f} ms"
    )
    b, r = report["breaker"], report["reload"]
    print(
        f"breaker: opened={b['opened']} pinned={b['pinned_last_good']} "
        f"recovered={b['recovered']} final={b['final_state']}; "
        f"swaps={r['swaps']} rollbacks={r['rollbacks']}"
    )
    problems = chaos_passed(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("all robustness invariants held")
    return 1 if problems else 0


def cmd_query(args) -> int:
    import json

    from .errors import ServiceError
    from .serve.client import ServeClient

    client = ServeClient(args.url)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if not args.stencil or not args.gpu:
            print(
                "query: need --stats, or --stencil and --gpu",
                file=sys.stderr,
            )
            return 2
        if args.oc:
            setting = _parse_overrides(args.overrides)
            t = client.predict(args.stencil, args.oc, args.gpu, setting)
            print(
                f"{args.stencil} under {args.oc} on {args.gpu}: "
                f"{t:.3f} ms/step (predicted)"
            )
        else:
            r = client.select(args.stencil, args.gpu)
            via = r["artifact"] or r.get("rung") or "fallback ladder"
            print(
                f"best OC for {args.stencil} on {args.gpu}: {r['oc']} "
                f"({r['source']} via {via})"
            )
        return 0
    except ServiceError as e:
        print(f"query failed: {e}", file=sys.stderr)
        return 1


_COMMANDS = {
    "generate": cmd_generate,
    "profile": cmd_profile,
    "select": cmd_select,
    "tune": cmd_tune,
    "evaluate": cmd_evaluate,
    "predict": cmd_predict,
    "codegen": cmd_codegen,
    "lint": cmd_lint,
    "estimate": cmd_estimate,
    "train": cmd_train,
    "serve": cmd_serve,
    "serve-chaos": cmd_serve_chaos,
    "query": cmd_query,
}


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
