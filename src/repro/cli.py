"""Command-line interface for the StencilMART reproduction.

Subcommands mirror the pipeline stages::

    python -m repro generate --ndim 2 --count 20          # print stencils
    python -m repro profile  --ndim 2 --count 20 -o c.json  # profile -> JSON
    python -m repro select   --campaign c.json --stencil star2d2r --gpu V100
    python -m repro predict  --campaign c.json --stencil star2d2r \
        --oc ST_RT --gpu A100                              # time prediction
    python -m repro codegen  --stencil star2d2r --oc ST_RT  # emit CUDA
    python -m repro lint                                   # verify kernels

``generate`` and ``profile`` run standalone; ``select`` and ``predict``
train on a saved campaign so repeated queries do not re-simulate.
``codegen`` prints (or writes) generated CUDA sources and ``lint`` runs
the static analyzer over the generated sweep, exiting nonzero on any
error-severity finding.
"""

from __future__ import annotations

import argparse
import sys

from .config import DEFAULT_SEED
from .gpu.specs import GPU_ORDER


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=DEFAULT_SEED, help="master seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="StencilMART reproduction pipeline"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate random stencils (Algorithm 1)")
    g.add_argument("--ndim", type=int, choices=(2, 3), required=True)
    g.add_argument("--count", type=int, default=10)
    g.add_argument("--max-order", type=int, default=4)
    _add_common(g)

    p = sub.add_parser("profile", help="profile a population across GPUs")
    p.add_argument("--ndim", type=int, choices=(2, 3), required=True)
    p.add_argument("--count", type=int, default=20)
    p.add_argument("--gpus", nargs="+", default=list(GPU_ORDER))
    p.add_argument("--n-settings", type=int, default=6)
    p.add_argument(
        "--backend",
        default="scalar",
        choices=("scalar", "vector", "cached", "parallel"),
        help="measurement backend: per-point reference, NumPy-vectorized "
        "batches, vectorized with content-keyed memoization, or batches "
        "sharded across a process pool (equivalent results; "
        "vector/cached/parallel are much faster)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard (gpu, stencil) units across this many worker "
        "processes (0 = one per CPU; results are bit-identical for "
        "every worker count, and checkpoints resume across counts)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="units per shard in parallel runs (default: split pending "
        "work evenly across workers)",
    )
    p.add_argument("-o", "--output", required=True, help="campaign JSON path")
    p.add_argument(
        "--checkpoint",
        help="checkpoint JSON path; progress is saved here atomically",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from an existing --checkpoint file (fresh start "
        "if the file does not exist yet)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        help="completed (gpu, stencil) units between checkpoints",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="base transient-fault injection rate per measurement "
        "(timeouts, sporadic errors, corrupted timings at this rate; "
        "device losses at a hundredth of it); 0 disables injection",
    )
    p.add_argument(
        "--timeout-rate", type=float, default=None,
        help="override the kernel-hang rate (default: --fault-rate)",
    )
    p.add_argument(
        "--transient-rate", type=float, default=None,
        help="override the sporadic-failure rate (default: --fault-rate)",
    )
    p.add_argument(
        "--device-lost-rate", type=float, default=None,
        help="override the device-loss rate (default: --fault-rate / 100)",
    )
    p.add_argument(
        "--corrupt-rate", type=float, default=None,
        help="override the corrupted-timing rate (default: --fault-rate)",
    )
    _add_common(p)

    s = sub.add_parser("select", help="predict the best OC for a stencil")
    s.add_argument("--campaign", required=True, help="campaign JSON path")
    s.add_argument("--stencil", required=True, help="named stencil, e.g. star2d2r")
    s.add_argument("--gpu", required=True, choices=list(GPU_ORDER))
    s.add_argument("--method", default="gbdt", choices=("gbdt", "convnet", "fcnet"))
    s.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallelize model training across this many processes "
        "(0 = one per CPU; currently the GBDT classifier fits its "
        "per-class trees in parallel, other methods train sequentially)",
    )
    _add_common(s)

    e = sub.add_parser(
        "evaluate",
        help="cross-validate selection/prediction mechanisms (Figs. 9, 12)",
    )
    e.add_argument("--campaign", required=True, help="campaign JSON path")
    e.add_argument(
        "--task",
        default="select",
        choices=("select", "predict"),
        help="evaluate OC selection (fold accuracy) or time prediction "
        "(fold MAPE)",
    )
    e.add_argument(
        "--method",
        default=None,
        help="mechanism to evaluate (default: gbdt for select, gbr for "
        "predict)",
    )
    e.add_argument("--gpu", required=True, choices=list(GPU_ORDER))
    e.add_argument("--folds", type=int, default=5)
    e.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fit cross-validation folds on this many worker processes "
        "(0 = one per CPU; fold results are identical for any count)",
    )
    _add_common(e)

    t = sub.add_parser("predict", help="predict execution time cross-architecture")
    t.add_argument("--campaign", required=True)
    t.add_argument("--stencil", required=True)
    t.add_argument("--oc", required=True, help="OC name, e.g. ST_RT")
    t.add_argument("--gpu", required=True, choices=list(GPU_ORDER))
    t.add_argument("--method", default="gbr", choices=("gbr", "mlp", "convmlp"))
    _add_common(t)

    c = sub.add_parser("codegen", help="emit CUDA source for a kernel variant")
    c.add_argument("--stencil", required=True, help="named stencil, e.g. star2d2r")
    c.add_argument(
        "--oc",
        default="naive",
        help="OC name (e.g. ST_RT) or 'all' for every valid combination",
    )
    c.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        dest="overrides",
        help="pin a parameter (repeatable), e.g. --set block_x=64",
    )
    c.add_argument(
        "--sample",
        action="store_true",
        help="sample a feasible setting instead of starting from defaults",
    )
    c.add_argument(
        "-o",
        "--output-dir",
        help="write <stencil>__<oc>.cu files here instead of stdout",
    )
    _add_common(c)

    lint = sub.add_parser(
        "lint", help="statically analyze generated kernels (nonzero exit on errors)"
    )
    lint.add_argument(
        "--stencil",
        action="append",
        dest="stencils",
        metavar="NAME",
        help="restrict to named stencils (repeatable; default: whole library)",
    )
    lint.add_argument(
        "--oc",
        action="append",
        dest="ocs",
        metavar="NAME",
        help="restrict to OCs (repeatable; default: all 30)",
    )
    lint.add_argument(
        "--n-settings", type=int, default=1,
        help="sampled parameter settings per (stencil, OC)",
    )
    lint.add_argument(
        "--format", default="text", choices=("text", "json"), dest="fmt"
    )
    lint.add_argument("--baseline", help="accept findings recorded in this file")
    lint.add_argument(
        "--write-baseline",
        help="record current findings to this file and exit 0",
    )
    lint.add_argument(
        "-v", "--verbose", action="store_true", help="also list clean kernels"
    )
    lint.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    _add_common(lint)

    return parser


def _load_mart_from_campaign(path: str, seed: int):
    from .core import StencilMART
    from .profiling import load_campaign, merge_ocs

    campaign = load_campaign(path)
    mart = StencilMART(
        ndim=campaign.ndim,
        gpus=campaign.gpus,
        n_settings=campaign.n_settings,
        seed=seed,
    )
    mart.campaign = campaign
    mart.grouping = merge_ocs(campaign, n_classes=mart.n_classes)
    return mart


def cmd_generate(args) -> int:
    from .stencil import classify, generate_population

    pop = generate_population(
        args.ndim, args.count, max_order=args.max_order, seed=args.seed
    )
    for s in pop:
        print(
            f"{s.name}: order={s.order} nnz={s.nnz} shape={classify(s).value} "
            f"offsets={sorted(s.offsets)}"
        )
    return 0


def cmd_profile(args) -> int:
    from .errors import CampaignInterrupted
    from .gpu.faults import FaultConfig
    from .profiling import CampaignRunner, save_campaign
    from .stencil import generate_population

    base = args.fault_rate
    faults = FaultConfig(
        timeout_rate=base if args.timeout_rate is None else args.timeout_rate,
        transient_rate=(
            base if args.transient_rate is None else args.transient_rate
        ),
        device_lost_rate=(
            base / 100.0
            if args.device_lost_rate is None
            else args.device_lost_rate
        ),
        corrupt_rate=base if args.corrupt_rate is None else args.corrupt_rate,
    )
    pop = generate_population(args.ndim, args.count, seed=args.seed)
    runner = CampaignRunner(
        pop,
        gpus=tuple(args.gpus),
        n_settings=args.n_settings,
        seed=args.seed,
        backend=args.backend,
        faults=faults,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        workers=args.workers,
        chunk_size=args.chunk_size,
    )
    try:
        campaign = runner.run(resume=args.resume)
    except CampaignInterrupted as e:
        print(f"campaign interrupted: {e}", file=sys.stderr)
        print(runner.health.summary(), file=sys.stderr)
        return 3
    save_campaign(campaign, args.output)
    n_meas = sum(len(campaign.measurements(g)) for g in campaign.gpus)
    print(
        f"profiled {len(pop)} stencils x {len(campaign.ocs)} OCs on "
        f"{len(campaign.gpus)} GPUs ({n_meas} measurements) -> {args.output}"
    )
    print(runner.health.summary())
    return 0


def cmd_evaluate(args) -> int:
    mart = _load_mart_from_campaign(args.campaign, args.seed)
    if args.task == "select":
        method = args.method or "gbdt"
        res = mart.evaluate_selector(
            method, args.gpu, n_folds=args.folds, workers=args.workers
        )
        scores, mean, label = res.fold_accuracies, res.accuracy, "accuracy"
    else:
        method = args.method or "gbr"
        res = mart.evaluate_predictor(
            method, args.gpu, n_folds=args.folds, workers=args.workers
        )
        scores, mean, label = res.fold_mapes, res.mape, "MAPE"
    folds = " ".join(f"{s:.4f}" for s in scores)
    print(f"{args.task}/{method} on {args.gpu}: per-fold {label}: {folds}")
    print(f"mean {label}: {mean:.4f}")
    return 0


def cmd_select(args) -> int:
    from .stencil import get

    mart = _load_mart_from_campaign(args.campaign, args.seed)
    mart.fit_selector(args.method, args.gpu, workers=args.workers)
    stencil = get(args.stencil)
    oc = mart.predict_best_oc(stencil, args.gpu, method=args.method)
    print(f"predicted best OC for {stencil.name} on {args.gpu}: {oc.name}")
    oc, setting, t = mart.tune(stencil, args.gpu, method=args.method)
    print(f"tuned: {oc.name} {dict((k, v) for k, v in setting.items() if v)}")
    print(f"simulated time: {t:.3f} ms/step")
    return 0


def cmd_predict(args) -> int:
    from .gpu import GPUSimulator
    from .optimizations import OC_BY_NAME, sample_setting
    from .stencil import get

    import numpy as np

    mart = _load_mart_from_campaign(args.campaign, args.seed)
    mart.fit_predictor(args.method, max_rows=8000)
    stencil = get(args.stencil)
    oc = OC_BY_NAME.get(args.oc)
    if oc is None:
        print(f"unknown OC {args.oc!r}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    setting = sample_setting(oc, stencil.ndim, rng)
    pred = mart.predict_time(stencil, oc, setting, args.gpu, method=args.method)
    actual = GPUSimulator(args.gpu).time(stencil, oc, setting)
    print(f"{stencil.name} under {oc.name} on {args.gpu}:")
    print(f"  setting: {dict((k, v) for k, v in setting.items() if v)}")
    print(f"  predicted {pred:.3f} ms/step; simulated {actual:.3f} ms/step "
          f"({abs(pred - actual) / actual:.1%} error)")
    return 0


def _parse_overrides(pairs: "list[str]") -> dict:
    out: dict = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name or not value:
            raise SystemExit(f"bad --set {pair!r}; expected NAME=VALUE")
        out[name] = int(value)
    return out


def cmd_codegen(args) -> int:
    import os

    from .analysis.lint import feasible_settings
    from .codegen.cuda import generate_cuda
    from .optimizations import ALL_OCS, OC_BY_NAME
    from .optimizations.params import ParamSetting
    from .stencil import get

    stencil = get(args.stencil)
    if args.oc == "all":
        ocs = list(ALL_OCS)
    else:
        oc = OC_BY_NAME.get(args.oc)
        if oc is None:
            print(f"unknown OC {args.oc!r}", file=sys.stderr)
            return 2
        ocs = [oc]

    overrides = _parse_overrides(args.overrides)
    emitted = 0
    for oc in ocs:
        if args.sample:
            sampled = feasible_settings(stencil, oc, 1, args.seed)
            if not sampled:
                print(
                    f"{stencil.name} x {oc.name}: no feasible setting",
                    file=sys.stderr,
                )
                continue
            setting = sampled[0].replace(**overrides) if overrides else sampled[0]
        else:
            setting = ParamSetting(**overrides)
        source = generate_cuda(stencil, oc, setting)
        if args.output_dir:
            os.makedirs(args.output_dir, exist_ok=True)
            path = os.path.join(
                args.output_dir, f"{stencil.name}__{oc.name}.cu"
            )
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(source)
            print(path)
        else:
            print(source)
        emitted += 1
    return 0 if emitted else 1


def cmd_lint(args) -> int:
    from .analysis import Baseline, all_rules, lint_sweep
    from .optimizations import OC_BY_NAME
    from .stencil import get

    if args.rules:
        for info in all_rules():
            print(f"{info.rule} [{info.severity.value}] {info.title}")
            print(f"    {info.rationale}")
        return 0

    stencils = None
    if args.stencils:
        stencils = [get(n) for n in args.stencils]
    ocs = None
    if args.ocs:
        ocs = []
        for name in args.ocs:
            oc = OC_BY_NAME.get(name)
            if oc is None:
                print(f"unknown OC {name!r}", file=sys.stderr)
                return 2
            ocs.append(oc)

    baseline = Baseline.load(args.baseline) if args.baseline else None
    summary = lint_sweep(
        stencils=stencils,
        ocs=ocs,
        n_settings=args.n_settings,
        seed=args.seed,
        baseline=baseline,
    )

    if args.write_baseline:
        Baseline.from_findings(summary.all_findings()).save(args.write_baseline)
        print(
            f"baseline of {len(summary.all_findings())} finding(s) -> "
            f"{args.write_baseline}"
        )
        return 0

    if args.fmt == "json":
        print(summary.to_json())
    else:
        print(summary.format_text(verbose=args.verbose))
    return 0 if summary.ok else 1


_COMMANDS = {
    "generate": cmd_generate,
    "profile": cmd_profile,
    "select": cmd_select,
    "evaluate": cmd_evaluate,
    "predict": cmd_predict,
    "codegen": cmd_codegen,
    "lint": cmd_lint,
}


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
