"""Record types produced by the profiling pipeline.

The dataset design follows Section IV-A: for every generated stencil, every
OC is profiled under several random parameter settings on every GPU.  Each
individual (setting, time) pair becomes a :class:`Measurement` -- the raw
material of the regression dataset -- while the per-OC minimum feeds OC
selection and the motivation figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import DatasetError
from ..optimizations.combos import OC
from ..optimizations.params import ParamSetting
from ..stencil.stencil import Stencil


@dataclass(frozen=True)
class Measurement:
    """One profiled run: (stencil, OC, setting, GPU) -> time."""

    stencil_id: int
    oc: str
    setting: ParamSetting
    gpu: str
    time_ms: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_ms) or self.time_ms <= 0:
            raise DatasetError(f"non-positive measurement: {self.time_ms}")


@dataclass
class OCResult:
    """Best result of the random parameter search for one OC.

    ``crashed`` counts settings rejected by the simulator
    (:class:`KernelLaunchError`); an OC whose every sampled setting crashes
    produces no :class:`OCResult` at all.
    """

    oc: str
    best_setting: ParamSetting
    best_time_ms: float
    n_settings: int
    crashed: int


@dataclass
class StencilProfile:
    """All profiling results for one stencil on one GPU."""

    stencil: Stencil
    stencil_id: int
    gpu: str
    oc_results: dict[str, OCResult] = field(default_factory=dict)
    measurements: list[Measurement] = field(default_factory=list)

    @property
    def best_oc(self) -> str:
        """Name of the fastest OC (its best setting) on this GPU."""
        if not self.oc_results:
            raise DatasetError(
                f"stencil {self.stencil_id} has no valid OC on {self.gpu}"
            )
        return min(
            self.oc_results.values(), key=lambda r: (r.best_time_ms, r.oc)
        ).oc

    @property
    def best_time_ms(self) -> float:
        """Fastest time over all OCs (the stencil's achievable performance)."""
        return self.oc_results[self.best_oc].best_time_ms

    def time_of(self, oc: "str | OC") -> float:
        """Best time of a specific OC; ``inf`` if it never ran."""
        name = oc if isinstance(oc, str) else oc.name
        r = self.oc_results.get(name)
        return r.best_time_ms if r else math.inf
