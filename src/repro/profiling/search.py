"""Random parameter search per optimization combination (Section IV-A).

"The StencilMART randomly searches the parameter settings under each OC and
selects the shortest execution time for performance comparison."  Settings
whose simulated launch crashes are resampled (bounded attempts), mirroring a
profiling harness that records only successful runs; an OC with no valid
setting at all is reported as crashed for that stencil/GPU, matching the
paper's note that "there are some cases where OC crashes under certain
stencils".

Since the unified front door landed, this module is a *compatibility
wrapper*: the actual search lives in
:class:`repro.tuning.RandomStrategy` (a bit-identical port of the walk +
coordinate-refinement tuner this module used to implement) and runs
through :func:`repro.tuning.tune`, which owns backend resolution, the
ask/evaluate/tell loop and result packaging.  ``RandomSearch`` keeps the
historical surface -- ``tune_oc`` returning ``(OCResult, measurements)``
and ``profile_stencil`` -- that the campaign runner, baselines and
framework still speak.

**RNG stream-key convention.**  Each (stencil, OC) tuning batch owns one
independent random stream, derived as::

    SeedSequence((seed, stencil_id & 0x7FFFFFFF, zlib.crc32(oc.name)))

and drawn from exactly once, up front, when the tuning batch is
assembled (see :func:`repro.tuning.stream_rng`).  Because the stream is
keyed by content -- never by evaluation order -- profiles are identical
no matter how the backend batches, caches or reorders measurements, and
identical across processes.  Campaign digests are pinned to this exact
stream, which is why :class:`~repro.tuning.RandomStrategy` keys it with
no strategy-name component.
"""

from __future__ import annotations

from ..engine import as_backend
from ..optimizations.combos import ALL_OCS, OC
from ..stencil.stencil import Stencil
from .records import Measurement, OCResult, StencilProfile

#: Sampling attempts allowed per requested valid setting (re-exported
#: from the strategy, which owns the value now).
_ATTEMPTS_PER_SETTING = 12

#: Coordinate-descent passes after random sampling.
_REFINE_PASSES = 3


class RandomSearch:
    """Best-of-N random tuner over one simulated GPU.

    Parameters
    ----------
    simulator:
        The measurement substrate: a :class:`~repro.engine.Backend`, or
        any simulator-like object with a ``time`` method (wrapped in a
        :class:`~repro.engine.ScalarBackend` for compatibility).
    n_settings:
        Valid parameter settings to measure per OC (the paper keeps this
        budget identical across compared methods).
    seed:
        Base seed; the per-(stencil, OC) stream is derived from it so
        profiles are independent of evaluation order (see the module
        docstring for the stream-key convention).
    refine:
        When true (default), the best random sample of each
        (use_smem, stream_dim, temporal_steps) basin is polished by
        coordinate descent.  Pure best-of-N over this parameter space is
        high-variance (narrow optima next to crash cliffs), which would
        make best-OC labels depend on sampling luck rather than the
        stencil; the deterministic refinement step recovers the per-OC
        optimum the paper's larger profiling budget effectively reaches.
    """

    def __init__(
        self,
        simulator,
        n_settings: int,
        seed: int,
        refine: bool = True,
    ):
        self.backend = as_backend(simulator)
        # Backends satisfy the simulator surface (spec/sigma/time), so the
        # historical attribute keeps working for callers that poke at it.
        self.sim = self.backend
        self.n_settings = int(n_settings)
        self.seed = int(seed)
        self.refine = bool(refine)

    def tune_oc(
        self, stencil: Stencil, stencil_id: int, oc: OC
    ) -> "tuple[OCResult | None, list[Measurement]]":
        """Measure up to ``n_settings`` valid settings of *oc*.

        Returns ``(None, [])`` when every attempted setting crashes.
        """
        from ..tuning import RandomStrategy, tune

        strategy = RandomStrategy(
            n_settings=self.n_settings,
            refine=self.refine,
            attempts_per_setting=_ATTEMPTS_PER_SETTING,
            refine_passes=_REFINE_PASSES,
        )
        result = tune(
            stencil,
            oc=oc,
            backend=self.backend,
            strategy=strategy,
            seed=self.seed,
            stencil_id=stencil_id,
        )
        if not result.ok:
            return None, []
        gpu_name = self.backend.spec.name
        measurements = [
            Measurement(
                stencil_id=stencil_id,
                oc=oc.name,
                setting=setting,
                gpu=gpu_name,
                time_ms=time_ms,
            )
            for setting, time_ms in strategy.measurements
        ]
        oc_result = OCResult(
            oc=oc.name,
            best_setting=result.best_setting,
            best_time_ms=result.best_time_ms,
            n_settings=len(measurements),
            crashed=strategy.walk_crashed,
        )
        return oc_result, measurements

    # ------------------------------------------------------------------
    def profile_stencil(
        self,
        stencil: Stencil,
        stencil_id: int,
        ocs: "tuple[OC, ...] | list[OC]" = ALL_OCS,
    ) -> StencilProfile:
        """Profile *stencil* under every OC in *ocs* on this GPU."""
        profile = StencilProfile(
            stencil=stencil, stencil_id=stencil_id, gpu=self.backend.spec.name
        )
        for oc in ocs:
            result, ms = self.tune_oc(stencil, stencil_id, oc)
            if result is not None:
                profile.oc_results[oc.name] = result
                profile.measurements.extend(ms)
        return profile
