"""Random parameter search per optimization combination (Section IV-A).

"The StencilMART randomly searches the parameter settings under each OC and
selects the shortest execution time for performance comparison."  Settings
whose simulated launch crashes are resampled (bounded attempts), mirroring a
profiling harness that records only successful runs; an OC with no valid
setting at all is reported as crashed for that stencil/GPU, matching the
paper's note that "there are some cases where OC crashes under certain
stencils".

Measurement goes through the batched evaluation engine
(:mod:`repro.engine`): the tuner describes whole frontiers of candidate
settings as :class:`~repro.engine.EvalRequest` batches and the configured
:class:`~repro.engine.Backend` measures them -- vectorized, cached or
per-point depending on the backend -- with crash results carried as data
so one crashing setting never aborts the rest of a batch.

**RNG stream-key convention.**  Each (stencil, OC) tuning batch owns one
independent random stream, derived as::

    SeedSequence((seed, stencil_id & 0x7FFFFFFF, zlib.crc32(oc.name)))

and drawn from exactly once, up front, when the tuning batch is
assembled: ``tune_oc`` materializes all ``n_settings *
_ATTEMPTS_PER_SETTING`` candidate draws before any measurement happens.
Because the stream is keyed by content (seed, stencil id, OC name) --
never by evaluation order -- and consumed in one place, profiles are
identical no matter how the backend batches, caches or reorders the
measurements, and identical across processes (``zlib.crc32`` is stable,
unlike builtin ``hash``).  The mask keeps ad-hoc ``stencil_id=-1`` calls
within SeedSequence's non-negative entropy domain.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..engine import EvalRequest, as_backend
from ..optimizations.combos import ALL_OCS, OC
from ..optimizations.params import (
    ParamSetting,
    relevant_params,
    sample_setting,
)
from ..optimizations.params import _choices_for  # search owns refinement
from ..stencil.stencil import Stencil
from .records import Measurement, OCResult, StencilProfile

#: Sampling attempts allowed per requested valid setting.
_ATTEMPTS_PER_SETTING = 12

#: Coordinate-descent passes after random sampling.
_REFINE_PASSES = 3


class RandomSearch:
    """Best-of-N random tuner over one simulated GPU.

    Parameters
    ----------
    simulator:
        The measurement substrate: a :class:`~repro.engine.Backend`, or
        any simulator-like object with a ``time`` method (wrapped in a
        :class:`~repro.engine.ScalarBackend` for compatibility).
    n_settings:
        Valid parameter settings to measure per OC (the paper keeps this
        budget identical across compared methods).
    seed:
        Base seed; the per-(stencil, OC) stream is derived from it so
        profiles are independent of evaluation order (see the module
        docstring for the stream-key convention).
    refine:
        When true (default), the best random sample is polished by
        coordinate descent over each relevant parameter's choices.  Pure
        best-of-N over this parameter space is high-variance (narrow
        optima next to crash cliffs), which would make best-OC labels
        depend on sampling luck rather than the stencil; the deterministic
        refinement step recovers the per-OC optimum the paper's larger
        profiling budget effectively reaches.
    """

    def __init__(
        self,
        simulator,
        n_settings: int,
        seed: int,
        refine: bool = True,
    ):
        self.backend = as_backend(simulator)
        # Backends satisfy the simulator surface (spec/sigma/time), so the
        # historical attribute keeps working for callers that poke at it.
        self.sim = self.backend
        self.n_settings = int(n_settings)
        self.seed = int(seed)
        self.refine = bool(refine)

    # ------------------------------------------------------------------
    def _rng(self, stencil_id: int, oc: OC) -> np.random.Generator:
        oc_key = zlib.crc32(oc.name.encode())
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, stencil_id & 0x7FFFFFFF, oc_key))
        )

    def _chunk_size(self, need: int) -> int:
        """Settings to evaluate per engine call while ``need`` are missing.

        A vectorized (or caching-over-vectorized) backend amortizes fixed
        batch overhead, so it gets generous frontiers; the scalar path
        pays per point either way, so it evaluates exactly as many unique
        settings as the sequential tuner would have.
        """
        info = self.backend.info
        if info.vectorized or info.caching:
            return max(4 * need, 32)
        return max(need, 1)

    def tune_oc(
        self, stencil: Stencil, stencil_id: int, oc: OC
    ) -> tuple[OCResult | None, list[Measurement]]:
        """Measure up to ``n_settings`` valid settings of *oc*.

        Returns ``(None, [])`` when every attempted setting crashes.
        """
        rng = self._rng(stencil_id, oc)
        max_attempts = self.n_settings * _ATTEMPTS_PER_SETTING
        # The whole tuning batch's randomness is drawn here, once; see the
        # module docstring.  Draws past the stopping point are discarded
        # unobserved, which is exactly what the incremental sampler did.
        draws = [sample_setting(oc, stencil.ndim, rng) for _ in range(max_attempts)]

        # Unique settings in first-draw order; the sampling walk below
        # consumes them strictly in this order, so batches can be
        # evaluated ahead of the walk without changing its outcome.
        order: list[ParamSetting] = []
        first_seen: set[tuple[int, ...]] = set()
        for s in draws:
            k = s.as_tuple()
            if k not in first_seen:
                first_seen.add(k)
                order.append(s)

        results: dict[tuple[int, ...], "object"] = {}
        frontier = 0  # index into `order` of the first unevaluated setting

        measurements: list[Measurement] = []
        seen: set[tuple[int, ...]] = set()
        crashed = 0
        attempts = 0
        gpu_name = self.backend.spec.name
        while len(measurements) < self.n_settings and attempts < max_attempts:
            setting = draws[attempts]
            attempts += 1
            key = setting.as_tuple()
            if key in seen:
                continue
            seen.add(key)
            if key not in results:
                end = min(
                    len(order),
                    frontier + self._chunk_size(self.n_settings - len(measurements)),
                )
                batch = order[frontier:end]
                for s, res in zip(
                    batch,
                    self.backend.evaluate_batch(
                        [EvalRequest(stencil, oc, s) for s in batch]
                    ),
                ):
                    results[s.as_tuple()] = res
                frontier = end
            res = results[key]
            if res.crashed:
                crashed += 1
                continue
            measurements.append(
                Measurement(
                    stencil_id=stencil_id,
                    oc=oc.name,
                    setting=setting,
                    gpu=gpu_name,
                    time_ms=res.value(),
                )
            )
        if not measurements:
            return None, []
        best = min(measurements, key=lambda m: m.time_ms)
        best_setting, best_time = best.setting, best.time_ms
        if self.refine:
            # Basin-covering multi-start: the landscape's major basins are
            # indexed by the discrete mode switches (shared memory on/off,
            # stream axis, temporal degree); coordinate descent from the
            # best sample of each basin makes the per-OC optimum nearly
            # independent of sampling luck, so best-OC labels reflect the
            # stencil rather than the seed.
            basins: dict[tuple[int, int, int], Measurement] = {}
            for meas in measurements:
                key = (
                    meas.setting["use_smem"],
                    meas.setting["stream_dim"],
                    meas.setting["temporal_steps"],
                )
                cur = basins.get(key)
                if cur is None or meas.time_ms < cur.time_ms:
                    basins[key] = cur = meas
            for start in sorted(basins.values(), key=lambda m: m.time_ms):
                if start.time_ms > 4.0 * best_time:
                    continue  # hopeless basin; descent cannot recover 4x
                setting, t, extra = self._coordinate_descent(
                    stencil, stencil_id, oc, start.setting, start.time_ms, seen
                )
                measurements.extend(extra)
                if t < best_time:
                    best_setting, best_time = setting, t
        result = OCResult(
            oc=oc.name,
            best_setting=best_setting,
            best_time_ms=best_time,
            n_settings=len(measurements),
            crashed=crashed,
        )
        return result, measurements

    def _coordinate_descent(
        self,
        stencil: Stencil,
        stencil_id: int,
        oc: OC,
        setting: ParamSetting,
        time_ms: float,
        seen: set[tuple[int, ...]],
    ) -> tuple[ParamSetting, float, list[Measurement]]:
        """Polish *setting* one parameter at a time until a fixed point.

        Each parameter's whole candidate frontier (every alternative
        choice) is evaluated as one batch; acceptance then walks the
        results in choice order, so the descent trajectory is identical
        to evaluating candidates one by one.
        """
        extra: list[Measurement] = []
        names = relevant_params(oc, stencil.ndim)
        gpu_name = self.backend.spec.name
        for _ in range(_REFINE_PASSES):
            improved = False
            for name in names:
                base_value = setting[name]
                candidates = [
                    setting.replace(**{name: value})
                    for value in _choices_for(name, stencil.ndim)
                    if value != base_value
                ]
                if not candidates:
                    continue
                res_list = self.backend.evaluate_batch(
                    [EvalRequest(stencil, oc, c) for c in candidates]
                )
                for candidate, res in zip(candidates, res_list):
                    if res.crashed:
                        continue
                    t = res.value()
                    key = candidate.as_tuple()
                    if key not in seen:
                        seen.add(key)
                        extra.append(
                            Measurement(
                                stencil_id=stencil_id,
                                oc=oc.name,
                                setting=candidate,
                                gpu=gpu_name,
                                time_ms=t,
                            )
                        )
                    if t < time_ms:
                        setting, time_ms = candidate, t
                        improved = True
            if not improved:
                break
        return setting, time_ms, extra

    # ------------------------------------------------------------------
    def profile_stencil(
        self,
        stencil: Stencil,
        stencil_id: int,
        ocs: "tuple[OC, ...] | list[OC]" = ALL_OCS,
    ) -> StencilProfile:
        """Profile *stencil* under every OC in *ocs* on this GPU."""
        profile = StencilProfile(
            stencil=stencil, stencil_id=stencil_id, gpu=self.backend.spec.name
        )
        for oc in ocs:
            result, ms = self.tune_oc(stencil, stencil_id, oc)
            if result is not None:
                profile.oc_results[oc.name] = result
                profile.measurements.extend(ms)
        return profile
