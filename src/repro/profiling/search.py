"""Random parameter search per optimization combination (Section IV-A).

"The StencilMART randomly searches the parameter settings under each OC and
selects the shortest execution time for performance comparison."  Settings
whose simulated launch crashes are resampled (bounded attempts), mirroring a
profiling harness that records only successful runs; an OC with no valid
setting at all is reported as crashed for that stencil/GPU, matching the
paper's note that "there are some cases where OC crashes under certain
stencils".
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import KernelLaunchError
from ..gpu.simulator import GPUSimulator
from ..optimizations.combos import ALL_OCS, OC
from ..optimizations.params import (
    ParamSetting,
    relevant_params,
    sample_setting,
)
from ..optimizations.params import _choices_for  # search owns refinement
from ..stencil.stencil import Stencil
from .records import Measurement, OCResult, StencilProfile

#: Sampling attempts allowed per requested valid setting.
_ATTEMPTS_PER_SETTING = 12

#: Coordinate-descent passes after random sampling.
_REFINE_PASSES = 3


class RandomSearch:
    """Best-of-N random tuner over one simulated GPU.

    Parameters
    ----------
    simulator:
        The measurement substrate.
    n_settings:
        Valid parameter settings to measure per OC (the paper keeps this
        budget identical across compared methods).
    seed:
        Base seed; the per-(stencil, OC) stream is derived from it so
        profiles are independent of evaluation order.
    refine:
        When true (default), the best random sample is polished by
        coordinate descent over each relevant parameter's choices.  Pure
        best-of-N over this parameter space is high-variance (narrow
        optima next to crash cliffs), which would make best-OC labels
        depend on sampling luck rather than the stencil; the deterministic
        refinement step recovers the per-OC optimum the paper's larger
        profiling budget effectively reaches.
    """

    def __init__(
        self,
        simulator: GPUSimulator,
        n_settings: int,
        seed: int,
        refine: bool = True,
    ):
        self.sim = simulator
        self.n_settings = int(n_settings)
        self.seed = int(seed)
        self.refine = bool(refine)

    # ------------------------------------------------------------------
    def _rng(self, stencil_id: int, oc: OC) -> np.random.Generator:
        # zlib.crc32 is stable across processes, unlike builtin hash().
        # Ad-hoc tuning calls pass stencil_id=-1; SeedSequence needs
        # non-negative entropy words.
        oc_key = zlib.crc32(oc.name.encode())
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, stencil_id & 0x7FFFFFFF, oc_key))
        )

    def tune_oc(
        self, stencil: Stencil, stencil_id: int, oc: OC
    ) -> tuple[OCResult | None, list[Measurement]]:
        """Measure up to ``n_settings`` valid settings of *oc*.

        Returns ``(None, [])`` when every attempted setting crashes.
        """
        rng = self._rng(stencil_id, oc)
        measurements: list[Measurement] = []
        seen: set[tuple[int, ...]] = set()
        crashed = 0
        attempts = 0
        max_attempts = self.n_settings * _ATTEMPTS_PER_SETTING
        while len(measurements) < self.n_settings and attempts < max_attempts:
            attempts += 1
            setting = sample_setting(oc, stencil.ndim, rng)
            key = setting.as_tuple()
            if key in seen:
                continue
            seen.add(key)
            try:
                t = self.sim.time(stencil, oc, setting)
            except KernelLaunchError:
                crashed += 1
                continue
            measurements.append(
                Measurement(
                    stencil_id=stencil_id,
                    oc=oc.name,
                    setting=setting,
                    gpu=self.sim.spec.name,
                    time_ms=t,
                )
            )
        if not measurements:
            return None, []
        best = min(measurements, key=lambda m: m.time_ms)
        best_setting, best_time = best.setting, best.time_ms
        if self.refine:
            # Basin-covering multi-start: the landscape's major basins are
            # indexed by the discrete mode switches (shared memory on/off,
            # stream axis, temporal degree); coordinate descent from the
            # best sample of each basin makes the per-OC optimum nearly
            # independent of sampling luck, so best-OC labels reflect the
            # stencil rather than the seed.
            basins: dict[tuple[int, int, int], Measurement] = {}
            for meas in measurements:
                key = (
                    meas.setting["use_smem"],
                    meas.setting["stream_dim"],
                    meas.setting["temporal_steps"],
                )
                cur = basins.get(key)
                if cur is None or meas.time_ms < cur.time_ms:
                    basins[key] = cur = meas
            for start in sorted(basins.values(), key=lambda m: m.time_ms):
                if start.time_ms > 4.0 * best_time:
                    continue  # hopeless basin; descent cannot recover 4x
                setting, t, extra = self._coordinate_descent(
                    stencil, stencil_id, oc, start.setting, start.time_ms, seen
                )
                measurements.extend(extra)
                if t < best_time:
                    best_setting, best_time = setting, t
        result = OCResult(
            oc=oc.name,
            best_setting=best_setting,
            best_time_ms=best_time,
            n_settings=len(measurements),
            crashed=crashed,
        )
        return result, measurements

    def _coordinate_descent(
        self,
        stencil: Stencil,
        stencil_id: int,
        oc: OC,
        setting: ParamSetting,
        time_ms: float,
        seen: set[tuple[int, ...]],
    ) -> tuple[ParamSetting, float, list[Measurement]]:
        """Polish *setting* one parameter at a time until a fixed point."""
        extra: list[Measurement] = []
        names = relevant_params(oc, stencil.ndim)
        for _ in range(_REFINE_PASSES):
            improved = False
            for name in names:
                for value in _choices_for(name, stencil.ndim):
                    if setting[name] == value:
                        continue
                    candidate = setting.replace(**{name: value})
                    key = candidate.as_tuple()
                    try:
                        t = self.sim.time(stencil, oc, candidate)
                    except KernelLaunchError:
                        continue
                    if key not in seen:
                        seen.add(key)
                        extra.append(
                            Measurement(
                                stencil_id=stencil_id,
                                oc=oc.name,
                                setting=candidate,
                                gpu=self.sim.spec.name,
                                time_ms=t,
                            )
                        )
                    if t < time_ms:
                        setting, time_ms = candidate, t
                        improved = True
            if not improved:
                break
        return setting, time_ms, extra

    # ------------------------------------------------------------------
    def profile_stencil(
        self,
        stencil: Stencil,
        stencil_id: int,
        ocs: "tuple[OC, ...] | list[OC]" = ALL_OCS,
    ) -> StencilProfile:
        """Profile *stencil* under every OC in *ocs* on this GPU."""
        profile = StencilProfile(
            stencil=stencil, stencil_id=stencil_id, gpu=self.sim.spec.name
        )
        for oc in ocs:
            result, ms = self.tune_oc(stencil, stencil_id, oc)
            if result is not None:
                profile.oc_results[oc.name] = result
                profile.measurements.extend(ms)
        return profile
