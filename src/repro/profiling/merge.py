"""PCC-based OC merging (Sections III-C and IV-D).

Pairs of OCs whose best-setting times correlate strongly across stencils
behave interchangeably, so predicting between them is noise.  StencilMART
computes the Pearson correlation coefficient (PCC) of every OC pair per
GPU, keeps the pairs that rank in the top-K on *every* GPU (the paper finds
this intersection is ~28% of the top-100), and merges those pairs with
union-find until the requested number of classes remains.  Each class is
represented by the member OC that wins the most stencils (Fig. 2), and that
representative is what the classifier learns to predict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import N_MERGED_CLASSES
from ..errors import DatasetError
from .profiler import ProfileCampaign


def oc_time_matrix(
    campaign: ProfileCampaign, gpu: str
) -> tuple[list[str], np.ndarray]:
    """Best-time matrix ``(n_ocs, n_stencils)`` in log2 milliseconds.

    Entries are NaN where the OC crashed for that stencil.  Times are
    log-transformed so the PCC measures proportional co-variation rather
    than being dominated by the slowest stencils.
    """
    names = [oc.name for oc in campaign.ocs]
    n_ocs, n_st = len(names), len(campaign.stencils)
    m = np.full((n_ocs, n_st), np.nan)
    for j, profile in enumerate(campaign.profiles[gpu]):
        for i, name in enumerate(names):
            r = profile.oc_results.get(name)
            if r is not None:
                m[i, j] = np.log2(r.best_time_ms)
    return names, m


def pairwise_pcc(matrix: np.ndarray, min_common: int = 4) -> np.ndarray:
    """Pairwise PCC between matrix rows over their common valid columns.

    Returns a symmetric ``(n, n)`` array with NaN on the diagonal and for
    pairs with fewer than *min_common* jointly valid stencils.
    """
    n = matrix.shape[0]
    out = np.full((n, n), np.nan)
    for i in range(n):
        for j in range(i + 1, n):
            mask = ~np.isnan(matrix[i]) & ~np.isnan(matrix[j])
            if mask.sum() < min_common:
                continue
            a, b = matrix[i, mask], matrix[j, mask]
            sa, sb = a.std(), b.std()
            if sa == 0 or sb == 0:
                pcc = 1.0 if np.allclose(a - a.mean(), b - b.mean()) else 0.0
            else:
                pcc = float(np.corrcoef(a, b)[0, 1])
            out[i, j] = out[j, i] = pcc
    return out


def top_pairs(pcc: np.ndarray, k: int) -> list[tuple[int, int, float]]:
    """The *k* OC pairs with the largest |PCC|, strongest first."""
    n = pcc.shape[0]
    pairs = [
        (i, j, float(pcc[i, j]))
        for i in range(n)
        for j in range(i + 1, n)
        if not np.isnan(pcc[i, j])
    ]
    pairs.sort(key=lambda p: (-abs(p[2]), p[0], p[1]))
    return pairs[:k]


def pcc_intersection(
    per_gpu_pairs: dict[str, list[tuple[int, int, float]]],
) -> set[tuple[int, int]]:
    """Pairs present in the top-K list of every GPU (Fig. 3's 28%)."""
    sets = [
        {(i, j) for i, j, _ in pairs} for pairs in per_gpu_pairs.values()
    ]
    common = set.intersection(*sets) if sets else set()
    return common


@dataclass
class OCGrouping:
    """The result of PCC-based OC merging.

    ``class_of[oc_name]`` maps every OC to its class index in
    ``[0, n_classes)``; ``representatives[c]`` is the OC the classifier
    predicts for class ``c``; ``groups[c]`` lists all member OC names.
    """

    groups: list[list[str]]
    representatives: list[str]
    class_of: dict[str, int]

    @property
    def n_classes(self) -> int:
        return len(self.groups)

    def label(self, oc_name: str) -> int:
        """Class index of an OC name."""
        try:
            return self.class_of[oc_name]
        except KeyError:
            raise DatasetError(f"OC {oc_name!r} not in grouping") from None


def oc_win_counts(campaign: ProfileCampaign) -> dict[str, int]:
    """How many (stencil, GPU) cases each OC wins (Fig. 2's bar heights)."""
    wins = {oc.name: 0 for oc in campaign.ocs}
    for gpu in campaign.gpus:
        for p in campaign.profiles[gpu]:
            if p.oc_results:
                wins[p.best_oc] += 1
    return wins


def merge_ocs(
    campaign: ProfileCampaign,
    n_classes: int = N_MERGED_CLASSES,
    top_k: int = 100,
    diversity: float = 0.75,
) -> OCGrouping:
    """Merge the campaign's OCs down to *n_classes* prediction targets.

    Following Section IV-D, each final class is anchored by one of the
    ``n_classes`` OCs that "obtain the best performance under more cases"
    (Fig. 2); every remaining OC joins the anchor it correlates with most
    strongly (mean |PCC| across GPUs, restricted to pairs that appear in
    the cross-GPU top-K intersection first).  Anchoring -- rather than raw
    union-find over top pairs -- keeps every class populated: transitive
    chaining would otherwise collapse the strongly-correlated OC space
    into one giant group and starve the classifier of labels ("each class
    must contain sufficient data objects").

    ``diversity`` rejects an anchor candidate whose mean |PCC| with an
    already-chosen anchor exceeds the threshold, so the classes represent
    genuinely different optimization mechanisms rather than five flavors
    of the same streaming pipeline ("the StencilMART avoids jumping among
    OCs with similar performance, which ... interferes with prediction
    results").  When too few candidates pass, the threshold is relaxed.
    """
    names = [oc.name for oc in campaign.ocs]
    n = len(names)
    if n_classes < 1 or n_classes > n:
        raise DatasetError(f"n_classes={n_classes} out of range for {n} OCs")

    per_gpu_pcc: dict[str, np.ndarray] = {}
    per_gpu_top: dict[str, list[tuple[int, int, float]]] = {}
    for gpu in campaign.gpus:
        _, m = oc_time_matrix(campaign, gpu)
        # Center each stencil's column so the PCC measures how OC pairs
        # deviate from the stencil's average, not the shared stencil-size
        # driver (which would make every pair look correlated).  Columns
        # where every OC crashed (quarantined stencils) stay all-NaN
        # without tripping nanmean's empty-slice warning.
        col_n = (~np.isnan(m)).sum(axis=0, keepdims=True)
        col_mean = np.where(
            col_n > 0, np.nansum(m, axis=0, keepdims=True) / np.maximum(col_n, 1), 0.0
        )
        centered = m - col_mean
        pcc = pairwise_pcc(centered)
        per_gpu_pcc[gpu] = pcc
        per_gpu_top[gpu] = top_pairs(pcc, top_k)

    stacked = np.stack(list(per_gpu_pcc.values()))
    counts = (~np.isnan(stacked)).sum(axis=0)
    sums = np.nansum(stacked, axis=0)
    # All-NaN positions (the diagonal, never-computed pairs) stay NaN
    # without tripping nanmean's empty-slice warning.
    mean_pcc = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    common = pcc_intersection(per_gpu_top)

    wins = oc_win_counts(campaign)
    # Anchors: the most-winning OCs, deterministically tie-broken by name,
    # filtered so no two anchors correlate above the diversity threshold.
    ranked = sorted(range(n), key=lambda i: (-wins[names[i]], names[i]))
    anchors: list[int] = []
    threshold = diversity
    while len(anchors) < n_classes:
        for i in ranked:
            if len(anchors) >= n_classes:
                break
            if i in anchors:
                continue
            correlated = any(
                not np.isnan(mean_pcc[i, a]) and abs(mean_pcc[i, a]) > threshold
                for a in anchors
            )
            if not correlated:
                anchors.append(i)
        threshold = min(1.01, threshold + 0.1)  # relax until filled

    def affinity(i: int, anchor: int) -> tuple[float, float]:
        """(intersection preference, |PCC|) of OC *i* toward *anchor*."""
        v = mean_pcc[i, anchor]
        strength = abs(v) if not np.isnan(v) else -1.0
        pair = (min(i, anchor), max(i, anchor))
        return (1.0 if pair in common else 0.0, strength)

    members: dict[int, list[int]] = {a: [a] for a in anchors}
    for i in range(n):
        if i in members:
            continue
        best_anchor = max(anchors, key=lambda a: (*affinity(i, a), -a))
        members[best_anchor].append(i)

    # Class order: anchors by wins, descending (class 0 = most common best).
    groups = [sorted(names[i] for i in members[a]) for a in anchors]
    representatives = [names[a] for a in anchors]
    class_of = {name: c for c, g in enumerate(groups) for name in g}
    return OCGrouping(groups=groups, representatives=representatives, class_of=class_of)
