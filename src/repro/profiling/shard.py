"""Worker-process side of the sharded campaign runner.

A shard is a contiguous slice of a campaign's pending (gpu, stencil)
units.  The parent :class:`~repro.profiling.runner.CampaignRunner` ships
the campaign config once per worker through the pool initializer
(:func:`_init_shard_worker`), then dispatches shards as small picklable
tasks; :func:`run_shard` executes each one with a **fresh** clock,
health ledger and per-GPU search stack built by the same
:func:`~repro.profiling.runner.build_search` /
:func:`~repro.profiling.runner.run_unit` code the sequential runner
uses.

Determinism: every unit derives its sampling streams from the campaign
seed and its own (gpu, stencil_id) identity, and fault draws are scoped
per unit (:meth:`~repro.gpu.faults.FaultInjector.begin_unit` resets the
attempt counters), so a unit computes the same profile no matter which
process runs it, in what order, after what history.  That is why the
parent can merge shard results into a campaign bit-identical to the
sequential one.

Fault tolerance: shards checkpoint their completed units atomically
every ``checkpoint_every`` units to a sibling file of the main
checkpoint (``<checkpoint>.shard-NNN``).  If the worker dies mid-shard,
the parent recovers everything up to the last shard checkpoint and
re-dispatches only the rest.  Profiles cross the process boundary as
:func:`~repro.profiling.storage.profile_to_row` rows -- the same schema
the main checkpoint uses -- so merge and resume share one codec.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..gpu.faults import FaultConfig
from ..optimizations.combos import OC_BY_NAME
from .storage import (
    FORMAT_VERSION,
    atomic_write_text,
    profile_to_row,
    stencil_from_dict,
)

#: Per-process campaign context, populated once by the pool initializer.
_CFG: "dict | None" = None

#: Exit status used by the worker-crash test hook; any nonzero status
#: breaks the pool the same way, the value just aids debugging.
CRASH_EXIT_CODE = 17


def _init_shard_worker(
    config_doc: dict, policy, checkpoint_every: int, transport: str = "shm"
) -> None:
    """Pool initializer: decode the campaign config once per worker.

    *config_doc* is the runner's ``_config_doc()`` -- already a plain
    JSON document, so it ships cheaply; stencils, OCs and the fault
    schedule are rebuilt here so tasks only need to carry unit ids.
    *transport* arrives as a separate initarg, deliberately outside the
    config doc: like workers/chunk_size it is execution plumbing, not
    campaign identity, so checkpoints written under one transport resume
    under the other.
    """
    global _CFG
    _CFG = {
        "config_doc": config_doc,
        "stencils": [stencil_from_dict(d) for d in config_doc["stencils"]],
        "ocs": tuple(OC_BY_NAME[name] for name in config_doc["ocs"]),
        "faults": FaultConfig.from_dict(config_doc["faults"]),
        "backend": config_doc["backend"],
        "sigma": float(config_doc["sigma"]),
        "seed": int(config_doc["seed"]),
        "n_settings": int(config_doc["n_settings"]),
        "transport": str(transport),
        "policy": policy,
        "checkpoint_every": int(checkpoint_every),
    }


def _write_shard_checkpoint(
    path: str, cfg: dict, rows: "dict[str, list]", health
) -> None:
    doc = {
        "format": FORMAT_VERSION,
        "kind": "campaign-shard",
        "config": cfg["config_doc"],
        "completed": {gpu: list(r) for gpu, r in rows.items() if r},
        "health": health.to_dict(),
    }
    atomic_write_text(Path(path), json.dumps(doc))


def run_shard(task: tuple) -> dict:
    """Execute one shard; the pool task function.

    *task* is ``(shard_index, units, crash_units, checkpoint_path)``
    where ``units`` is a list of (gpu, stencil_id) pairs and
    ``crash_units`` is the test hook's subset of units at which to kill
    this worker (normally empty).  Returns the completed profiles as
    storage rows plus this shard's health counters;
    ``units_completed``/``units_resumed`` stay zero -- unit bookkeeping
    belongs to the parent (see
    :meth:`~repro.profiling.runner.CampaignHealth.merge_dict`).
    """
    # Late import: runner imports this module inside _run_sharded, so a
    # top-level back-import would be circular in the parent process.
    from .runner import CampaignHealth, SimClock, build_search, run_unit

    assert _CFG is not None, "shard worker used before initialization"
    cfg = _CFG
    shard_idx, units, crash_units, ckpt_path = task
    crash = {(str(g), int(s)) for g, s in crash_units}
    clock = SimClock()
    health = CampaignHealth()
    searches: dict = {}
    rows: "dict[str, list]" = {}
    since = 0
    for gpu, sid in units:
        if (gpu, sid) in crash:
            os._exit(CRASH_EXIT_CODE)
        search = searches.get(gpu)
        if search is None:
            search = build_search(
                cfg["backend"], gpu, cfg["sigma"], cfg["faults"],
                cfg["seed"], cfg["n_settings"], cfg["policy"],
                clock, health, transport=cfg["transport"],
            )
            searches[gpu] = search
        profile = run_unit(
            search, gpu, cfg["stencils"][sid], sid, cfg["ocs"],
            cfg["policy"], clock, health,
        )
        rows.setdefault(gpu, []).append(profile_to_row(profile))
        since += 1
        if ckpt_path is not None and since >= cfg["checkpoint_every"]:
            _write_shard_checkpoint(ckpt_path, cfg, rows, health)
            since = 0
    if ckpt_path is not None and since:
        _write_shard_checkpoint(ckpt_path, cfg, rows, health)
    return {"shard": shard_idx, "completed": rows, "health": health.to_dict()}
