"""Directory-backed registry for versioned campaign datasets.

The paper's headline artifact is the profiling campaign itself (~65k
instances per GPU); at that scale the dataset deserves the same
publishing discipline the serving layer gives trained models: immutable
version files, an atomically-moved ``LATEST`` tag, and a checksum that
fails closed on corruption.  :class:`DatasetRegistry` mirrors the
:class:`~repro.serve.registry.ModelRegistry` layout::

    <root>/
        campaign-paper-2d/
            v000001.json
            v000002.json
            LATEST          # text file: "v000002"

Each version file is a **campaign-dataset document**: the ordinary
:func:`~repro.profiling.storage.campaign_to_dict` payload wrapped with a
BLAKE2b checksum over its canonical JSON encoding plus free-form
provenance metadata (host, worker count, wall time -- whatever the
producer records).  :func:`~repro.profiling.storage.load_campaign`
understands the wrapper directly, so ``repro train --campaign
<registry>/<name>/v000001.json`` -- or just the registry directory --
consumes a published dataset with no extra tooling.

This module deliberately does not import :mod:`repro.serve` (which
imports :mod:`repro.profiling` for its storage primitives); the small
canonical-JSON checksum idiom is restated here instead.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from pathlib import Path

from ..errors import DatasetError
from .profiler import ProfileCampaign
from .storage import (
    FORMAT_VERSION,
    atomic_write_text,
    campaign_from_dict,
    campaign_to_dict,
    check_format_version,
)

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{6})\.json$")
_LATEST = "LATEST"

#: ``kind`` field of the wrapper document.
DATASET_KIND = "campaign-dataset"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise DatasetError(
            f"bad dataset name {name!r}: use letters, digits, '.', '_', "
            f"'-' (no path separators)"
        )
    return name


def _canonical_json(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def checksum_campaign_doc(campaign_doc: dict) -> str:
    """BLAKE2b digest of a campaign payload's canonical JSON encoding."""
    return hashlib.blake2b(
        _canonical_json(campaign_doc), digest_size=16
    ).hexdigest()


def dataset_document(campaign: ProfileCampaign, meta: "dict | None" = None) -> dict:
    """Wrap a campaign as a checksummed dataset document."""
    campaign_doc = campaign_to_dict(campaign)
    return {
        "format": FORMAT_VERSION,
        "kind": DATASET_KIND,
        "meta": dict(meta or {}),
        "checksum": checksum_campaign_doc(campaign_doc),
        "campaign": campaign_doc,
    }


def unwrap_dataset_document(doc: dict) -> ProfileCampaign:
    """Verify and decode a campaign-dataset document.

    A flipped bit anywhere in the campaign payload -- or a truncated or
    hand-edited file -- fails closed with a :class:`DatasetError` naming
    both digests.
    """
    check_format_version(doc, "dataset")
    if doc.get("kind") != DATASET_KIND:
        raise DatasetError(f"not a campaign dataset: kind={doc.get('kind')!r}")
    campaign_doc = doc.get("campaign")
    if not isinstance(campaign_doc, dict):
        raise DatasetError("campaign dataset has no 'campaign' payload")
    expected = doc.get("checksum")
    actual = checksum_campaign_doc(campaign_doc)
    if expected != actual:
        raise DatasetError(
            f"campaign dataset checksum mismatch: document says "
            f"{expected!r}, payload hashes to {actual!r}"
        )
    return campaign_from_dict(campaign_doc)


class DatasetRegistry:
    """Publish/resolve/load versioned campaign datasets under one root."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Serializes in-process publishes (cross-process safety comes
        # from the atomic file moves, as in the model registry).
        self._publish_lock = threading.Lock()

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def names(self) -> "list[str]":
        """Dataset names with at least one published version."""
        return [
            p.name
            for p in sorted(self.root.iterdir())
            if p.is_dir() and self._versions_in(p)
        ]

    def versions(self, name: str) -> "list[str]":
        """Published versions of *name*, oldest first (e.g. ``v000001``)."""
        d = self.root / _check_name(name)
        if not d.is_dir():
            raise DatasetError(f"no dataset named {name!r} in {self.root}")
        return self._versions_in(d)

    @staticmethod
    def _versions_in(d: Path) -> "list[str]":
        found = []
        for p in d.iterdir():
            m = _VERSION_RE.match(p.name)
            if m:
                found.append(f"v{m.group(1)}")
        return sorted(found)

    def latest(self, name: str) -> str:
        """The version the ``LATEST`` tag points at (fails closed)."""
        d = self.root / _check_name(name)
        tag = d / _LATEST
        versions = self.versions(name)
        if tag.exists():
            try:
                v = tag.read_text().strip()
            except OSError as e:
                raise DatasetError(f"{name}: cannot read LATEST tag: {e}") from None
            if v in versions:
                return v
            raise DatasetError(
                f"{name}: LATEST tag points at {v!r} but published "
                f"versions are {versions} (torn tag, or the version "
                f"file was deleted)"
            )
        if not versions:
            raise DatasetError(f"{name}: no published versions in {self.root}")
        return versions[-1]

    # ------------------------------------------------------------------
    # publish / load
    # ------------------------------------------------------------------
    def publish(
        self, campaign: ProfileCampaign, name: str, meta: "dict | None" = None
    ) -> str:
        """Write *campaign* as the next version of *name*; returns it.

        The immutable version file lands first, the ``LATEST`` tag
        second; both moves are atomic, so a crash between them leaves a
        fully valid registry.
        """
        d = self.root / _check_name(name)
        d.mkdir(parents=True, exist_ok=True)
        doc = dataset_document(campaign, meta)
        with self._publish_lock:
            existing = self._versions_in(d)
            next_num = 1 + (int(existing[-1][1:]) if existing else 0)
            version = f"v{next_num:06d}"
            atomic_write_text(d / f"{version}.json", json.dumps(doc))
            atomic_write_text(d / _LATEST, version + "\n")
        return version

    def path(self, name: str, version: "str | None" = None) -> Path:
        """Filesystem path of a published dataset document."""
        version = version or self.latest(name)
        p = self.root / _check_name(name) / f"{version}.json"
        if not p.exists():
            raise DatasetError(
                f"{name}@{version} not found in {self.root} "
                f"(published: {self.versions(name)})"
            )
        return p

    def meta(self, name: str, version: "str | None" = None) -> dict:
        """Provenance metadata of ``name@version`` (default latest)."""
        doc = json.loads(self.path(name, version).read_text())
        return dict(doc.get("meta") or {})

    def load(self, name: str, version: "str | None" = None) -> ProfileCampaign:
        """Load and checksum-verify ``name@version`` (default latest)."""
        return unwrap_dataset_document(
            json.loads(self.path(name, version).read_text())
        )


def resolve_dataset_path(path: "str | Path") -> Path:
    """Resolve a campaign argument that may point into a registry.

    Accepts, in order of specificity: a dataset document (or plain
    campaign) file, a registry *dataset directory* (``<root>/<name>`` --
    resolves its latest version), or a registry root containing exactly
    one dataset.  This is what lets ``repro train --campaign`` consume
    a published dataset directly.
    """
    p = Path(path)
    if p.is_file():
        return p
    if p.is_dir():
        if DatasetRegistry._versions_in(p):
            reg = DatasetRegistry(p.parent)
            return reg.path(p.name)
        reg = DatasetRegistry(p)
        names = reg.names()
        if len(names) == 1:
            return reg.path(names[0])
        raise DatasetError(
            f"{p} is not a dataset: expected a campaign file, a registry "
            f"dataset directory, or a registry root with exactly one "
            f"dataset (found {names or 'none'})"
        )
    raise DatasetError(f"no such campaign file or dataset directory: {p}")
