"""Multi-GPU profiling campaigns over stencil populations.

A :class:`ProfileCampaign` is the "stencil dataset" of Section IV-A: every
stencil in a population is profiled under every OC on every GPU.  It is the
single source the motivation figures, the classification dataset and the
regression dataset are all derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DEFAULT_SEED
from ..errors import DatasetError
from ..gpu.simulator import GPUSimulator
from ..gpu.specs import GPU_ORDER
from ..optimizations.combos import ALL_OCS, OC
from ..stencil.stencil import Stencil
from .records import Measurement, StencilProfile
from .search import RandomSearch


@dataclass
class ProfileCampaign:
    """Profiles for a stencil population across GPUs.

    ``profiles[gpu][stencil_id]`` is the :class:`StencilProfile` of that
    stencil on that GPU; stencil ids index into ``stencils``.
    """

    stencils: list[Stencil]
    gpus: tuple[str, ...]
    ocs: tuple[OC, ...]
    n_settings: int
    seed: int
    profiles: dict[str, list[StencilProfile]] = field(default_factory=dict)

    @property
    def ndim(self) -> int:
        return self.stencils[0].ndim

    def profile(self, gpu: str, stencil_id: int) -> StencilProfile:
        """The profile of one stencil on one GPU."""
        return self.profiles[gpu][stencil_id]

    def measurements(self, gpu: str) -> list[Measurement]:
        """All raw measurements collected on *gpu*, in stencil order."""
        out: list[Measurement] = []
        for p in self.profiles[gpu]:
            out.extend(p.measurements)
        return out

    def best_oc_labels(self, gpu: str) -> list[str]:
        """Best OC name per stencil on *gpu* (classification raw labels)."""
        return [p.best_oc for p in self.profiles[gpu]]


def run_campaign(
    stencils: list[Stencil],
    gpus: "tuple[str, ...] | list[str]" = GPU_ORDER,
    ocs: "tuple[OC, ...] | list[OC]" = ALL_OCS,
    n_settings: int = 8,
    seed: int = DEFAULT_SEED,
    sigma: float = 0.03,
) -> ProfileCampaign:
    """Profile *stencils* under *ocs* on every GPU in *gpus*.

    Deterministic for a given seed: the per-(stencil, OC) sampling streams
    are derived from ``seed`` independently of iteration order.
    """
    if not stencils:
        raise DatasetError("empty stencil population")
    ndims = {s.ndim for s in stencils}
    if len(ndims) != 1:
        raise DatasetError(f"mixed dimensionalities in campaign: {sorted(ndims)}")
    campaign = ProfileCampaign(
        stencils=list(stencils),
        gpus=tuple(gpus),
        ocs=tuple(ocs),
        n_settings=n_settings,
        seed=seed,
    )
    for gpu in campaign.gpus:
        search = RandomSearch(GPUSimulator(gpu, sigma=sigma), n_settings, seed)
        campaign.profiles[gpu] = [
            search.profile_stencil(s, i, campaign.ocs)
            for i, s in enumerate(campaign.stencils)
        ]
    return campaign
