"""Multi-GPU profiling campaigns over stencil populations.

A :class:`ProfileCampaign` is the "stencil dataset" of Section IV-A: every
stencil in a population is profiled under every OC on every GPU.  It is the
single source the motivation figures, the classification dataset and the
regression dataset are all derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DEFAULT_SEED
from ..errors import DatasetError
from ..gpu.specs import GPU_ORDER
from ..optimizations.combos import ALL_OCS, OC
from ..stencil.stencil import Stencil
from .records import Measurement, StencilProfile


@dataclass
class ProfileCampaign:
    """Profiles for a stencil population across GPUs.

    ``profiles[gpu][stencil_id]`` is the :class:`StencilProfile` of that
    stencil on that GPU; stencil ids index into ``stencils``.
    """

    stencils: list[Stencil]
    gpus: tuple[str, ...]
    ocs: tuple[OC, ...]
    n_settings: int
    seed: int
    profiles: dict[str, list[StencilProfile]] = field(default_factory=dict)

    @property
    def ndim(self) -> int:
        return self.stencils[0].ndim

    def gpu_profiles(self, gpu: str) -> list[StencilProfile]:
        """All profiles on *gpu*; :class:`DatasetError` on an unknown key."""
        try:
            return self.profiles[gpu]
        except KeyError:
            available = ", ".join(sorted(self.profiles)) or "none"
            raise DatasetError(
                f"no profiles for GPU {gpu!r}; campaign has: {available}"
            ) from None

    def profile(self, gpu: str, stencil_id: int) -> StencilProfile:
        """The profile of one stencil on one GPU."""
        return self.gpu_profiles(gpu)[stencil_id]

    def measurements(self, gpu: str) -> list[Measurement]:
        """All raw measurements collected on *gpu*, in stencil order."""
        out: list[Measurement] = []
        for p in self.gpu_profiles(gpu):
            out.extend(p.measurements)
        return out

    def best_oc_labels(self, gpu: str) -> list[str]:
        """Best OC name per stencil on *gpu* (classification raw labels)."""
        return [p.best_oc for p in self.gpu_profiles(gpu)]


def run_campaign(
    stencils: list[Stencil],
    gpus: "tuple[str, ...] | list[str]" = GPU_ORDER,
    ocs: "tuple[OC, ...] | list[OC]" = ALL_OCS,
    n_settings: int = 8,
    seed: int = DEFAULT_SEED,
    sigma: float = 0.03,
    **runner_kwargs,
) -> ProfileCampaign:
    """Profile *stencils* under *ocs* on every GPU in *gpus*.

    Deterministic for a given seed: the per-(stencil, OC) sampling streams
    are derived from ``seed`` independently of iteration order.

    This is a thin wrapper over
    :class:`~repro.profiling.runner.CampaignRunner`; extra keyword
    arguments (``backend``, ``faults``, ``policy``, ``checkpoint_path``,
    ...) pass through to it, and ``resume=True`` continues from an
    existing checkpoint.  ``backend="vector"`` (or ``"cached"``) runs the
    campaign on the batched evaluation engine's vectorized substrate (see
    :mod:`repro.engine`).
    """
    from .runner import CampaignRunner  # local import: runner imports us

    resume = bool(runner_kwargs.pop("resume", False))
    runner = CampaignRunner(
        stencils,
        gpus=gpus,
        ocs=ocs,
        n_settings=n_settings,
        seed=seed,
        sigma=sigma,
        **runner_kwargs,
    )
    return runner.run(resume=resume)
