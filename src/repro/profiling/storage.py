"""Persistence for stencil populations and profiling campaigns.

Profiling campaigns are the expensive artifact of the pipeline (the paper
collects ~65k/76k instances per GPU); this module serializes them to a
single JSON document so training runs and notebooks can reload them
without re-simulating.  JSON keeps the format inspectable and
diff-friendly; measurement volume at reproduction scale stays well within
what the text codec handles comfortably.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import DatasetError
from ..optimizations.combos import OC_BY_NAME
from ..optimizations.params import PARAM_NAMES, ParamSetting
from ..stencil.stencil import Stencil
from .profiler import ProfileCampaign
from .records import Measurement, OCResult, StencilProfile

#: Format version written into every document.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# stencil (de)serialization
# ----------------------------------------------------------------------
def stencil_to_dict(stencil: Stencil) -> dict:
    """JSON-ready description of a stencil."""
    return {
        "ndim": stencil.ndim,
        "name": stencil.name,
        "offsets": [list(p) for p in stencil.sorted_offsets],
    }


def stencil_from_dict(doc: dict) -> Stencil:
    """Inverse of :func:`stencil_to_dict`."""
    try:
        return Stencil(
            ndim=int(doc["ndim"]),
            offsets=frozenset(tuple(p) for p in doc["offsets"]),
            name=str(doc.get("name", "")),
        )
    except KeyError as e:
        raise DatasetError(f"malformed stencil document: missing {e}") from None


# ----------------------------------------------------------------------
# setting (de)serialization
# ----------------------------------------------------------------------
def _setting_to_list(setting: ParamSetting) -> list[int]:
    return list(setting.as_tuple())


def _setting_from_list(values: list[int]) -> ParamSetting:
    if len(values) != len(PARAM_NAMES):
        raise DatasetError(
            f"setting vector has {len(values)} entries, expected {len(PARAM_NAMES)}"
        )
    return ParamSetting(**dict(zip(PARAM_NAMES, values)))


# ----------------------------------------------------------------------
# campaign (de)serialization
# ----------------------------------------------------------------------
def campaign_to_dict(campaign: ProfileCampaign) -> dict:
    """JSON-ready description of a full profiling campaign."""
    doc = {
        "format": FORMAT_VERSION,
        "gpus": list(campaign.gpus),
        "ocs": [oc.name for oc in campaign.ocs],
        "n_settings": campaign.n_settings,
        "seed": campaign.seed,
        "stencils": [stencil_to_dict(s) for s in campaign.stencils],
        "profiles": {},
    }
    for gpu, profiles in campaign.profiles.items():
        rows = []
        for p in profiles:
            rows.append(
                {
                    "stencil_id": p.stencil_id,
                    "oc_results": {
                        name: {
                            "setting": _setting_to_list(r.best_setting),
                            "time_ms": r.best_time_ms,
                            "n_settings": r.n_settings,
                            "crashed": r.crashed,
                        }
                        for name, r in p.oc_results.items()
                    },
                    "measurements": [
                        [m.oc, _setting_to_list(m.setting), m.time_ms]
                        for m in p.measurements
                    ],
                }
            )
        doc["profiles"][gpu] = rows
    return doc


def campaign_from_dict(doc: dict) -> ProfileCampaign:
    """Inverse of :func:`campaign_to_dict`."""
    if doc.get("format") != FORMAT_VERSION:
        raise DatasetError(f"unsupported campaign format: {doc.get('format')!r}")
    stencils = [stencil_from_dict(d) for d in doc["stencils"]]
    try:
        ocs = tuple(OC_BY_NAME[name] for name in doc["ocs"])
    except KeyError as e:
        raise DatasetError(f"unknown OC in document: {e}") from None
    campaign = ProfileCampaign(
        stencils=stencils,
        gpus=tuple(doc["gpus"]),
        ocs=ocs,
        n_settings=int(doc["n_settings"]),
        seed=int(doc["seed"]),
    )
    for gpu, rows in doc["profiles"].items():
        profiles = []
        for row in rows:
            sid = int(row["stencil_id"])
            profile = StencilProfile(
                stencil=stencils[sid], stencil_id=sid, gpu=gpu
            )
            for name, r in row["oc_results"].items():
                profile.oc_results[name] = OCResult(
                    oc=name,
                    best_setting=_setting_from_list(r["setting"]),
                    best_time_ms=float(r["time_ms"]),
                    n_settings=int(r["n_settings"]),
                    crashed=int(r["crashed"]),
                )
            for oc_name, values, t in row["measurements"]:
                profile.measurements.append(
                    Measurement(
                        stencil_id=sid,
                        oc=oc_name,
                        setting=_setting_from_list(values),
                        gpu=gpu,
                        time_ms=float(t),
                    )
                )
            profiles.append(profile)
        campaign.profiles[gpu] = profiles
    return campaign


def save_campaign(campaign: ProfileCampaign, path: "str | Path") -> None:
    """Write a campaign to *path* as JSON."""
    Path(path).write_text(json.dumps(campaign_to_dict(campaign)))


def load_campaign(path: "str | Path") -> ProfileCampaign:
    """Read a campaign previously written by :func:`save_campaign`."""
    return campaign_from_dict(json.loads(Path(path).read_text()))
