"""Persistence for stencil populations and profiling campaigns.

Profiling campaigns are the expensive artifact of the pipeline (the paper
collects ~65k/76k instances per GPU); this module serializes them to a
single JSON document so training runs and notebooks can reload them
without re-simulating.  JSON keeps the format inspectable and
diff-friendly; measurement volume at reproduction scale stays well within
what the text codec handles comfortably.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..errors import DatasetError
from ..optimizations.combos import OC_BY_NAME
from ..optimizations.params import PARAM_NAMES, ParamSetting
from ..stencil.stencil import Stencil
from .profiler import ProfileCampaign
from .records import Measurement, OCResult, StencilProfile

#: Format version written into every document.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# crash-safe writes
# ----------------------------------------------------------------------
def atomic_write_text(path: "str | Path", text: str) -> None:
    """Write *text* to *path* without ever exposing a partial file.

    The content goes to a temporary file in the same directory (so the
    final rename never crosses a filesystem boundary) and is moved into
    place with :func:`os.replace`, which is atomic on POSIX and Windows.
    An interrupt mid-write leaves either the previous document or nothing
    -- never a truncated JSON body.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def check_format_version(doc: dict, kind: str = "campaign") -> None:
    """Validate a document's ``format`` field against :data:`FORMAT_VERSION`.

    Documents written by a *newer* library version get a distinct,
    actionable message instead of best-effort parsing that would fail in
    some arbitrary field deeper down.
    """
    fmt = doc.get("format")
    if isinstance(fmt, int) and fmt > FORMAT_VERSION:
        raise DatasetError(
            f"{kind} document has format_version {fmt}, newer than the "
            f"supported FORMAT_VERSION {FORMAT_VERSION}; upgrade the "
            f"library to read it"
        )
    if fmt != FORMAT_VERSION:
        raise DatasetError(f"unsupported {kind} format: {fmt!r}")


# ----------------------------------------------------------------------
# stencil (de)serialization
# ----------------------------------------------------------------------
def stencil_to_dict(stencil: Stencil) -> dict:
    """JSON-ready description of a stencil."""
    return {
        "ndim": stencil.ndim,
        "name": stencil.name,
        "offsets": [list(p) for p in stencil.sorted_offsets],
    }


def stencil_from_dict(doc: dict) -> Stencil:
    """Inverse of :func:`stencil_to_dict`."""
    try:
        return Stencil(
            ndim=int(doc["ndim"]),
            offsets=frozenset(tuple(p) for p in doc["offsets"]),
            name=str(doc.get("name", "")),
        )
    except KeyError as e:
        raise DatasetError(f"malformed stencil document: missing {e}") from None


# ----------------------------------------------------------------------
# setting (de)serialization
# ----------------------------------------------------------------------
def _setting_to_list(setting: ParamSetting) -> list[int]:
    return list(setting.as_tuple())


def _setting_from_list(values: list[int]) -> ParamSetting:
    if len(values) != len(PARAM_NAMES):
        raise DatasetError(
            f"setting vector has {len(values)} entries, expected {len(PARAM_NAMES)}"
        )
    return ParamSetting(**dict(zip(PARAM_NAMES, values)))


# ----------------------------------------------------------------------
# profile-row (de)serialization -- shared by campaigns and checkpoints
# ----------------------------------------------------------------------
def profile_to_row(profile: StencilProfile) -> dict:
    """JSON-ready description of one stencil's results on one GPU."""
    return {
        "stencil_id": profile.stencil_id,
        "oc_results": {
            name: {
                "setting": _setting_to_list(r.best_setting),
                "time_ms": r.best_time_ms,
                "n_settings": r.n_settings,
                "crashed": r.crashed,
            }
            for name, r in profile.oc_results.items()
        },
        "measurements": [
            [m.oc, _setting_to_list(m.setting), m.time_ms]
            for m in profile.measurements
        ],
    }


def profile_from_row(row: dict, stencil: Stencil, gpu: str) -> StencilProfile:
    """Inverse of :func:`profile_to_row`."""
    sid = int(row["stencil_id"])
    profile = StencilProfile(stencil=stencil, stencil_id=sid, gpu=gpu)
    for name, r in row["oc_results"].items():
        profile.oc_results[name] = OCResult(
            oc=name,
            best_setting=_setting_from_list(r["setting"]),
            best_time_ms=float(r["time_ms"]),
            n_settings=int(r["n_settings"]),
            crashed=int(r["crashed"]),
        )
    for oc_name, values, t in row["measurements"]:
        profile.measurements.append(
            Measurement(
                stencil_id=sid,
                oc=oc_name,
                setting=_setting_from_list(values),
                gpu=gpu,
                time_ms=float(t),
            )
        )
    return profile


# ----------------------------------------------------------------------
# campaign (de)serialization
# ----------------------------------------------------------------------
def campaign_to_dict(campaign: ProfileCampaign) -> dict:
    """JSON-ready description of a full profiling campaign."""
    return {
        "format": FORMAT_VERSION,
        "gpus": list(campaign.gpus),
        "ocs": [oc.name for oc in campaign.ocs],
        "n_settings": campaign.n_settings,
        "seed": campaign.seed,
        "stencils": [stencil_to_dict(s) for s in campaign.stencils],
        "profiles": {
            gpu: [profile_to_row(p) for p in profiles]
            for gpu, profiles in campaign.profiles.items()
        },
    }


def campaign_from_dict(doc: dict) -> ProfileCampaign:
    """Inverse of :func:`campaign_to_dict`."""
    check_format_version(doc, "campaign")
    stencils = [stencil_from_dict(d) for d in doc["stencils"]]
    try:
        ocs = tuple(OC_BY_NAME[name] for name in doc["ocs"])
    except KeyError as e:
        raise DatasetError(f"unknown OC in document: {e}") from None
    campaign = ProfileCampaign(
        stencils=stencils,
        gpus=tuple(doc["gpus"]),
        ocs=ocs,
        n_settings=int(doc["n_settings"]),
        seed=int(doc["seed"]),
    )
    for gpu, rows in doc["profiles"].items():
        campaign.profiles[gpu] = [
            profile_from_row(row, stencils[int(row["stencil_id"])], gpu)
            for row in rows
        ]
    return campaign


def save_campaign(campaign: ProfileCampaign, path: "str | Path") -> None:
    """Write a campaign to *path* as JSON (atomically; see
    :func:`atomic_write_text`)."""
    atomic_write_text(path, json.dumps(campaign_to_dict(campaign)))


def load_campaign(path: "str | Path") -> ProfileCampaign:
    """Read a campaign written by :func:`save_campaign` -- or a published
    campaign-dataset document (checksum-verified; see
    :mod:`repro.profiling.registry`)."""
    doc = json.loads(Path(path).read_text())
    if isinstance(doc, dict) and doc.get("kind") == "campaign-dataset":
        from .registry import unwrap_dataset_document

        return unwrap_dataset_document(doc)
    return campaign_from_dict(doc)
