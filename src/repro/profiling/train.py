"""Train-from-campaign entry points producing serve artifacts.

A profiling campaign is the expensive input; these helpers turn one
into the *persisted* output the serving stack consumes: a trained
selector or predictor wrapped as a checksummed
:class:`~repro.serve.artifacts.ModelArtifact`, ready to publish into a
:class:`~repro.serve.registry.ModelRegistry`.

They are the factorization of what ``StencilMART.fit_selector`` /
``fit_predictor`` do in-memory, with provenance (campaign shape, seed,
dataset sizes) recorded in the artifact's ``meta`` so a served model
can always be traced back to its training run.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_SEED, MAX_ORDER, N_MERGED_CLASSES
from ..ml.analytical import AnalyticalPredictor, AnalyticalSelector
from ..ml.preprocess import LogTimeTransform, augment_features
from .dataset import analytical_feature_matrix, build_classification_dataset, build_regression_dataset
from .merge import merge_ocs
from .profiler import ProfileCampaign

#: Selector methods that consume assignment tensors instead of features.
_TENSOR_METHODS = {"convnet", "fcnet"}


def _campaign_meta(campaign: ProfileCampaign) -> dict:
    return {
        "campaign_gpus": list(campaign.gpus),
        "campaign_stencils": len(campaign.stencils),
        "campaign_n_settings": campaign.n_settings,
        "campaign_seed": campaign.seed,
    }


def train_selector_artifact(
    campaign: ProfileCampaign,
    gpu: str,
    method: str = "gbdt",
    n_classes: int = N_MERGED_CLASSES,
    max_order: int = MAX_ORDER,
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    **hyper,
):
    """Train an OC-selection model on *campaign* and wrap it.

    The artifact records the merged-class representative OCs, so serving
    needs neither the campaign nor the grouping -- the classifier's
    class indices decode locally.
    """
    from ..core.framework import make_classifier
    from ..serve.artifacts import ModelArtifact

    if method == "analytical":
        # No training: the selector ranks candidates with the static
        # performance model.  Representatives are the candidate OC names
        # themselves, so serve-side class decoding works unchanged.
        candidates = tuple(oc.name for oc in campaign.ocs)
        model = AnalyticalSelector(
            candidates=candidates,
            n_settings=int(hyper.pop("n_settings", 2)),
            seed=seed,
            **hyper,
        )
        return ModelArtifact(
            kind="selector",
            method="analytical",
            ndim=campaign.stencils[0].ndim,
            gpu=gpu,
            max_order=max_order,
            representatives=list(candidates),
            model=model,
            meta={**_campaign_meta(campaign), "train_rows": 0},
        )

    grouping = merge_ocs(campaign, n_classes=n_classes)
    ds = build_classification_dataset(campaign, grouping, gpu, max_order)
    if method in _TENSOR_METHODS:
        X = ds.tensors
    else:
        X = ds.features
        hyper.setdefault("workers", workers)
    model = make_classifier(method, ds.n_classes, seed, **hyper)
    model.fit(X, ds.labels)
    ndim = campaign.stencils[0].ndim
    meta = {
        **_campaign_meta(campaign),
        "train_rows": int(ds.n_samples),
        "skipped_stencils": list(ds.skipped_stencils),
    }
    return ModelArtifact(
        kind="selector",
        method=method,
        ndim=ndim,
        gpu=gpu,
        max_order=max_order,
        representatives=list(grouping.representatives),
        model=model,
        meta=meta,
    )


def train_predictor_artifact(
    campaign: ProfileCampaign,
    gpus: "tuple[str, ...] | None" = None,
    method: str = "gbr",
    max_order: int = MAX_ORDER,
    seed: int = DEFAULT_SEED,
    max_rows: "int | None" = None,
    **hyper,
):
    """Train a cross-architecture time predictor on *campaign*.

    ``max_rows`` deterministically subsamples the instance set the same
    way ``StencilMART.fit_predictor`` does, to bound CPU-only training
    time at large campaign scales.
    """
    from ..core.framework import make_regressor
    from ..serve.artifacts import ModelArtifact

    if method == "analytical":
        # No training: the predictor estimates from generated source.
        model = AnalyticalPredictor(**hyper)
        return ModelArtifact(
            kind="predictor",
            method="analytical",
            ndim=campaign.stencils[0].ndim,
            gpu=None,
            max_order=max_order,
            model=model,
            meta={**_campaign_meta(campaign), "train_rows": 0,
                  "train_gpus": list(gpus) if gpus is not None else list(campaign.gpus)},
        )
    ds = build_regression_dataset(campaign, gpus, max_order)
    if max_rows is not None and ds.n_samples > max_rows:
        rng = np.random.default_rng(seed)
        rows = np.sort(rng.choice(ds.n_samples, size=max_rows, replace=False))
    else:
        rows = np.arange(ds.n_samples)
    model = make_regressor(method, seed, **hyper)
    if method == "convmlp":
        model.fit(ds.tensors[rows], ds.aux[rows], ds.times_ms[rows])
    elif method == "hybrid":
        X = augment_features(ds.features, analytical_feature_matrix(campaign, ds))
        model.fit(X[rows], LogTimeTransform.forward(ds.times_ms[rows]))
    elif method == "gbr":
        model.fit(
            ds.features[rows], LogTimeTransform.forward(ds.times_ms[rows])
        )
    else:
        model.fit(ds.features[rows], ds.times_ms[rows])
    ndim = campaign.stencils[0].ndim
    meta = {
        **_campaign_meta(campaign),
        "train_rows": int(rows.shape[0]),
        "train_gpus": list(gpus) if gpus is not None else list(campaign.gpus),
    }
    return ModelArtifact(
        kind="predictor",
        method=method,
        ndim=ndim,
        gpu=None,
        max_order=max_order,
        model=model,
        meta=meta,
    )
