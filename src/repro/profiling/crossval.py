"""K-fold cross-validation utilities (Section V-A3).

The paper evaluates every model with 5-fold cross validation: the dataset
is shuffled into five folds; each fold serves once as the test set with the
other four as training data.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import DatasetError


def kfold_indices(
    n: int, n_folds: int, seed: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs for shuffled k-fold CV.

    Fold sizes differ by at most one element; every index appears in
    exactly one test fold.
    """
    if n_folds < 2:
        raise DatasetError(f"n_folds must be >= 2, got {n_folds}")
    if n < n_folds:
        raise DatasetError(f"cannot split {n} samples into {n_folds} folds")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, n_folds)
    for k in range(n_folds):
        test = np.sort(folds[k])
        train = np.sort(np.concatenate([folds[i] for i in range(n_folds) if i != k]))
        yield train, test


def stratified_kfold_indices(
    labels: np.ndarray, n_folds: int, seed: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """K-fold CV preserving class proportions per fold.

    Used for OC-selection evaluation so that rare best-OC classes appear
    in every training split.
    """
    labels = np.asarray(labels)
    n = labels.shape[0]
    if n_folds < 2:
        raise DatasetError(f"n_folds must be >= 2, got {n_folds}")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(n, dtype=np.int64)
    for cls in np.unique(labels):
        idx = np.flatnonzero(labels == cls)
        idx = rng.permutation(idx)
        # Rotate the starting fold per class so small classes do not all
        # land in fold 0.
        start = int(rng.integers(n_folds))
        for pos, i in enumerate(idx):
            fold_of[i] = (start + pos) % n_folds
    for k in range(n_folds):
        test = np.flatnonzero(fold_of == k)
        train = np.flatnonzero(fold_of != k)
        if test.size == 0:
            raise DatasetError(f"fold {k} is empty; too few samples")
        yield train, test
