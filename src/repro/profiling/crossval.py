"""K-fold cross-validation utilities (Section V-A3).

The paper evaluates every model with 5-fold cross validation: the dataset
is shuffled into five folds; each fold serves once as the test set with the
other four as training data.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from ..errors import DatasetError
from ..parallel import WorkerPool


def kfold_indices(
    n: int, n_folds: int, seed: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs for shuffled k-fold CV.

    Fold sizes differ by at most one element; every index appears in
    exactly one test fold.
    """
    if n_folds < 2:
        raise DatasetError(f"n_folds must be >= 2, got {n_folds}")
    if n < n_folds:
        raise DatasetError(f"cannot split {n} samples into {n_folds} folds")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, n_folds)
    for k in range(n_folds):
        test = np.sort(folds[k])
        train = np.sort(np.concatenate([folds[i] for i in range(n_folds) if i != k]))
        yield train, test


def stratified_kfold_indices(
    labels: np.ndarray, n_folds: int, seed: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """K-fold CV preserving class proportions per fold.

    Used for OC-selection evaluation so that rare best-OC classes appear
    in every training split.
    """
    labels = np.asarray(labels)
    n = labels.shape[0]
    if n_folds < 2:
        raise DatasetError(f"n_folds must be >= 2, got {n_folds}")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(n, dtype=np.int64)
    for cls in np.unique(labels):
        idx = np.flatnonzero(labels == cls)
        idx = rng.permutation(idx)
        # Rotate the starting fold per class so small classes do not all
        # land in fold 0.
        start = int(rng.integers(n_folds))
        for pos, i in enumerate(idx):
            fold_of[i] = (start + pos) % n_folds
    for k in range(n_folds):
        test = np.flatnonzero(fold_of == k)
        train = np.flatnonzero(fold_of != k)
        if test.size == 0:
            raise DatasetError(f"fold {k} is empty; too few samples")
        yield train, test


# ----------------------------------------------------------------------
# fold-parallel execution
# ----------------------------------------------------------------------

# Per-worker fold context: the (potentially large) shared data object
# ships once per worker via the pool initializer; fold tasks then carry
# only index arrays.
_FOLD_FN: "Callable | None" = None
_FOLD_DATA = None


def _init_fold_worker(fold_fn: Callable, data) -> None:
    global _FOLD_FN, _FOLD_DATA
    _FOLD_FN = fold_fn
    _FOLD_DATA = data


def _run_fold(task: tuple) -> object:
    train, test = task
    assert _FOLD_FN is not None
    return _FOLD_FN(_FOLD_DATA, train, test)


def cross_validate(
    fold_fn: Callable,
    data,
    folds: "Iterable[tuple[np.ndarray, np.ndarray]]",
    workers: int = 1,
    context: str = "spawn",
) -> list:
    """Run ``fold_fn(data, train_idx, test_idx)`` over every fold.

    The k-fold loop every evaluation in this repo runs, factored so the
    folds -- which are independent by construction (each fits a freshly
    seeded model on its own split) -- can execute on a
    :class:`~repro.parallel.WorkerPool`.  Results come back in fold
    order regardless of completion order, so ``workers`` never changes
    the outcome; ``workers=1`` is a plain in-process loop over the same
    function.

    *fold_fn* must be a module-level (picklable) callable and *data* a
    picklable object; both ship once per worker through the pool
    initializer, so fold tasks stay small.
    """
    folds = list(folds)
    if workers is not None and int(workers) == 1:
        return [fold_fn(data, train, test) for train, test in folds]
    with WorkerPool(
        workers,
        context=context,
        initializer=_init_fold_worker,
        initargs=(fold_fn, data),
    ) as pool:
        return pool.map(_run_fold, folds)
