"""Profiling campaigns, random search, PCC merging and dataset assembly."""

from .crossval import cross_validate, kfold_indices, stratified_kfold_indices
from .dataset import (
    ClassificationDataset,
    RegressionDataset,
    build_classification_dataset,
    build_regression_dataset,
    oc_flags,
    regression_feature_size,
)
from .merge import (
    OCGrouping,
    merge_ocs,
    oc_time_matrix,
    pairwise_pcc,
    pcc_intersection,
    top_pairs,
)
from .profiler import ProfileCampaign, run_campaign
from .records import Measurement, OCResult, StencilProfile
from .registry import DatasetRegistry, resolve_dataset_path
from .runner import CampaignHealth, CampaignRunner, RetryPolicy, SimClock
from .search import RandomSearch
from .storage import atomic_write_text, load_campaign, save_campaign
from .train import train_predictor_artifact, train_selector_artifact

__all__ = [
    "train_predictor_artifact",
    "train_selector_artifact",
    "CampaignHealth",
    "CampaignRunner",
    "ClassificationDataset",
    "DatasetRegistry",
    "Measurement",
    "OCGrouping",
    "OCResult",
    "ProfileCampaign",
    "RandomSearch",
    "RegressionDataset",
    "RetryPolicy",
    "SimClock",
    "StencilProfile",
    "atomic_write_text",
    "build_classification_dataset",
    "build_regression_dataset",
    "cross_validate",
    "kfold_indices",
    "load_campaign",
    "merge_ocs",
    "oc_flags",
    "oc_time_matrix",
    "pairwise_pcc",
    "pcc_intersection",
    "resolve_dataset_path",
    "run_campaign",
    "save_campaign",
    "regression_feature_size",
    "stratified_kfold_indices",
    "top_pairs",
]
