"""Dataset assembly for the classification and regression tasks.

Two tasks, two datasets (Section IV-A):

- **OC selection** (classification): one sample per stencil per GPU; the
  input is the Table II feature vector (GBDT / FcNet) or the assigned
  binary tensor (ConvNet); the label is the PCC-merged class of the
  stencil's best OC on that GPU.
- **Performance prediction** (regression): one sample per raw measurement;
  the input concatenates the stencil representation, the encoded parameter
  setting (log2 numerics) and the GPU hardware features; the target is the
  measured execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import MAX_ORDER
from ..errors import DatasetError
from ..gpu.specs import hardware_features
from ..optimizations.combos import OC_BY_NAME
from ..optimizations.params import N_PARAM_FEATURES
from ..stencil.features import batch_features, n_features
from ..stencil.tensorize import batch_tensors
from .merge import OCGrouping
from .profiler import ProfileCampaign

#: Number of hardware features attached to regression inputs.
N_HW_FEATURES = 4

#: One-hot style OC identity is encoded as six optimization flags.
N_OC_FEATURES = 6
_OC_FLAG_ORDER = ("ST", "BM", "CM", "RT", "PR", "TB")


def oc_flags(oc_name: str) -> np.ndarray:
    """Encode an OC as six 0/1 optimization flags (model input)."""
    oc = OC_BY_NAME[oc_name]
    return np.array(
        [1.0 if flag in {o.value for o in oc.opts} else 0.0 for flag in _OC_FLAG_ORDER]
    )


@dataclass
class ClassificationDataset:
    """Per-GPU OC-selection dataset.

    ``features``: ``(n, n_features)`` Table II vectors;
    ``tensors``: ``(n, (2R+1)^d)`` assigned tensors;
    ``labels``: merged-class indices;
    ``best_ocs``: the underlying raw best OC names (reports).
    """

    gpu: str
    features: np.ndarray
    tensors: np.ndarray
    labels: np.ndarray
    best_ocs: list[str]
    grouping: OCGrouping
    stencil_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    skipped_stencils: list[int] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_classes(self) -> int:
        return self.grouping.n_classes


def build_classification_dataset(
    campaign: ProfileCampaign,
    grouping: OCGrouping,
    gpu: str,
    max_order: int = MAX_ORDER,
) -> ClassificationDataset:
    """Assemble the OC-selection dataset for one GPU.

    Stencils with no valid OC result on *gpu* -- every sampled setting
    crashed, or the unit was quarantined by the fault-tolerant runner --
    carry no best-OC label, so they are excluded *explicitly*: their ids
    are recorded in ``skipped_stencils`` and ``stencil_ids`` maps each
    dataset row back to its campaign stencil.  A campaign with no
    labelable stencil at all is an error.
    """
    usable: list[int] = []
    skipped: list[int] = []
    for p in campaign.gpu_profiles(gpu):
        (usable if p.oc_results else skipped).append(p.stencil_id)
    if not usable:
        raise DatasetError(f"no stencil has a valid OC result on {gpu}")
    stencils = [campaign.stencils[i] for i in usable]
    best = [campaign.profile(gpu, i).best_oc for i in usable]
    labels = np.array([grouping.label(b) for b in best], dtype=np.int64)
    return ClassificationDataset(
        gpu=gpu,
        features=batch_features(stencils, max_order),
        tensors=batch_tensors(stencils, max_order),
        labels=labels,
        best_ocs=best,
        grouping=grouping,
        stencil_ids=np.array(usable, dtype=np.int64),
        skipped_stencils=skipped,
    )


@dataclass
class RegressionDataset:
    """Cross-architecture performance-prediction dataset.

    ``features``: ``(n, F)`` flat inputs -- stencil features, OC flags,
    encoded parameter setting, hardware features;
    ``tensors``: ``(n, (2R+1)^d)`` stencil tensors (ConvMLP branch);
    ``aux``: ``(n, F - n_stencil_features)`` the non-stencil part alone
    (the MLP branch of ConvMLP);
    ``times_ms``: measured execution times;
    ``stencil_ids`` / ``gpus``: provenance for grouped splits;
    ``ocs`` / ``settings``: the raw per-row configuration, kept so
    hybrid models can derive analytical features for each measurement.
    """

    features: np.ndarray
    tensors: np.ndarray
    aux: np.ndarray
    times_ms: np.ndarray
    stencil_ids: np.ndarray
    gpus: list[str]
    ocs: list[str] = field(default_factory=list)
    settings: list = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]


def regression_feature_size(max_order: int = MAX_ORDER) -> int:
    """Width of the flat regression input vector."""
    return n_features(max_order) + N_OC_FEATURES + N_PARAM_FEATURES + N_HW_FEATURES


def build_regression_dataset(
    campaign: ProfileCampaign,
    gpus: "tuple[str, ...] | list[str] | None" = None,
    max_order: int = MAX_ORDER,
) -> RegressionDataset:
    """Assemble the regression dataset from raw measurements.

    Parameters
    ----------
    campaign:
        The profiling campaign to draw measurements from.
    gpus:
        GPUs to include (default: all in the campaign).  Cross-architecture
        experiments train on some GPUs' rows and test on others' by
        filtering on ``dataset.gpus``.
    """
    use_gpus = tuple(gpus) if gpus is not None else campaign.gpus
    stencils = campaign.stencils
    sten_feats = batch_features(stencils, max_order)
    sten_tensors = batch_tensors(stencils, max_order)
    hw = {g: np.array(hardware_features(g)) for g in use_gpus}

    rows: list[np.ndarray] = []
    aux_rows: list[np.ndarray] = []
    tensor_rows: list[np.ndarray] = []
    times: list[float] = []
    ids: list[int] = []
    provenance: list[str] = []
    ocs: list[str] = []
    settings: list = []
    for gpu in use_gpus:
        for m in campaign.measurements(gpu):
            aux = np.concatenate([oc_flags(m.oc), m.setting.encode(), hw[gpu]])
            rows.append(np.concatenate([sten_feats[m.stencil_id], aux]))
            aux_rows.append(aux)
            tensor_rows.append(sten_tensors[m.stencil_id])
            times.append(m.time_ms)
            ids.append(m.stencil_id)
            provenance.append(gpu)
            ocs.append(m.oc)
            settings.append(m.setting)
    if not rows:
        raise DatasetError("campaign contains no measurements")
    return RegressionDataset(
        features=np.stack(rows),
        tensors=np.stack(tensor_rows),
        aux=np.stack(aux_rows),
        times_ms=np.array(times),
        stencil_ids=np.array(ids, dtype=np.int64),
        gpus=provenance,
        ocs=ocs,
        settings=settings,
    )


def analytical_feature_matrix(campaign: ProfileCampaign, ds: RegressionDataset) -> np.ndarray:
    """Per-row analytical features for a regression dataset.

    The hybrid predictor's extra columns: one static-perfmodel feature
    vector per measurement, derived from the row's raw (stencil, OC,
    setting, GPU).  Requires the dataset to carry its raw configuration
    (``ocs`` / ``settings``), which :func:`build_regression_dataset`
    always records.
    """
    from ..analysis.perfmodel import analytical_features

    if len(ds.ocs) != ds.n_samples or len(ds.settings) != ds.n_samples:
        raise DatasetError(
            "dataset lacks per-row oc/setting provenance; rebuild it with "
            "build_regression_dataset to use the hybrid method"
        )
    rows = [
        analytical_features(
            campaign.stencils[sid], OC_BY_NAME[oc], setting, gpu
        )
        for sid, oc, setting, gpu in zip(ds.stencil_ids, ds.ocs, ds.settings, ds.gpus)
    ]
    return np.array(rows, dtype=np.float64)
