"""Fault-tolerant, resumable campaign execution.

The profiling campaign is the pipeline's expensive artifact (the paper
collects ~65k/76k instances per GPU), so it must behave like a harness,
not a script: transient measurement failures are retried with bounded
exponential backoff, persistently failing points are quarantined and
recorded as crashed (the paper's "OC crashes under certain stencils")
rather than aborting the run, progress is checkpointed atomically, and an
interrupted campaign resumes from its checkpoint to the bit-identical
result an uninterrupted run would have produced.

Execution is organised as **work units** of one stencil on one GPU, each
unit tuned OC by OC.  The per-(stencil, OC) sampling streams are derived
from the seed independent of order (see
:class:`~repro.profiling.search.RandomSearch`), and fault draws are
scoped per unit (see :meth:`~repro.gpu.faults.FaultInjector.begin_unit`),
so units are self-contained: a tuning point re-run from scratch -- after
a device loss, or in a resumed process -- converges to exactly the
timings the fault-free campaign records.  That is what makes the
determinism and kill--resume equivalence properties testable instead of
hopeful.

Time never comes from the wall clock: backoff waits advance a
:class:`SimClock`, keeping every retry schedule deterministic and tests
instant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..config import DEFAULT_SEED
from ..engine import FaultBackend, RetryBackend, make_backend
from ..errors import (
    CampaignInterrupted,
    DatasetError,
    TransientError,
)
from ..gpu.faults import FaultConfig
from ..gpu.specs import GPU_ORDER
from ..optimizations.combos import ALL_OCS, OC
from ..stencil.stencil import Stencil
from .profiler import ProfileCampaign
from .records import StencilProfile
from .search import RandomSearch
from .storage import (
    FORMAT_VERSION,
    atomic_write_text,
    check_format_version,
    profile_from_row,
    profile_to_row,
    stencil_to_dict,
)


class SimClock:
    """A monotonically advancing simulated clock for backoff waits."""

    def __init__(self) -> None:
        self.now_s = 0.0

    def sleep(self, seconds: float) -> None:
        self.now_s += float(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry and exponential-backoff parameters.

    Per-call retries absorb :class:`MeasurementTimeout`,
    :class:`TransientMeasurementError` and corrupted-sample rejections;
    point retries re-run a whole (stencil, OC) tuning point after a
    :class:`DeviceLostError` (which voids all in-flight measurements) or
    after a call exhausted its per-call budget.  Backoff doubles from
    ``backoff_base_s`` up to ``backoff_max_s`` on the simulated clock.
    """

    max_call_retries: int = 8
    max_point_retries: int = 5
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0


@dataclass
class CampaignHealth:
    """Counters describing how rough a campaign run was.

    ``quarantined`` lists ``{"gpu", "stencil_id", "oc", "reason"}``
    records for (gpu, stencil, OC) tuning points that exhausted their
    retry budget and were recorded as crashed.
    """

    call_retries: int = 0
    timeouts: int = 0
    transients: int = 0
    device_lost: int = 0
    corrupt_rejected: int = 0
    point_retries: int = 0
    units_completed: int = 0
    units_resumed: int = 0
    backoff_s: float = 0.0
    quarantined: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "call_retries": self.call_retries,
            "timeouts": self.timeouts,
            "transients": self.transients,
            "device_lost": self.device_lost,
            "corrupt_rejected": self.corrupt_rejected,
            "point_retries": self.point_retries,
            "units_completed": self.units_completed,
            "units_resumed": self.units_resumed,
            "backoff_s": self.backoff_s,
            "quarantined": list(self.quarantined),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignHealth":
        out = cls()
        for name in (
            "call_retries", "timeouts", "transients", "device_lost",
            "corrupt_rejected", "point_retries", "units_completed",
            "units_resumed",
        ):
            setattr(out, name, int(doc.get(name, 0)))
        out.backoff_s = float(doc.get("backoff_s", 0.0))
        out.quarantined = list(doc.get("quarantined", []))
        return out

    def summary(self) -> str:
        """Multi-line health report for CLI output."""
        lines = [
            "campaign health:",
            f"  units completed: {self.units_completed} "
            f"(recovered from checkpoint: {self.units_resumed})",
            f"  transient faults absorbed: {self.timeouts} timeouts, "
            f"{self.transients} sporadic, {self.device_lost} device losses",
            f"  corrupted samples rejected: {self.corrupt_rejected}",
            f"  retries: {self.call_retries} call-level, "
            f"{self.point_retries} point-level "
            f"({self.backoff_s:.2f} s simulated backoff)",
            f"  quarantined points: {len(self.quarantined)}",
        ]
        for q in self.quarantined:
            lines.append(
                f"    {q['gpu']} stencil {q['stencil_id']} "
                f"{q['oc']}: {q['reason']}"
            )
        return "\n".join(lines)


class CampaignRunner:
    """Executes a profiling campaign as retryable (gpu, stencil) units.

    Parameters
    ----------
    stencils, gpus, ocs, n_settings, seed, sigma:
        Campaign definition, identical in meaning to
        :func:`~repro.profiling.profiler.run_campaign`.
    backend:
        Measurement backend kind (``"scalar"``, ``"vector"`` or
        ``"cached"``, see :func:`repro.engine.make_backend`).  All kinds
        produce equivalent campaigns (times within 1e-9 relative,
        identical crashes and noise); ``scalar`` is the reference,
        ``vector``/``cached`` trade memory for throughput.  Part of the
        checkpoint identity.
    faults:
        Optional :class:`FaultConfig`; ``None`` or an all-zero config
        runs the bare simulator with no injection layer at all.
    policy:
        Retry/backoff parameters (:class:`RetryPolicy`).
    checkpoint_path:
        When set, completed units are checkpointed to this JSON file
        atomically every ``checkpoint_every`` units (and at interruption
        and completion), and ``run(resume=True)`` continues from it.
    max_units:
        Process at most this many units *in this run*, then checkpoint
        and raise :class:`CampaignInterrupted`.  Exists to exercise the
        kill--resume path deterministically.
    """

    def __init__(
        self,
        stencils: list[Stencil],
        gpus: "tuple[str, ...] | list[str]" = GPU_ORDER,
        ocs: "tuple[OC, ...] | list[OC]" = ALL_OCS,
        n_settings: int = 8,
        seed: int = DEFAULT_SEED,
        sigma: float = 0.03,
        backend: str = "scalar",
        faults: "FaultConfig | None" = None,
        policy: "RetryPolicy | None" = None,
        checkpoint_path: "str | Path | None" = None,
        checkpoint_every: int = 16,
        max_units: "int | None" = None,
    ):
        if not stencils:
            raise DatasetError("empty stencil population")
        ndims = {s.ndim for s in stencils}
        if len(ndims) != 1:
            raise DatasetError(
                f"mixed dimensionalities in campaign: {sorted(ndims)}"
            )
        self.stencils = list(stencils)
        self.gpus = tuple(gpus)
        self.ocs = tuple(ocs)
        self.n_settings = int(n_settings)
        self.seed = int(seed)
        self.sigma = float(sigma)
        self.backend = str(backend)
        self.faults = faults if faults is not None else FaultConfig()
        self.policy = policy if policy is not None else RetryPolicy()
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.max_units = max_units
        self.clock = SimClock()
        self.health = CampaignHealth()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _config_doc(self) -> dict:
        return {
            "gpus": list(self.gpus),
            "ocs": [oc.name for oc in self.ocs],
            "n_settings": self.n_settings,
            "seed": self.seed,
            "sigma": self.sigma,
            "backend": self.backend,
            "faults": self.faults.to_dict(),
            "stencils": [stencil_to_dict(s) for s in self.stencils],
        }

    def _write_checkpoint(
        self, completed: dict[str, dict[int, StencilProfile]]
    ) -> None:
        if self.checkpoint_path is None:
            return
        doc = {
            "format": FORMAT_VERSION,
            "kind": "campaign-checkpoint",
            "config": self._config_doc(),
            "completed": {
                gpu: [profile_to_row(units[sid]) for sid in sorted(units)]
                for gpu, units in completed.items()
                if units
            },
            "health": self.health.to_dict(),
        }
        atomic_write_text(self.checkpoint_path, json.dumps(doc))

    def _load_checkpoint(self) -> dict[str, dict[int, StencilProfile]]:
        """Load completed units from the checkpoint, validating identity.

        A checkpoint written under a different campaign definition (other
        seed, GPUs, OCs, fault schedule or population) must never be
        silently merged -- the result would be an untraceable chimera.
        """
        assert self.checkpoint_path is not None
        doc = json.loads(self.checkpoint_path.read_text())
        check_format_version(doc, "checkpoint")
        if doc.get("kind") != "campaign-checkpoint":
            raise DatasetError(
                f"not a campaign checkpoint: kind={doc.get('kind')!r}"
            )
        mine, theirs = self._config_doc(), doc.get("config", {})
        if theirs != mine:
            diff = [k for k in mine if theirs.get(k) != mine[k]]
            raise DatasetError(
                "checkpoint belongs to a different campaign "
                f"(mismatched: {', '.join(diff) or 'unknown fields'})"
            )
        self.health = CampaignHealth.from_dict(doc.get("health", {}))
        completed: dict[str, dict[int, StencilProfile]] = {
            gpu: {} for gpu in self.gpus
        }
        for gpu, rows in doc.get("completed", {}).items():
            for row in rows:
                sid = int(row["stencil_id"])
                completed[gpu][sid] = profile_from_row(
                    row, self.stencils[sid], gpu
                )
        n = sum(len(units) for units in completed.values())
        self.health.units_resumed += n
        return completed

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _make_search(self) -> "dict[str, RandomSearch]":
        searches = {}
        for gpu in self.gpus:
            be: object = make_backend(self.backend, gpu, sigma=self.sigma)
            if self.faults.enabled:
                # Faults wrap *around* any cache (transients must not be
                # memoized); the retry guard wraps around the faults.
                be = RetryBackend(
                    FaultBackend(be, self.faults, seed=self.seed),
                    self.policy, self.clock, self.health,
                )
            searches[gpu] = RandomSearch(be, self.n_settings, self.seed)
        return searches

    def _run_unit(
        self, search: RandomSearch, gpu: str, stencil: Stencil, sid: int
    ) -> StencilProfile:
        """One (gpu, stencil) work unit, tuned OC by OC with retries.

        A :class:`DeviceLostError` (or a call that exhausted its per-call
        budget) voids the in-flight (stencil, OC) tuning point; the point
        re-runs from scratch after a backoff -- its sampling stream is
        re-derived from the seed, and the fault injector's advanced
        attempt counters make the retry draw fresh fault decisions, so a
        recovered point yields exactly the fault-free measurements.  A
        point that keeps failing is quarantined and recorded as crashed
        (no :class:`OCResult`, the same shape an all-crashing OC already
        produces), never aborting the campaign.
        """
        begin_unit = getattr(search.backend, "begin_unit", None)
        if begin_unit is not None:
            begin_unit((gpu, sid))
        profile = StencilProfile(stencil=stencil, stencil_id=sid, gpu=gpu)
        for oc in self.ocs:
            delay = self.policy.backoff_base_s
            for attempt in range(self.policy.max_point_retries + 1):
                try:
                    result, ms = search.tune_oc(stencil, sid, oc)
                except TransientError as e:
                    if attempt == self.policy.max_point_retries:
                        self.health.quarantined.append(
                            {
                                "gpu": gpu,
                                "stencil_id": sid,
                                "oc": oc.name,
                                "reason": str(e),
                            }
                        )
                        break
                    self.health.point_retries += 1
                    self.clock.sleep(delay)
                    self.health.backoff_s += delay
                    delay = min(delay * self.policy.backoff_factor,
                                self.policy.backoff_max_s)
                else:
                    if result is not None:
                        profile.oc_results[oc.name] = result
                        profile.measurements.extend(ms)
                    break
        return profile

    def run(self, resume: bool = False) -> ProfileCampaign:
        """Execute the campaign, optionally resuming from the checkpoint.

        With ``resume=True`` and an existing checkpoint file, completed
        units are loaded and skipped; a missing checkpoint simply starts
        fresh.  Raises :class:`CampaignInterrupted` when ``max_units``
        is exhausted before the campaign completes.
        """
        completed: dict[str, dict[int, StencilProfile]]
        if resume and self.checkpoint_path is not None \
                and self.checkpoint_path.exists():
            completed = self._load_checkpoint()
        else:
            completed = {gpu: {} for gpu in self.gpus}

        searches = self._make_search()
        processed = 0
        since_checkpoint = 0
        for gpu in self.gpus:
            for sid, stencil in enumerate(self.stencils):
                if sid in completed[gpu]:
                    continue
                if self.max_units is not None and processed >= self.max_units:
                    self._write_checkpoint(completed)
                    done = sum(len(u) for u in completed.values())
                    total = len(self.gpus) * len(self.stencils)
                    raise CampaignInterrupted(
                        f"stopped after {processed} units this run "
                        f"({done}/{total} total); resume from "
                        f"{self.checkpoint_path}"
                    )
                completed[gpu][sid] = self._run_unit(
                    searches[gpu], gpu, stencil, sid
                )
                self.health.units_completed += 1
                processed += 1
                since_checkpoint += 1
                if since_checkpoint >= self.checkpoint_every:
                    self._write_checkpoint(completed)
                    since_checkpoint = 0

        campaign = ProfileCampaign(
            stencils=self.stencils,
            gpus=self.gpus,
            ocs=self.ocs,
            n_settings=self.n_settings,
            seed=self.seed,
        )
        for gpu in self.gpus:
            campaign.profiles[gpu] = [
                completed[gpu][sid] for sid in range(len(self.stencils))
            ]
        self._write_checkpoint(completed)
        return campaign
