"""Fault-tolerant, resumable campaign execution.

The profiling campaign is the pipeline's expensive artifact (the paper
collects ~65k/76k instances per GPU), so it must behave like a harness,
not a script: transient measurement failures are retried with bounded
exponential backoff, persistently failing points are quarantined and
recorded as crashed (the paper's "OC crashes under certain stencils")
rather than aborting the run, progress is checkpointed atomically, and an
interrupted campaign resumes from its checkpoint to the bit-identical
result an uninterrupted run would have produced.

Execution is organised as **work units** of one stencil on one GPU, each
unit tuned OC by OC.  The per-(stencil, OC) sampling streams are derived
from the seed independent of order (see
:class:`~repro.profiling.search.RandomSearch`), and fault draws are
scoped per unit (see :meth:`~repro.gpu.faults.FaultInjector.begin_unit`),
so units are self-contained: a tuning point re-run from scratch -- after
a device loss, or in a resumed process -- converges to exactly the
timings the fault-free campaign records.  That is what makes the
determinism and kill--resume equivalence properties testable instead of
hopeful.

Time never comes from the wall clock: backoff waits advance a
:class:`SimClock`, keeping every retry schedule deterministic and tests
instant.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from ..config import DEFAULT_SEED
from ..engine import FaultBackend, RetryBackend, make_backend
from ..errors import (
    CampaignInterrupted,
    DatasetError,
    TransientError,
    WorkerLostError,
)
from ..gpu.faults import FaultConfig
from ..parallel import WorkerPool, resolve_workers
from ..gpu.specs import GPU_ORDER
from ..optimizations.combos import ALL_OCS, OC
from ..stencil.stencil import Stencil
from .profiler import ProfileCampaign
from .records import StencilProfile
from .search import RandomSearch
from .storage import (
    FORMAT_VERSION,
    atomic_write_text,
    check_format_version,
    profile_from_row,
    profile_to_row,
    stencil_to_dict,
)


class SimClock:
    """A monotonically advancing simulated clock for backoff waits."""

    def __init__(self) -> None:
        self.now_s = 0.0

    def sleep(self, seconds: float) -> None:
        self.now_s += float(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry and exponential-backoff parameters.

    Per-call retries absorb :class:`MeasurementTimeout`,
    :class:`TransientMeasurementError` and corrupted-sample rejections;
    point retries re-run a whole (stencil, OC) tuning point after a
    :class:`DeviceLostError` (which voids all in-flight measurements) or
    after a call exhausted its per-call budget.  Backoff doubles from
    ``backoff_base_s`` up to ``backoff_max_s`` on the simulated clock.
    """

    max_call_retries: int = 8
    max_point_retries: int = 5
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0


#: Integer counter fields of :class:`CampaignHealth` (everything but
#: ``backoff_s`` and ``quarantined``); shared by serialization and the
#: shard-merge path.
_HEALTH_COUNTERS = (
    "call_retries", "timeouts", "transients", "device_lost",
    "corrupt_rejected", "point_retries", "units_completed",
    "units_resumed", "worker_deaths",
)


@dataclass
class CampaignHealth:
    """Counters describing how rough a campaign run was.

    ``quarantined`` lists ``{"gpu", "stencil_id", "oc", "reason"}``
    records for (gpu, stencil, OC) tuning points that exhausted their
    retry budget and were recorded as crashed.  ``worker_deaths`` counts
    pool worker processes that died mid-shard; each death is absorbed by
    re-dispatching the dead worker's remaining units, never by failing
    the campaign.
    """

    call_retries: int = 0
    timeouts: int = 0
    transients: int = 0
    device_lost: int = 0
    corrupt_rejected: int = 0
    point_retries: int = 0
    units_completed: int = 0
    units_resumed: int = 0
    worker_deaths: int = 0
    backoff_s: float = 0.0
    quarantined: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        doc = {name: getattr(self, name) for name in _HEALTH_COUNTERS}
        doc["backoff_s"] = self.backoff_s
        doc["quarantined"] = list(self.quarantined)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignHealth":
        out = cls()
        for name in _HEALTH_COUNTERS:
            setattr(out, name, int(doc.get(name, 0)))
        out.backoff_s = float(doc.get("backoff_s", 0.0))
        out.quarantined = list(doc.get("quarantined", []))
        return out

    def merge_dict(self, doc: dict) -> None:
        """Accumulate another run's counters (a shard's, typically).

        ``units_completed`` / ``units_resumed`` are bookkept by whoever
        coordinates units, so shard documents carry them as zero; the
        remaining counters and the quarantine ledger add up.
        """
        for name in _HEALTH_COUNTERS:
            setattr(self, name, getattr(self, name) + int(doc.get(name, 0)))
        self.backoff_s += float(doc.get("backoff_s", 0.0))
        self.quarantined.extend(doc.get("quarantined", []))

    def summary(self) -> str:
        """Multi-line health report for CLI output."""
        lines = [
            "campaign health:",
            f"  units completed: {self.units_completed} "
            f"(recovered from checkpoint: {self.units_resumed})",
            f"  transient faults absorbed: {self.timeouts} timeouts, "
            f"{self.transients} sporadic, {self.device_lost} device losses",
            f"  corrupted samples rejected: {self.corrupt_rejected}",
            f"  retries: {self.call_retries} call-level, "
            f"{self.point_retries} point-level "
            f"({self.backoff_s:.2f} s simulated backoff)",
            f"  worker deaths absorbed: {self.worker_deaths}",
            f"  quarantined points: {len(self.quarantined)}",
        ]
        for q in self.quarantined:
            lines.append(
                f"    {q['gpu']} stencil {q['stencil_id']} "
                f"{q['oc']}: {q['reason']}"
            )
        return "\n".join(lines)


def build_search(
    backend_kind: str,
    gpu: str,
    sigma: float,
    faults: FaultConfig,
    seed: int,
    n_settings: int,
    policy: RetryPolicy,
    clock: SimClock,
    health: CampaignHealth,
    transport: str = "shm",
) -> RandomSearch:
    """One GPU's measurement stack, wrapped in a :class:`RandomSearch`.

    Module-level (rather than a runner method) so shard worker processes
    build the *same* stack from the same code path: backend, then --
    when injection is enabled -- faults wrapped *around* any cache
    (transients must not be memoized) and the retry guard wrapped around
    the faults.  *transport* only matters to the ``parallel`` backend
    kind and never changes results (see
    :class:`~repro.engine.parallel.ParallelBackend`).
    """
    be: object = make_backend(backend_kind, gpu, sigma=sigma, transport=transport)
    if faults.enabled:
        be = RetryBackend(
            FaultBackend(be, faults, seed=seed), policy, clock, health
        )
    return RandomSearch(be, n_settings, seed)


def run_unit(
    search: RandomSearch,
    gpu: str,
    stencil: Stencil,
    sid: int,
    ocs: "tuple[OC, ...]",
    policy: RetryPolicy,
    clock: SimClock,
    health: CampaignHealth,
) -> StencilProfile:
    """One (gpu, stencil) work unit, tuned OC by OC with retries.

    A :class:`DeviceLostError` (or a call that exhausted its per-call
    budget) voids the in-flight (stencil, OC) tuning point; the point
    re-runs from scratch after a backoff -- its sampling stream is
    re-derived from the seed, and the fault injector's advanced attempt
    counters make the retry draw fresh fault decisions, so a recovered
    point yields exactly the fault-free measurements.  A point that
    keeps failing is quarantined and recorded as crashed (no
    :class:`OCResult`, the same shape an all-crashing OC already
    produces), never aborting the campaign.

    Shared verbatim by the sequential runner and shard workers: both
    call this function, so the parallel campaign is the sequential
    campaign with only the unit-to-process mapping changed.
    """
    begin_unit = getattr(search.backend, "begin_unit", None)
    if begin_unit is not None:
        begin_unit((gpu, sid))
    profile = StencilProfile(stencil=stencil, stencil_id=sid, gpu=gpu)
    for oc in ocs:
        delay = policy.backoff_base_s
        for attempt in range(policy.max_point_retries + 1):
            try:
                result, ms = search.tune_oc(stencil, sid, oc)
            except TransientError as e:
                if attempt == policy.max_point_retries:
                    health.quarantined.append(
                        {
                            "gpu": gpu,
                            "stencil_id": sid,
                            "oc": oc.name,
                            "reason": str(e),
                        }
                    )
                    break
                health.point_retries += 1
                clock.sleep(delay)
                health.backoff_s += delay
                delay = min(delay * policy.backoff_factor,
                            policy.backoff_max_s)
            else:
                if result is not None:
                    profile.oc_results[oc.name] = result
                    profile.measurements.extend(ms)
                break
    return profile


class CampaignRunner:
    """Executes a profiling campaign as retryable (gpu, stencil) units.

    Parameters
    ----------
    stencils, gpus, ocs, n_settings, seed, sigma:
        Campaign definition, identical in meaning to
        :func:`~repro.profiling.profiler.run_campaign`.
    backend:
        Measurement backend kind (``"scalar"``, ``"vector"`` or
        ``"cached"``, see :func:`repro.engine.make_backend`).  All kinds
        produce equivalent campaigns (times within 1e-9 relative,
        identical crashes and noise); ``scalar`` is the reference,
        ``vector``/``cached`` trade memory for throughput.  Part of the
        checkpoint identity.
    faults:
        Optional :class:`FaultConfig`; ``None`` or an all-zero config
        runs the bare simulator with no injection layer at all.
    policy:
        Retry/backoff parameters (:class:`RetryPolicy`).
    checkpoint_path:
        When set, completed units are checkpointed to this JSON file
        atomically every ``checkpoint_every`` units (and at interruption
        and completion), and ``run(resume=True)`` continues from it.
    max_units:
        Process at most this many units *in this run*, then checkpoint
        and raise :class:`CampaignInterrupted`.  Exists to exercise the
        kill--resume path deterministically.
    workers:
        Process count for sharded execution.  ``1`` (default) runs the
        sequential path; ``>1`` partitions pending units into contiguous
        shards executed by a :class:`~repro.parallel.WorkerPool`, with
        bit-identical results for every worker count (units are
        self-contained, see the module docstring).  ``0``/``None``
        auto-sizes to the CPU count.  Not part of the checkpoint
        identity: a campaign may be started with one worker count and
        resumed with another.
    chunk_size:
        Units per shard; default splits pending work evenly across
        workers.  Smaller shards checkpoint (and survive worker deaths)
        at finer granularity at the cost of more dispatch overhead.
    mp_context:
        ``"spawn"`` (portable default) or ``"fork"`` (fast startup,
        POSIX only).
    transport:
        Request transport for the ``parallel`` backend kind (``"shm"``
        shared-memory arrays by default, ``"pickle"`` the codec
        fallback).  Pure plumbing: results are bit-identical either
        way, so -- like ``workers``/``chunk_size`` -- it is *not* part
        of the checkpoint identity; a campaign checkpointed under one
        transport resumes under the other.
    max_shard_retries:
        How many worker-death recovery rounds to attempt before giving
        up and re-raising :class:`~repro.errors.WorkerLostError`.
    worker_crash_units:
        Test hook: shard workers call ``os._exit`` when about to process
        one of these (gpu, stencil_id) units, simulating a killed
        worker.  Fires only on first dispatch; recovery re-runs the unit
        normally.
    """

    def __init__(
        self,
        stencils: list[Stencil],
        gpus: "tuple[str, ...] | list[str]" = GPU_ORDER,
        ocs: "tuple[OC, ...] | list[OC]" = ALL_OCS,
        n_settings: int = 8,
        seed: int = DEFAULT_SEED,
        sigma: float = 0.03,
        backend: str = "scalar",
        faults: "FaultConfig | None" = None,
        policy: "RetryPolicy | None" = None,
        checkpoint_path: "str | Path | None" = None,
        checkpoint_every: int = 16,
        max_units: "int | None" = None,
        workers: "int | None" = 1,
        chunk_size: "int | None" = None,
        mp_context: str = "spawn",
        transport: str = "shm",
        max_shard_retries: int = 3,
        worker_crash_units: "tuple | list | None" = None,
    ):
        if not stencils:
            raise DatasetError("empty stencil population")
        ndims = {s.ndim for s in stencils}
        if len(ndims) != 1:
            raise DatasetError(
                f"mixed dimensionalities in campaign: {sorted(ndims)}"
            )
        self.stencils = list(stencils)
        self.gpus = tuple(gpus)
        self.ocs = tuple(ocs)
        self.n_settings = int(n_settings)
        self.seed = int(seed)
        self.sigma = float(sigma)
        self.backend = str(backend)
        self.faults = faults if faults is not None else FaultConfig()
        self.policy = policy if policy is not None else RetryPolicy()
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.max_units = max_units
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.transport = str(transport)
        self.max_shard_retries = int(max_shard_retries)
        self.worker_crash_units = tuple(
            (str(g), int(s)) for g, s in (worker_crash_units or ())
        )
        self.clock = SimClock()
        self.health = CampaignHealth()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _config_doc(self) -> dict:
        return {
            "gpus": list(self.gpus),
            "ocs": [oc.name for oc in self.ocs],
            "n_settings": self.n_settings,
            "seed": self.seed,
            "sigma": self.sigma,
            "backend": self.backend,
            "faults": self.faults.to_dict(),
            "stencils": [stencil_to_dict(s) for s in self.stencils],
        }

    def _write_checkpoint(
        self, completed: dict[str, dict[int, StencilProfile]]
    ) -> None:
        if self.checkpoint_path is None:
            return
        doc = {
            "format": FORMAT_VERSION,
            "kind": "campaign-checkpoint",
            "config": self._config_doc(),
            "completed": {
                gpu: [profile_to_row(units[sid]) for sid in sorted(units)]
                for gpu, units in completed.items()
                if units
            },
            "health": self.health.to_dict(),
        }
        atomic_write_text(self.checkpoint_path, json.dumps(doc))

    def _load_checkpoint(self) -> dict[str, dict[int, StencilProfile]]:
        """Load completed units from the checkpoint, validating identity.

        A checkpoint written under a different campaign definition (other
        seed, GPUs, OCs, fault schedule or population) must never be
        silently merged -- the result would be an untraceable chimera.
        """
        assert self.checkpoint_path is not None
        doc = json.loads(self.checkpoint_path.read_text())
        check_format_version(doc, "checkpoint")
        if doc.get("kind") != "campaign-checkpoint":
            raise DatasetError(
                f"not a campaign checkpoint: kind={doc.get('kind')!r}"
            )
        mine, theirs = self._config_doc(), doc.get("config", {})
        if theirs != mine:
            diff = [k for k in mine if theirs.get(k) != mine[k]]
            raise DatasetError(
                "checkpoint belongs to a different campaign "
                f"(mismatched: {', '.join(diff) or 'unknown fields'})"
            )
        self.health = CampaignHealth.from_dict(doc.get("health", {}))
        completed: dict[str, dict[int, StencilProfile]] = {
            gpu: {} for gpu in self.gpus
        }
        for gpu, rows in doc.get("completed", {}).items():
            for row in rows:
                sid = int(row["stencil_id"])
                completed[gpu][sid] = profile_from_row(
                    row, self.stencils[sid], gpu
                )
        n = sum(len(units) for units in completed.values())
        self.health.units_resumed += n
        # A killed parallel run may have shard progress the main
        # checkpoint never saw; fold it in (workers-count independent).
        self._merge_shard_files(completed, resumed=True)
        return completed

    # ------------------------------------------------------------------
    # shard checkpoint files
    # ------------------------------------------------------------------
    def _shard_path(self, idx: int) -> "Path | None":
        if self.checkpoint_path is None:
            return None
        return self.checkpoint_path.parent / (
            f"{self.checkpoint_path.name}.shard-{idx:03d}"
        )

    def _shard_files(self) -> "list[Path]":
        if self.checkpoint_path is None:
            return []
        return sorted(
            self.checkpoint_path.parent.glob(
                self.checkpoint_path.name + ".shard-*"
            )
        )

    def _cleanup_shard_files(self) -> None:
        for path in self._shard_files():
            path.unlink(missing_ok=True)

    def _merge_shard_files(
        self,
        completed: dict[str, dict[int, StencilProfile]],
        resumed: bool = False,
    ) -> int:
        """Fold leftover per-shard checkpoints into *completed*.

        Called on resume (a killed sharded run leaves shard files behind
        -- they merge regardless of the current ``workers`` value) and
        after a worker death (the dead pool's partial progress lives
        only in shard files).  Shard documents from a *different*
        campaign config are ignored, mirroring :meth:`_load_checkpoint`.
        Health counters merge only when a file contributes at least one
        new unit, so a shard already folded into the main checkpoint is
        not double-counted.  Files are consumed (deleted) either way.
        """
        config = self._config_doc()
        merged = 0
        for path in self._shard_files():
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if doc.get("kind") != "campaign-shard" \
                    or doc.get("config") != config:
                continue
            new_units = 0
            for gpu, rows in doc.get("completed", {}).items():
                if gpu not in completed:
                    continue
                for row in rows:
                    sid = int(row["stencil_id"])
                    if sid in completed[gpu]:
                        continue
                    completed[gpu][sid] = profile_from_row(
                        row, self.stencils[sid], gpu
                    )
                    new_units += 1
            if new_units:
                self.health.merge_dict(doc.get("health", {}))
                if resumed:
                    self.health.units_resumed += new_units
                else:
                    self.health.units_completed += new_units
                merged += new_units
            path.unlink(missing_ok=True)
        return merged

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _make_search(self) -> "dict[str, RandomSearch]":
        return {
            gpu: build_search(
                self.backend, gpu, self.sigma, self.faults, self.seed,
                self.n_settings, self.policy, self.clock, self.health,
                transport=self.transport,
            )
            for gpu in self.gpus
        }

    def _run_unit(
        self, search: RandomSearch, gpu: str, stencil: Stencil, sid: int
    ) -> StencilProfile:
        return run_unit(
            search, gpu, stencil, sid, self.ocs,
            self.policy, self.clock, self.health,
        )

    def _pending_units(
        self, completed: dict[str, dict[int, StencilProfile]]
    ) -> "list[tuple[str, int]]":
        """Unprocessed (gpu, stencil_id) units in canonical gpu-major order."""
        return [
            (gpu, sid)
            for gpu in self.gpus
            for sid in range(len(self.stencils))
            if sid not in completed[gpu]
        ]

    def _interrupt(
        self, completed: dict[str, dict[int, StencilProfile]], processed: int
    ) -> CampaignInterrupted:
        self._write_checkpoint(completed)
        self._cleanup_shard_files()
        done = sum(len(u) for u in completed.values())
        total = len(self.gpus) * len(self.stencils)
        return CampaignInterrupted(
            f"stopped after {processed} units this run "
            f"({done}/{total} total); resume from {self.checkpoint_path}"
        )

    def _run_sequential(
        self, completed: dict[str, dict[int, StencilProfile]]
    ) -> None:
        searches = self._make_search()
        processed = 0
        since_checkpoint = 0
        for gpu, sid in self._pending_units(completed):
            if self.max_units is not None and processed >= self.max_units:
                raise self._interrupt(completed, processed)
            completed[gpu][sid] = self._run_unit(
                searches[gpu], gpu, self.stencils[sid], sid
            )
            self.health.units_completed += 1
            processed += 1
            since_checkpoint += 1
            if since_checkpoint >= self.checkpoint_every:
                self._write_checkpoint(completed)
                since_checkpoint = 0

    def _quarantine_key(self, q: dict) -> tuple:
        gpu = q.get("gpu")
        gpu_idx = self.gpus.index(gpu) if gpu in self.gpus else len(self.gpus)
        oc_idx = next(
            (i for i, oc in enumerate(self.ocs) if oc.name == q.get("oc")),
            len(self.ocs),
        )
        return (gpu_idx, int(q.get("stencil_id", -1)), oc_idx)

    def _merge_shard_result(
        self, completed: dict[str, dict[int, StencilProfile]], result: dict
    ) -> int:
        n = 0
        for gpu, rows in result.get("completed", {}).items():
            for row in rows:
                sid = int(row["stencil_id"])
                if sid not in completed[gpu]:
                    completed[gpu][sid] = profile_from_row(
                        row, self.stencils[sid], gpu
                    )
                    n += 1
        self.health.merge_dict(result.get("health", {}))
        self.health.units_completed += n
        return n

    def _run_sharded(
        self, completed: dict[str, dict[int, StencilProfile]]
    ) -> None:
        """Execute pending units as contiguous shards on a worker pool.

        Each shard runs :func:`run_unit` over its units with a fresh
        clock/health/search stack -- units are self-contained, so the
        merged result is bit-identical to the sequential run for any
        worker count, chunk size or completion order.  Worker deaths are
        absorbed: partial progress is recovered from per-shard
        checkpoint files, the pool restarts, and the remaining units are
        re-dispatched (bounded by ``max_shard_retries``).
        """
        from .shard import _init_shard_worker, run_shard

        work = self._pending_units(completed)
        deferred = 0
        if self.max_units is not None and len(work) > self.max_units:
            deferred = len(work) - self.max_units
            work = work[: self.max_units]
        processed_cap = len(work)
        crash = set(self.worker_crash_units)
        pool = WorkerPool(
            self.workers,
            context=self.mp_context,
            initializer=_init_shard_worker,
            initargs=(
                self._config_doc(), self.policy, self.checkpoint_every,
                self.transport,
            ),
        )
        deaths = 0
        try:
            while work:
                size = self.chunk_size or max(
                    1, math.ceil(len(work) / self.workers)
                )
                tasks = []
                for i, lo in enumerate(range(0, len(work), size)):
                    shard = work[lo:lo + size]
                    hook = tuple(u for u in shard if u in crash)
                    path = self._shard_path(i)
                    tasks.append(
                        (i, shard, hook, str(path) if path else None)
                    )
                try:
                    for _, result in pool.map_unordered(run_shard, tasks):
                        self._merge_shard_result(completed, result)
                        self._write_checkpoint(completed)
                        path = self._shard_path(result["shard"])
                        if path is not None:
                            path.unlink(missing_ok=True)
                except WorkerLostError:
                    self.health.worker_deaths += 1
                    deaths += 1
                    crash = set()  # the crash hook fires once
                    self._merge_shard_files(completed)
                    self._write_checkpoint(completed)
                    if deaths > self.max_shard_retries:
                        raise
                    work = [
                        (g, s) for g, s in work if s not in completed[g]
                    ]
                    continue
                work = []
        finally:
            pool.close()
        # Shard completion order is nondeterministic; restore the
        # sequential runner's gpu-major, stencil, OC quarantine order so
        # health reports compare equal across worker counts.
        self.health.quarantined.sort(key=self._quarantine_key)
        if deferred:
            raise self._interrupt(completed, processed_cap)

    def run(self, resume: bool = False) -> ProfileCampaign:
        """Execute the campaign, optionally resuming from the checkpoint.

        With ``resume=True`` and an existing checkpoint file, completed
        units are loaded and skipped (leftover per-shard checkpoints
        from a killed parallel run merge in too, regardless of the
        current worker count); a missing checkpoint simply starts fresh.
        Raises :class:`CampaignInterrupted` when ``max_units`` is
        exhausted before the campaign completes.
        """
        completed: dict[str, dict[int, StencilProfile]]
        if resume and self.checkpoint_path is not None \
                and self.checkpoint_path.exists():
            completed = self._load_checkpoint()
        else:
            completed = {gpu: {} for gpu in self.gpus}
            if resume and self.checkpoint_path is not None:
                # No main checkpoint, but a killed first parallel run may
                # have left shard files worth resuming from.
                self._merge_shard_files(completed, resumed=True)
            else:
                self._cleanup_shard_files()

        if self.workers > 1:
            self._run_sharded(completed)
        else:
            self._run_sequential(completed)

        campaign = ProfileCampaign(
            stencils=self.stencils,
            gpus=self.gpus,
            ocs=self.ocs,
            n_settings=self.n_settings,
            seed=self.seed,
        )
        for gpu in self.gpus:
            campaign.profiles[gpu] = [
                completed[gpu][sid] for sid in range(len(self.stencils))
            ]
        self._write_checkpoint(completed)
        self._cleanup_shard_files()
        return campaign
