"""Exhaustive oracle: the best OC found by profiling every combination.

Not a paper baseline -- the upper bound every tuner is measured against,
used by ablation benches and the speedup figures' sanity checks.
"""

from __future__ import annotations

from ..engine import make_backend
from ..errors import DatasetError
from ..optimizations.combos import ALL_OCS, OC
from ..optimizations.params import ParamSetting
from ..profiling.search import RandomSearch
from ..stencil.stencil import Stencil


class OracleBaseline:
    """Profiles every OC with the standard budget and keeps the best.

    Exhausting the whole OC space makes the oracle the most
    measurement-hungry tuner in the repo; ``backend="cached"`` (or
    ``"vector"``) runs it on the batched engine.
    """

    name = "Oracle"

    def __init__(self, gpu: str, n_settings: int, seed: int,
                 sigma: float = 0.03, backend: str = "scalar"):
        self.search = RandomSearch(
            make_backend(backend, gpu, sigma=sigma), n_settings, seed
        )

    def tune(self, stencil: Stencil, stencil_id: int = -1) -> tuple[OC, ParamSetting, float]:
        """Best configuration over the full OC space."""
        best: tuple[float, OC, ParamSetting] | None = None
        for oc in ALL_OCS:
            result, _ = self.search.tune_oc(stencil, stencil_id, oc)
            if result is None:
                continue
            if best is None or result.best_time_ms < best[0]:
                best = (result.best_time_ms, oc, result.best_setting)
        if best is None:
            raise DatasetError("no OC could run for this stencil")
        return best[1], best[2], best[0]
