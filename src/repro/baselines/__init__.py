"""Comparison tuners: Artemis-style, AN5D-style and the exhaustive oracle."""

from .an5d import AN5DBaseline
from .artemis import ArtemisBaseline
from .oracle import OracleBaseline

__all__ = ["AN5DBaseline", "ArtemisBaseline", "OracleBaseline"]
