"""Artemis-style baseline tuner (Rawat et al. [20]).

Artemis "tunes the computation for high-impact optimizations first and
then selects a few high-performance candidates".  We mirror that two-stage
shape on our optimization vocabulary:

1. **Stage 1 (high impact)**: evaluate the structural skeletons -- naive,
   streaming, temporal blocking, and their combination -- each with the
   standard per-OC random budget; keep the top ``n_candidates``.
2. **Stage 2 (secondary)**: for each surviving skeleton, try the secondary
   optimizations (retiming, prefetching, block/cyclic merging) layered on
   top, same budget per combination, and return the overall best.

Artemis therefore spends strictly more total measurements than
StencilMART (which tunes only its one predicted OC); the comparison in
Figs. 10-11 is conservative in the baseline's favour at equal per-OC
budget, matching the paper's "the number of randomly selected parameter
settings remains the same".
"""

from __future__ import annotations

from ..engine import make_backend
from ..errors import ConstraintViolation, DatasetError
from ..optimizations.combos import OC
from ..optimizations.params import ParamSetting
from ..optimizations.passes import Opt
from ..profiling.search import RandomSearch
from ..stencil.stencil import Stencil

#: Stage-1 structural skeletons.
_SKELETONS = ("naive", "ST", "TB", "ST_TB")

#: Stage-2 add-ons layered onto surviving skeletons.
_SECONDARY = (Opt.RT, Opt.PR, Opt.BM, Opt.CM)


class ArtemisBaseline:
    """Two-stage high-impact-first tuner."""

    name = "Artemis"

    def __init__(
        self,
        gpu: str,
        n_settings: int,
        seed: int,
        sigma: float = 0.03,
        n_candidates: int = 2,
        backend: str = "scalar",
    ):
        self.search = RandomSearch(
            make_backend(backend, gpu, sigma=sigma), n_settings, seed
        )
        self.n_candidates = int(n_candidates)

    def tune(self, stencil: Stencil, stencil_id: int = -1) -> tuple[OC, ParamSetting, float]:
        """Best configuration found by the two-stage procedure."""
        stage1: list[tuple[float, OC, ParamSetting]] = []
        for name in _SKELETONS:
            oc = OC.parse(name)
            result, _ = self.search.tune_oc(stencil, stencil_id, oc)
            if result is not None:
                stage1.append((result.best_time_ms, oc, result.best_setting))
        if not stage1:
            raise DatasetError("no Artemis skeleton could run")
        stage1.sort(key=lambda r: r[0])
        best_time, best_oc, best_setting = stage1[0]

        for _, skeleton, _ in stage1[: self.n_candidates]:
            for extra in _SECONDARY:
                try:
                    oc = OC(skeleton.opts | {extra})
                except ConstraintViolation:
                    continue
                result, _ = self.search.tune_oc(stencil, stencil_id, oc)
                if result is not None and result.best_time_ms < best_time:
                    best_time = result.best_time_ms
                    best_oc = oc
                    best_setting = result.best_setting
        return best_oc, best_setting, best_time
