"""AN5D-style baseline tuner (Matsumura et al. [15]).

AN5D compiles stencils to a fixed high-performance strategy: streaming
(2.5-D spatial blocking) combined with high-degree temporal blocking, plus
low-level register optimizations (which our optimization vocabulary calls
retiming).  It then tunes the numeric parameters of that one strategy.
The baseline therefore always tunes the ``ST_RT_TB`` combination, falling
back to ``ST_RT`` (no temporal blocking) and then ``ST`` when the richer
combination cannot run for the stencil/GPU at hand.
"""

from __future__ import annotations

from ..engine import make_backend
from ..errors import DatasetError
from ..optimizations.combos import OC
from ..optimizations.params import ParamSetting
from ..profiling.search import RandomSearch
from ..stencil.stencil import Stencil

#: Strategy ladder, strongest first.
_STRATEGIES = ("ST_RT_TB", "ST_RT", "ST")


class AN5DBaseline:
    """Fixed-strategy tuner with the same per-OC search budget."""

    name = "AN5D"

    def __init__(self, gpu: str, n_settings: int, seed: int,
                 sigma: float = 0.03, backend: str = "scalar"):
        self.search = RandomSearch(
            make_backend(backend, gpu, sigma=sigma), n_settings, seed
        )

    def tune(self, stencil: Stencil, stencil_id: int = -1) -> tuple[OC, ParamSetting, float]:
        """Best configuration of the AN5D strategy for *stencil*."""
        for name in _STRATEGIES:
            oc = OC.parse(name)
            result, _ = self.search.tune_oc(stencil, stencil_id, oc)
            if result is not None:
                return oc, result.best_setting, result.best_time_ms
        raise DatasetError("AN5D strategy ladder exhausted (stencil cannot stream)")
