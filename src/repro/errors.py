"""Exception hierarchy for the StencilMART reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  The simulator raises :class:`KernelLaunchError` for
configurations that would crash on real hardware (the paper's "OC crashes
under certain stencils" cases, Section III-A); tuners treat those as
infeasible points rather than hard failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class StencilError(ReproError):
    """Invalid stencil definition (bad offsets, dimension mismatch, ...)."""


class OptimizationError(ReproError):
    """Invalid optimization combination or parameter setting."""


class ConstraintViolation(OptimizationError):
    """An optimization combination violates a Table I constraint.

    Example: enabling retiming (RT) without streaming (ST), or enabling both
    block merging (BM) and cyclic merging (CM) at the same time.
    """


class KernelLaunchError(ReproError):
    """The simulated kernel cannot launch on the target GPU.

    Raised when a (stencil, OC, parameter setting) exceeds a hard hardware
    limit -- registers per thread, shared memory per block, threads per
    block -- or yields zero occupancy.  This mirrors real CUDA launch
    failures and resource-spill crashes the paper observes for e.g.
    temporal blocking of 3-D order-4 stencils without streaming.
    """


class TransientError(ReproError):
    """A measurement failure that may succeed on retry.

    Real profiling harnesses distinguish *deterministic* infeasibility
    (:class:`KernelLaunchError`: the configuration can never run) from
    *transient* trouble -- hung kernels, driver hiccups, device resets --
    that a campaign must absorb by retrying rather than crash on.  The
    fault injector (:mod:`repro.gpu.faults`) raises the subclasses below;
    the campaign runner retries them with bounded exponential backoff.
    """


class MeasurementTimeout(TransientError):
    """The simulated kernel hung past the measurement watchdog."""


class TransientMeasurementError(TransientError):
    """A sporadic measurement failure (driver hiccup, ECC retry, ...)."""


class DeviceLostError(TransientError):
    """The simulated device was lost mid-measurement (reset required).

    Unlike the other transient errors this is not retried call-by-call:
    every measurement in flight when the device resets is void, so the
    campaign runner discards the current (stencil, OC) tuning point and
    re-runs it from scratch after a reset backoff.
    """


class WorkerLostError(TransientError):
    """A pool worker process died while holding in-flight work.

    Raised by :class:`repro.parallel.WorkerPool` when a worker is
    killed, segfaults or is OOM-reaped mid-task.  Like the other
    transient errors this is *retryable*: the sharded campaign runner
    restarts the pool and re-dispatches the dead worker's remaining
    units (recording the event in ``CampaignHealth.worker_deaths``)
    instead of treating the campaign as crashed.
    """


class CampaignInterrupted(ReproError):
    """A profiling campaign stopped before completing all work units.

    Raised by :class:`repro.profiling.runner.CampaignRunner` when a run
    hits its unit cap (used to exercise kill--resume paths).  The
    checkpoint on disk holds every completed unit; re-running with
    ``resume=True`` continues from it.
    """


class UnknownGPUError(ReproError, KeyError):
    """A GPU name is not in the spec database.

    Subclasses :class:`KeyError` so call sites that historically caught
    the bare ``KeyError`` from a dict lookup keep working, but carries a
    descriptive message naming every known device (engine, tuning and
    serve paths used to surface an opaque ``KeyError: 'MI300'``).
    """

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the first arg, which would wrap the
        # whole sentence in quotes; report the plain message instead.
        return Exception.__str__(self)


class DatasetError(ReproError):
    """Malformed or inconsistent profiling dataset."""


class TuningError(ReproError):
    """Tuning front-door misuse (:mod:`repro.tuning`).

    Raised for malformed restriction expressions, unknown strategies or
    parameters, unsatisfiable restricted spaces, and unusable persistent
    tuning-cache documents.
    """


class ModelError(ReproError):
    """Machine-learning model misuse (predict before fit, shape mismatch)."""


class ArtifactError(ReproError):
    """A persisted model artifact is unusable.

    Raised by :mod:`repro.serve` when an artifact document is corrupt
    (checksum mismatch, truncated or malformed JSON), written by a newer
    format version, or simply absent from the registry.  The prediction
    service treats it as a *degradation* signal -- it falls back to the
    heuristic selector and counts the event -- rather than a crash.
    """


class ServiceError(ReproError):
    """A prediction-service request cannot be answered.

    Covers malformed request payloads and queries outside the service's
    capability (unknown GPU, unknown OC, wrong dimensionality) -- the
    HTTP layer maps it to a 400-class response instead of a 500.
    """


class OverloadError(ServiceError):
    """The service shed a request instead of queueing it unboundedly.

    Raised by the admission controller when the bounded request queue is
    full (``kind="queue_full"``) or when a request's deadline expired
    while it waited for a batch slot (``kind="deadline"``).  Shedding is
    deliberate overload protection, not a fault: the HTTP layer maps it
    to ``503`` with a ``Retry-After`` hint (:attr:`retry_after_s`), and
    a well-behaved client (:class:`repro.serve.client.ServeClient`)
    backs off and retries.  Sheds are counted separately from errors in
    the service telemetry.
    """

    def __init__(self, message: str, retry_after_s: float = 0.05,
                 kind: str = "queue_full"):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.kind = kind


class NotFittedError(ModelError):
    """An estimator was used before :meth:`fit` was called."""
