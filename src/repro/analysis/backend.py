"""Estimator-driven measurement backend: static autotuning.

:class:`AnalyticalBackend` implements the engine's :class:`Backend
<repro.engine.Backend>` protocol on top of
:func:`~repro.analysis.perfmodel.estimate_kernel` instead of a
simulator.  Every search strategy in :mod:`repro.tuning` -- the paper's
random walk with coordinate refinement, the genetic / annealing /
Bayesian zoo -- can therefore run *without a single measurement*:
``tune(stencil, oc=oc, backend=AnalyticalBackend(gpu))`` autotunes the
parameter space purely from generated source.

Semantics mirror the simulator-backed backends:

- a configuration the code generator rejects or the model knows cannot
  launch surfaces as a crash result (:class:`KernelLaunchError` carried
  as data), so one bad point never aborts a frontier;
- a kernel the static analyzer cannot parse or price is *also* reported
  as a crash result rather than an exception -- from the search's point
  of view the point is simply unusable, and strategies already know how
  to route around crashes;
- estimates are deterministic and noise-free (``sigma == 0``).
"""

from __future__ import annotations

from typing import Sequence

from ..engine.core import BackendBase, BackendInfo, EvalRequest, EvalResult
from ..errors import KernelLaunchError, OptimizationError
from ..gpu.specs import get_gpu

__all__ = ["AnalyticalBackend"]


class AnalyticalBackend(BackendBase):
    """Batched evaluation backed by the static performance model.

    Parameters
    ----------
    gpu:
        GPU name or :class:`~repro.gpu.specs.GPUSpec` whose machine
        parameters the roofline composition uses.
    """

    def __init__(self, gpu):
        self._spec = get_gpu(gpu) if isinstance(gpu, str) else gpu

    @property
    def spec(self):
        return self._spec

    @property
    def sigma(self) -> float:
        return 0.0

    @property
    def info(self) -> BackendInfo:
        # Metric extraction is memoized per configuration inside
        # perfmodel, so repeats are near-free even across batches.
        return BackendInfo(name="analytical", caching=True)

    def evaluate_batch(self, requests: Sequence[EvalRequest]) -> list[EvalResult]:
        from .ir import ParseError
        from .perfmodel import EstimateError, estimate_kernel

        out: list[EvalResult] = []
        for req in requests:
            try:
                est = estimate_kernel(
                    req.stencil, req.oc, req.setting, self._spec.name, grid=req.grid
                )
            except KernelLaunchError as e:
                out.append(EvalResult(error=e))
            except (OptimizationError, EstimateError, ParseError) as e:
                out.append(
                    EvalResult(error=KernelLaunchError(f"analytical: {e}"))
                )
            else:
                out.append(EvalResult(time_ms=est.time_ms))
        return out
