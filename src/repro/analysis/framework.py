"""Pass framework: analysis context, rule metadata, the analyzer driver.

A pass is a stateless object with a ``run(ctx)`` method returning
:class:`~repro.analysis.findings.Finding`s.  The :class:`AnalysisContext`
carries everything a pass may consult: the parsed IR, resolved macros,
and -- when the kernel came from the generator rather than a bare
snippet -- the originating ``(stencil, OC, setting)`` triple plus the
:class:`~repro.optimizations.kernelmodel.KernelProfile` the simulator
would price for it.  Passes that cross-check codegen against the model
require that context and skip cleanly without it, so the same analyzer
runs over golden snippets and over the full generated sweep.
"""

from __future__ import annotations

import hashlib
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import KernelLaunchError, OptimizationError
from ..optimizations import kernelmodel
from . import ir
from .findings import Baseline, Finding, Report, Severity, Suppressions

# ----------------------------------------------------------------------
# content-keyed parse memoization
# ----------------------------------------------------------------------
#: Maximum cached translation units; a full library sweep is a few
#: hundred sources, so this never evicts in practice.
PARSE_CACHE_CAPACITY = 4096

_parse_lock = threading.Lock()
_parse_cache: "OrderedDict[str, ir.TranslationUnit]" = OrderedDict()
_parse_hits = 0
_parse_misses = 0


def parse_unit_cached(source: str) -> ir.TranslationUnit:
    """Parse *source*, memoized on a content digest.

    Lint and the performance-model extraction walk the same emitted
    sources; keying on a BLAKE2b digest of the text means each distinct
    unit parses once per process regardless of which pass asks first.
    Callers treat the returned unit as read-only (every pass does).
    """
    global _parse_hits, _parse_misses
    key = hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()
    with _parse_lock:
        unit = _parse_cache.get(key)
        if unit is not None:
            _parse_hits += 1
            _parse_cache.move_to_end(key)
            return unit
    parsed = ir.parse_unit(source)  # parse outside the lock: it can raise
    with _parse_lock:
        _parse_misses += 1
        _parse_cache[key] = parsed
        _parse_cache.move_to_end(key)
        while len(_parse_cache) > PARSE_CACHE_CAPACITY:
            _parse_cache.popitem(last=False)
    return parsed


def parse_cache_info() -> dict:
    """Hit/miss counters, mirroring ``CachingBackend.cache_info``."""
    with _parse_lock:
        total = _parse_hits + _parse_misses
        return {
            "hits": _parse_hits,
            "misses": _parse_misses,
            "size": len(_parse_cache),
            "capacity": PARSE_CACHE_CAPACITY,
            "hit_rate": _parse_hits / total if total else 0.0,
        }


def clear_parse_cache() -> None:
    """Drop every cached unit and reset the counters."""
    global _parse_hits, _parse_misses
    with _parse_lock:
        _parse_cache.clear()
        _parse_hits = 0
        _parse_misses = 0


@dataclass(frozen=True)
class RuleInfo:
    """Documentation record for one rule id."""

    rule: str
    severity: Severity
    title: str
    rationale: str


@dataclass
class AnalysisContext:
    """Everything the passes can see about one translation unit."""

    source: str
    unit: ir.TranslationUnit
    macros: dict = field(default_factory=dict)
    stencil: object = None  # repro.stencil.Stencil | None
    oc: object = None  # repro.optimizations.OC | None
    setting: object = None  # repro.optimizations.ParamSetting | None
    grid: tuple | None = None
    profile: object = None  # KernelProfile | None
    profile_error: str | None = None
    gpu: object = None  # repro.gpu.GPUSpec | None (target device, if any)
    warp_size: int = 32  # scheduling width of the target device
    dialect: str = "cuda"  # source dialect ("cuda" | "hip")

    @property
    def has_model(self) -> bool:
        return self.profile is not None


class AnalysisPass(ABC):
    """Base class for analyzer passes."""

    #: Short machine name, used in ``repro lint --passes``.
    name: str = ""
    #: Rules this pass can emit (id -> documentation).
    rules: tuple = ()

    @abstractmethod
    def run(self, ctx: AnalysisContext) -> list:
        """Return the findings for *ctx* (possibly empty)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<pass {self.name}>"


def build_context(
    source: str,
    *,
    stencil=None,
    oc=None,
    setting=None,
    grid=None,
    gpu=None,
) -> AnalysisContext:
    """Parse *source* and attach model context when the triple is known.

    ``build_profile`` failures are carried as ``profile_error`` instead of
    raising: an infeasible configuration (e.g. a temporal halo consuming
    the tile) is a property of the triple, not a lint crash.

    ``gpu`` (a :class:`~repro.gpu.GPUSpec` or name) selects the target
    device: its scheduling width feeds the profile's coalescing model and
    the warp-sensitive rules, and the parsed ``// dialect:`` metadata (or
    the default ``"cuda"``) is recorded so dialect-aware passes can tell
    HIP from CUDA sources.
    """
    unit = parse_unit_cached(source)
    if gpu is not None and isinstance(gpu, str):
        from ..gpu.specs import get_gpu

        gpu = get_gpu(gpu)
    warp_size = 32 if gpu is None else gpu.warp_size
    profile = None
    profile_error = None
    if stencil is not None and oc is not None and setting is not None:
        try:
            if warp_size == 32:
                # Default width uses the legacy positional call so tests
                # (and tooling) that stub build_profile keep working.
                profile = kernelmodel.build_profile(stencil, oc, setting, grid)
            else:
                profile = kernelmodel.build_profile(
                    stencil, oc, setting, grid, warp_size=warp_size
                )
        except (KernelLaunchError, OptimizationError) as e:
            profile_error = str(e)
    return AnalysisContext(
        source=source,
        unit=unit,
        macros=dict(unit.macros),
        stencil=stencil,
        oc=oc,
        setting=setting,
        grid=grid,
        profile=profile,
        profile_error=profile_error,
        gpu=gpu,
        warp_size=warp_size,
        dialect=unit.meta.get("dialect", "cuda"),
    )


def default_passes() -> list:
    """The standard pass pipeline, in execution order."""
    from .rules_bounds import BoundsPass
    from .rules_conformance import ConformancePass
    from .rules_memory import MemoryAccessPass
    from .rules_race import RacePass
    from .rules_resources import ResourcePass

    return [RacePass(), BoundsPass(), ResourcePass(), ConformancePass(), MemoryAccessPass()]


def all_rules() -> list:
    """Documentation records for every registered rule, sorted by id."""
    return sorted(
        (info for p in default_passes() for info in p.rules),
        key=lambda r: r.rule,
    )


class Analyzer:
    """Runs a pass pipeline over one translation unit."""

    def __init__(self, passes: "list | None" = None):
        self.passes = default_passes() if passes is None else list(passes)

    def analyze(
        self,
        source: str,
        *,
        stencil=None,
        oc=None,
        setting=None,
        grid=None,
        gpu=None,
        baseline: "Baseline | None" = None,
    ) -> Report:
        """Analyze one source (CUDA or HIP); returns the filtered report."""
        suppressions = Suppressions.scan(source)
        try:
            ctx = build_context(
                source, stencil=stencil, oc=oc, setting=setting, grid=grid,
                gpu=gpu,
            )
        except Exception as e:  # ParseError or ExprError from the IR layer
            finding = Finding.make(
                "PARSE001",
                Severity.ERROR,
                f"cannot parse kernel source: {e}",
            )
            return Report.filtered([finding], suppressions, baseline)

        findings: list = []
        for p in self.passes:
            findings.extend(p.run(ctx))
        return Report.filtered(findings, suppressions, baseline)
