"""Pass framework: analysis context, rule metadata, the analyzer driver.

A pass is a stateless object with a ``run(ctx)`` method returning
:class:`~repro.analysis.findings.Finding`s.  The :class:`AnalysisContext`
carries everything a pass may consult: the parsed IR, resolved macros,
and -- when the kernel came from the generator rather than a bare
snippet -- the originating ``(stencil, OC, setting)`` triple plus the
:class:`~repro.optimizations.kernelmodel.KernelProfile` the simulator
would price for it.  Passes that cross-check codegen against the model
require that context and skip cleanly without it, so the same analyzer
runs over golden snippets and over the full generated sweep.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import KernelLaunchError, OptimizationError
from ..optimizations import kernelmodel
from . import ir
from .findings import Baseline, Finding, Report, Severity, Suppressions


@dataclass(frozen=True)
class RuleInfo:
    """Documentation record for one rule id."""

    rule: str
    severity: Severity
    title: str
    rationale: str


@dataclass
class AnalysisContext:
    """Everything the passes can see about one translation unit."""

    source: str
    unit: ir.TranslationUnit
    macros: dict = field(default_factory=dict)
    stencil: object = None  # repro.stencil.Stencil | None
    oc: object = None  # repro.optimizations.OC | None
    setting: object = None  # repro.optimizations.ParamSetting | None
    grid: tuple | None = None
    profile: object = None  # KernelProfile | None
    profile_error: str | None = None

    @property
    def has_model(self) -> bool:
        return self.profile is not None


class AnalysisPass(ABC):
    """Base class for analyzer passes."""

    #: Short machine name, used in ``repro lint --passes``.
    name: str = ""
    #: Rules this pass can emit (id -> documentation).
    rules: tuple = ()

    @abstractmethod
    def run(self, ctx: AnalysisContext) -> list:
        """Return the findings for *ctx* (possibly empty)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<pass {self.name}>"


def build_context(
    source: str,
    *,
    stencil=None,
    oc=None,
    setting=None,
    grid=None,
) -> AnalysisContext:
    """Parse *source* and attach model context when the triple is known.

    ``build_profile`` failures are carried as ``profile_error`` instead of
    raising: an infeasible configuration (e.g. a temporal halo consuming
    the tile) is a property of the triple, not a lint crash.
    """
    unit = ir.parse_unit(source)
    profile = None
    profile_error = None
    if stencil is not None and oc is not None and setting is not None:
        try:
            profile = kernelmodel.build_profile(stencil, oc, setting, grid)
        except (KernelLaunchError, OptimizationError) as e:
            profile_error = str(e)
    return AnalysisContext(
        source=source,
        unit=unit,
        macros=dict(unit.macros),
        stencil=stencil,
        oc=oc,
        setting=setting,
        grid=grid,
        profile=profile,
        profile_error=profile_error,
    )


def default_passes() -> list:
    """The standard pass pipeline, in execution order."""
    from .rules_bounds import BoundsPass
    from .rules_conformance import ConformancePass
    from .rules_memory import MemoryAccessPass
    from .rules_race import RacePass
    from .rules_resources import ResourcePass

    return [RacePass(), BoundsPass(), ResourcePass(), ConformancePass(), MemoryAccessPass()]


def all_rules() -> list:
    """Documentation records for every registered rule, sorted by id."""
    return sorted(
        (info for p in default_passes() for info in p.rules),
        key=lambda r: r.rule,
    )


class Analyzer:
    """Runs a pass pipeline over one translation unit."""

    def __init__(self, passes: "list | None" = None):
        self.passes = default_passes() if passes is None else list(passes)

    def analyze(
        self,
        source: str,
        *,
        stencil=None,
        oc=None,
        setting=None,
        grid=None,
        baseline: "Baseline | None" = None,
    ) -> Report:
        """Analyze one CUDA source; returns the suppression-filtered report."""
        suppressions = Suppressions.scan(source)
        try:
            ctx = build_context(
                source, stencil=stencil, oc=oc, setting=setting, grid=grid
            )
        except Exception as e:  # ParseError or ExprError from the IR layer
            finding = Finding.make(
                "PARSE001",
                Severity.ERROR,
                f"cannot parse kernel source: {e}",
            )
            return Report.filtered([finding], suppressions, baseline)

        findings: list = []
        for p in self.passes:
            findings.extend(p.run(ctx))
        return Report.filtered(findings, suppressions, baseline)
