"""Structural IR for generated CUDA kernels.

:func:`parse_unit` turns the text emitted by
:class:`repro.codegen.CudaKernelGenerator` (or any source in the same
C subset) into a small tree the analysis passes walk:

- preprocessor macros, resolved to numeric values in definition order;
- one :class:`Kernel` per ``__global__`` function: declarations (scalar,
  register-array and ``__shared__``), ``for`` loops, ``if`` guards,
  ``__syncthreads()`` barriers, ``#pragma`` annotations, assignments and
  bare intrinsic calls -- each carrying its 1-based source line;
- the host launcher's block/grid geometry and time-step loop.

The parser is line-structured (the generator emits one statement per
line with braces K&R-style), but statements are split on top-level
semicolons so fused lines like ``acc += partial; partial = 0.0;`` parse
as two statements.  Unknown constructs raise :class:`ParseError` with
the offending line rather than mis-filing silently: the IR is a
correctness tool, and a parser that guesses would launder real drift.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import ReproError
from . import expr as E


class ParseError(ReproError):
    """The kernel source does not fit the generator's C subset."""


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    line: int


@dataclass
class VarDecl(Stmt):
    """Scalar, register-array or ``__shared__`` declaration."""

    name: str
    ctype: str
    shared: bool = False
    const: bool = False
    pointer: bool = False
    dims: tuple = ()  # expression ASTs, outermost first
    init: object = None  # expression AST or None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class Pragma(Stmt):
    text: str


@dataclass
class Barrier(Stmt):
    pass


@dataclass
class For(Stmt):
    var: str
    init: object  # expression AST or None
    cond: object  # expression AST or None
    step: str = ""
    body: list = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: object
    body: list = field(default_factory=list)


@dataclass
class Assign(Stmt):
    target: object  # Name or Index AST
    op: str  # "=" or "+="
    value: object


@dataclass
class CallStmt(Stmt):
    call: E.Call


# ----------------------------------------------------------------------
# containers
# ----------------------------------------------------------------------
@dataclass
class Kernel:
    name: str
    params: tuple[str, ...]
    body: list
    line: int

    def shared_arrays(self) -> dict[str, VarDecl]:
        return {
            s.name: s
            for s, _ in walk_stmts(self.body)
            if isinstance(s, VarDecl) and s.shared
        }

    def declarations(self) -> dict[str, VarDecl]:
        return {
            s.name: s for s, _ in walk_stmts(self.body) if isinstance(s, VarDecl)
        }

    def barriers(self) -> list[Barrier]:
        return [s for s, _ in walk_stmts(self.body) if isinstance(s, Barrier)]


@dataclass
class Host:
    block_dims: tuple  # expression ASTs (x, y, z)
    grid_dims: tuple
    launches: object  # step-loop bound AST or None
    launched_kernel: str | None
    line: int


@dataclass
class TranslationUnit:
    source: str
    macros: dict[str, float]
    macro_asts: dict[str, object]
    kernels: list[Kernel]
    host: Host | None
    meta: dict[str, str]

    @property
    def kernel(self) -> Kernel:
        if not self.kernels:
            raise ParseError("translation unit has no __global__ kernel")
        return self.kernels[0]


def walk_stmts(stmts, ancestors=()):
    """Yield ``(stmt, ancestors)`` pairs in source order, depth-first."""
    for s in stmts:
        yield s, ancestors
        if isinstance(s, (For, If)):
            yield from walk_stmts(s.body, ancestors + (s,))


# ----------------------------------------------------------------------
# lexical helpers
# ----------------------------------------------------------------------
_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_LINE_COMMENT_RE = re.compile(r"//.*$")


def strip_comments(line: str) -> str:
    return _LINE_COMMENT_RE.sub("", _BLOCK_COMMENT_RE.sub("", line)).strip()


def split_top(text: str, sep: str) -> list[str]:
    """Split on *sep* at zero paren/bracket depth."""
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


_DEFINE_RE = re.compile(r"#define\s+(\w+)\s+(.+)$")
_KERNEL_RE = re.compile(r"__global__\s+void\s+(\w+)\s*\((.*)\)\s*(\{)?\s*$")
_HOST_RE = re.compile(r"int\s+run\s*\(")
_DECL_RE = re.compile(
    r"^(?:(?P<shared>__shared__)\s+)?(?:(?P<const>const)\s+)?"
    r"(?P<ctype>double|float|int|unsigned|long|dim3)(?P<ptr>\s*\*+)?\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?P<rest>.*)$"
)
_FOR_RE = re.compile(r"^for\s*\((?P<header>.*)\)\s*\{$")
_IF_RE = re.compile(r"^if\s*\((?P<cond>.*)\)\s*\{$")
_DIM3_RE = re.compile(r"^dim3\s+(\w+)\s*\((.*)\)\s*;?$")
_LAUNCH_RE = re.compile(r"^(\w+)\s*<<<\s*(\w+)\s*,\s*(\w+)\s*>>>\s*\((.*)\)\s*;?$")
_HIP_LAUNCH_RE = re.compile(
    r"^hipLaunchKernelGGL\s*\(\s*(\w+)\s*,\s*(\w+)\s*,\s*(\w+)\s*,"
    r"\s*0\s*,\s*0\s*,\s*(.*)\)\s*;?$"
)

CTYPE_SIZE = {"double": 8, "float": 4, "int": 4, "unsigned": 4, "long": 8}


def _parse_dims(rest: str):
    """Parse a leading ``[d0][d1]...`` chain; returns (dims, remainder)."""
    dims, i = [], 0
    while i < len(rest) and rest[i] == "[":
        depth, j = 0, i
        while j < len(rest):
            if rest[j] == "[":
                depth += 1
            elif rest[j] == "]":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if depth != 0:
            raise ParseError(f"unbalanced brackets in {rest!r}")
        dims.append(E.parse_expr(rest[i + 1:j]))
        i = j + 1
        while i < len(rest) and rest[i] == " ":
            i += 1
    return tuple(dims), rest[i:]


def _parse_decl(text: str, line: int) -> VarDecl:
    m = _DECL_RE.match(text)
    if m is None:
        raise ParseError(f"line {line}: cannot parse declaration {text!r}")
    rest = m.group("rest").strip().rstrip(";").strip()
    dims: tuple = ()
    init = None
    if rest.startswith("["):
        dims, rest = _parse_dims(rest)
        rest = rest.strip()
    if rest.startswith("="):
        init = E.parse_expr(rest[1:].strip())
    elif rest:
        raise ParseError(f"line {line}: trailing {rest!r} in declaration {text!r}")
    return VarDecl(
        line=line,
        name=m.group("name"),
        ctype=m.group("ctype"),
        shared=bool(m.group("shared")),
        const=bool(m.group("const")),
        pointer=bool(m.group("ptr")),
        dims=dims,
        init=init,
    )


def _parse_simple(text: str, line: int):
    """One brace-free statement: decl, assign, call or barrier."""
    body = text.rstrip(";").strip()
    if body == "__syncthreads()":
        return Barrier(line=line)
    if _DECL_RE.match(body) and not re.match(r"^\w+\s*[\[(=+]", body):
        return _parse_decl(body, line)
    for op in ("+=", "-=", "*="):
        parts = split_top(body, op[0])
        if len(parts) == 2 and parts[1].startswith("="):
            return Assign(
                line=line,
                target=E.parse_expr(parts[0].strip()),
                op=op,
                value=E.parse_expr(parts[1][1:].strip()),
            )
    eq = split_top(body, "=")
    if len(eq) == 2 and not body.startswith("=="):
        return Assign(
            line=line,
            target=E.parse_expr(eq[0].strip()),
            op="=",
            value=E.parse_expr(eq[1].strip()),
        )
    node = E.parse_expr(body)
    if isinstance(node, E.Call):
        return CallStmt(line=line, call=node)
    raise ParseError(f"line {line}: cannot classify statement {text!r}")


def _parse_for(header: str, line: int) -> For:
    parts = split_top(header, ";")
    if len(parts) != 3:
        raise ParseError(f"line {line}: malformed for-header {header!r}")
    init_text, cond_text, step_text = (p.strip() for p in parts)
    var, init = "", None
    if init_text:
        m = re.match(r"^(?:(?:const\s+)?(?:int|unsigned|long)\s+)?(\w+)\s*=\s*(.+)$", init_text)
        if m is None:
            raise ParseError(f"line {line}: malformed for-init {init_text!r}")
        var, init = m.group(1), E.parse_expr(m.group(2))
    cond = E.parse_expr(cond_text) if cond_text else None
    return For(line=line, var=var, init=init, cond=cond, step=step_text, body=[])


# ----------------------------------------------------------------------
# top-level parser
# ----------------------------------------------------------------------
def _parse_block(lines, i):
    """Parse statements until the matching ``}``; returns (stmts, next_i)."""
    stmts: list = []
    while i < len(lines):
        lineno, text = lines[i]
        if text == "}":
            return stmts, i + 1
        if text.startswith("#pragma"):
            stmts.append(Pragma(line=lineno, text=text))
            i += 1
            continue
        m = _FOR_RE.match(text)
        if m is not None:
            loop = _parse_for(m.group("header"), lineno)
            loop.body, i = _parse_block(lines, i + 1)
            stmts.append(loop)
            continue
        m = _IF_RE.match(text)
        if m is not None:
            node = If(line=lineno, cond=E.parse_expr(m.group("cond")), body=[])
            node.body, i = _parse_block(lines, i + 1)
            stmts.append(node)
            continue
        if text.endswith("{") or "<<<" in text:
            # Nested unknown block or a launch inside the kernel: out of
            # subset for kernel bodies.
            raise ParseError(f"line {lineno}: unsupported construct {text!r}")
        for piece in split_top(text, ";"):
            piece = piece.strip()
            if piece:
                stmts.append(_parse_simple(piece + ";", lineno))
        i += 1
    raise ParseError("unterminated block (missing '}')")


def _parse_host(lines, i, macros) -> tuple[Host, int]:
    start = lines[i][0]
    block_dims: tuple = (E.Num(1), E.Num(1), E.Num(1))
    grid_dims: tuple = (E.Num(1), E.Num(1), E.Num(1))
    launches = None
    launched = None
    depth = 0
    while i < len(lines):
        lineno, text = lines[i]
        depth += text.count("{") - text.count("}")
        m = _DIM3_RE.match(text)
        if m is not None:
            dims = tuple(E.parse_expr(p.strip()) for p in split_top(m.group(2), ","))
            dims = dims + (E.Num(1),) * (3 - len(dims))
            if m.group(1) == "block":
                block_dims = dims
            elif m.group(1) == "grid":
                grid_dims = dims
        m = _FOR_RE.match(text)
        if m is not None:
            loop = _parse_for(m.group("header"), lineno)
            if loop.var == "step":
                launches = _upper_bound(loop.cond)
        m = _LAUNCH_RE.match(text) or _HIP_LAUNCH_RE.match(text)
        if m is not None:
            launched = m.group(1)
        i += 1
        if depth == 0 and "{" not in text and launched is not None and text == "}":
            break
    return Host(
        block_dims=block_dims,
        grid_dims=grid_dims,
        launches=launches,
        launched_kernel=launched,
        line=start,
    ), i


def _upper_bound(cond):
    """Bound expression of a ``var < bound`` loop condition."""
    if isinstance(cond, E.Bin) and cond.op == "<":
        return cond.rhs
    return None


_META_RE = re.compile(
    r"//\s*(stencil|optimization combination|grid|dialect):\s*(.+)$"
)


def parse_unit(source: str) -> TranslationUnit:
    """Parse a generated translation unit (or bare kernel) into IR."""
    macro_asts: dict[str, object] = {}
    macros: dict[str, float] = {}
    meta: dict[str, str] = {}
    kernels: list[Kernel] = []
    host: Host | None = None

    raw = source.splitlines()
    # First sweep: macros and header metadata (comments carry provenance).
    for lineno, line in enumerate(raw, 1):
        mm = _META_RE.search(line)
        if mm is not None:
            meta[mm.group(1)] = mm.group(2).strip()
        text = strip_comments(line)
        m = _DEFINE_RE.match(text)
        if m is not None:
            try:
                ast = E.parse_expr(m.group(2).strip())
            except E.ExprError:
                continue  # non-arithmetic macro: irrelevant to analysis
            macro_asts[m.group(1)] = ast
            value = E.eval_const(ast, macros)
            if value is not None:
                macros[m.group(1)] = value

    # Second sweep: kernels and the host launcher.
    lines = [(n, strip_comments(line)) for n, line in enumerate(raw, 1)]
    lines = [(n, t) for n, t in lines if t and not t.startswith(("#include", "#define"))]
    i = 0
    while i < len(lines):
        lineno, text = lines[i]
        m = _KERNEL_RE.match(text)
        if m is not None:
            params = tuple(
                p.strip().split()[-1].lstrip("*")
                for p in split_top(m.group(2), ",")
                if p.strip()
            )
            i += 1
            if m.group(3) is None:
                if i >= len(lines) or lines[i][1] != "{":
                    raise ParseError(f"line {lineno}: kernel body must open with '{{'")
                i += 1
            body, i = _parse_block(lines, i)
            kernels.append(Kernel(name=m.group(1), params=params, body=body, line=lineno))
            continue
        if _HOST_RE.match(text):
            host, i = _parse_host(lines, i, macros)
            continue
        i += 1

    return TranslationUnit(
        source=source,
        macros=macros,
        macro_asts=macro_asts,
        kernels=kernels,
        host=host,
        meta=meta,
    )
