"""Codegen-model resource consistency (rules RES001-RES005).

The analytical model (:mod:`repro.optimizations.kernelmodel`) prices a
kernel by the resources it *claims* the generated code uses.  This pass
re-derives the same quantities from the source itself -- shared-memory
bytes from the ``__shared__`` declarations, the register plane-queue
length from its declaration, launch geometry from the host ``dim3``
setup -- and fails loudly when the two sides disagree.  Every future
edit to either the generator or the model runs through this gate, so
they cannot drift apart silently again.

Rules
-----
- RES001: declared ``__shared__`` bytes != model ``smem_per_block``.
- RES002: register plane-queue length != model queue length.
- RES003: host launch geometry (threads/block, blocks, launches) != model.
- RES004: static ``__shared__`` allocation beyond the 48 KiB limit a
  plain (non-dynamic) allocation can use on any evaluated GPU (warning).
- RES005: the model rejected the configuration outright (info; the
  sweep samples around infeasible points).
"""

from __future__ import annotations

import math

from ..optimizations import kernelmodel
from . import expr as E
from . import ir
from .findings import Finding, Severity
from .framework import AnalysisPass, RuleInfo

#: Largest static __shared__ allocation accepted by nvcc without opt-in
#: dynamic shared memory, across all evaluated architectures.
STATIC_SMEM_LIMIT = 48 * 1024


class ResourcePass(AnalysisPass):
    name = "resources"
    rules = (
        RuleInfo(
            "RES001",
            Severity.ERROR,
            "declared shared memory != model claim",
            "The simulator prices occupancy and smem traffic from "
            "smem_per_block; a mismatched declaration means the model "
            "times a different kernel than the generator emits.",
        ),
        RuleInfo(
            "RES002",
            Severity.ERROR,
            "register plane-queue length != model claim",
            "The streaming register-pressure model is keyed to the queue "
            "length; a drifted declaration invalidates the register and "
            "occupancy estimates.",
        ),
        RuleInfo(
            "RES003",
            Severity.ERROR,
            "host launch geometry != model claim",
            "threads/block, block count and launch count must match the "
            "profile the simulator prices.",
        ),
        RuleInfo(
            "RES004",
            Severity.WARNING,
            "static shared allocation exceeds 48 KiB",
            "A static __shared__ array beyond 48 KiB fails to compile "
            "without dynamic shared memory opt-in.",
        ),
        RuleInfo(
            "RES005",
            Severity.INFO,
            "model rejects the configuration",
            "build_profile raised for this triple; the kernel source "
            "cannot be cross-checked against a model claim.",
        ),
    )

    def run(self, ctx) -> list:
        findings: list = []
        if ctx.profile_error is not None:
            findings.append(
                Finding.make(
                    "RES005",
                    Severity.INFO,
                    f"analytical model rejects this configuration: "
                    f"{ctx.profile_error}",
                )
            )
            return findings

        for kernel in ctx.unit.kernels:
            findings.extend(self._check_smem(ctx, kernel))
            if ctx.has_model:
                findings.extend(self._check_register_queue(ctx, kernel))
        if ctx.has_model and ctx.unit.host is not None:
            findings.extend(self._check_launch_geometry(ctx))
        return findings

    # ------------------------------------------------------------------
    def _declared_smem(self, ctx, kernel: ir.Kernel) -> "tuple[int, int] | None":
        """(total bytes, first declaration line); None when not constant."""
        total, line = 0, 0
        for decl in kernel.shared_arrays().values():
            cells = 1
            for dim in decl.dims:
                v = E.eval_const(dim, ctx.macros)
                if v is None:
                    return None
                cells *= int(v)
            total += cells * ir.CTYPE_SIZE.get(decl.ctype, 8)
            line = line or decl.line
        return total, line

    def _check_smem(self, ctx, kernel: ir.Kernel) -> list:
        findings: list = []
        declared = self._declared_smem(ctx, kernel)
        if declared is None:
            return findings
        total, line = declared
        if total > STATIC_SMEM_LIMIT:
            findings.append(
                Finding.make(
                    "RES004",
                    Severity.WARNING,
                    f"static __shared__ allocation of {total} bytes exceeds "
                    f"the {STATIC_SMEM_LIMIT}-byte static limit",
                    line=line,
                    kernel=kernel.name,
                    declared=total,
                )
            )
        if ctx.has_model and total != ctx.profile.smem_per_block:
            findings.append(
                Finding.make(
                    "RES001",
                    Severity.ERROR,
                    f"kernel declares {total} shared bytes but the model "
                    f"claims {ctx.profile.smem_per_block} for "
                    f"{self._triple(ctx)} -- codegen and kernelmodel have "
                    "drifted",
                    line=line,
                    kernel=kernel.name,
                    declared=total,
                    model=ctx.profile.smem_per_block,
                )
            )
        return findings

    # ------------------------------------------------------------------
    def _check_register_queue(self, ctx, kernel: ir.Kernel) -> list:
        findings: list = []
        oc, setting = ctx.oc, ctx.setting
        if oc is None or setting is None or "ST" not in oc:
            return findings
        use_smem = bool(setting["use_smem"]) or "TB" in oc
        if use_smem:
            return findings
        queue_decls = [
            d
            for d in kernel.declarations().values()
            if d.is_array and not d.shared and len(d.dims) == 1
        ]
        if not queue_decls:
            return findings  # absence is the conformance pass's finding
        decl = queue_decls[0]
        declared = E.eval_const(decl.dims[0], ctx.macros)
        if declared is None:
            return findings
        expected = kernelmodel.register_queue_planes(
            ctx.stencil, oc, setting
        ) * setting["stream_unroll"]
        if int(declared) != expected:
            findings.append(
                Finding.make(
                    "RES002",
                    Severity.ERROR,
                    f"register plane queue {decl.name!r} holds {int(declared)} "
                    f"entries but the model claims {expected} for "
                    f"{self._triple(ctx)}",
                    line=decl.line,
                    kernel=kernel.name,
                    declared=int(declared),
                    model=expected,
                )
            )
        return findings

    # ------------------------------------------------------------------
    def _check_launch_geometry(self, ctx) -> list:
        findings: list = []
        host = ctx.unit.host
        profile = ctx.profile

        threads = self._prod(host.block_dims, ctx.macros)
        if threads is not None and threads != profile.threads_per_block:
            findings.append(
                Finding.make(
                    "RES003",
                    Severity.ERROR,
                    f"host launches {threads} threads/block but the model "
                    f"claims {profile.threads_per_block}",
                    line=host.line,
                    declared=threads,
                    model=profile.threads_per_block,
                )
            )
        blocks = self._prod(host.grid_dims, ctx.macros)
        if blocks is not None and blocks != profile.n_blocks:
            findings.append(
                Finding.make(
                    "RES003",
                    Severity.ERROR,
                    f"host launches {blocks} blocks but the model claims "
                    f"{profile.n_blocks}",
                    line=host.line,
                    declared=blocks,
                    model=profile.n_blocks,
                )
            )
        if host.launches is not None:
            launches = E.eval_const(host.launches, ctx.macros)
            if launches is not None and int(launches) != profile.launches:
                findings.append(
                    Finding.make(
                        "RES003",
                        Severity.ERROR,
                        f"host performs {int(launches)} launches but the "
                        f"model claims {profile.launches}",
                        line=host.line,
                        declared=int(launches),
                        model=profile.launches,
                    )
                )
        return findings

    @staticmethod
    def _prod(dims, macros) -> "int | None":
        total = 1
        for d in dims:
            v = E.eval_const(d, macros)
            if v is None:
                return None
            total *= int(v)
        return int(total) if not math.isinf(total) else None

    @staticmethod
    def _triple(ctx) -> str:
        stencil = getattr(ctx.stencil, "name", "") or "stencil"
        oc = getattr(ctx.oc, "name", "?")
        return f"({stencil}, {oc})"
