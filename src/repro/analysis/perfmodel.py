"""Analytical performance estimation from generated kernel source.

Where :mod:`repro.optimizations.kernelmodel` characterizes a kernel from
the *intent* (stencil, OC, parameter setting), this module recovers the
same first-order quantities from the *emitted CUDA source alone*: a
static-analysis pass pipeline over the structural IR
(:mod:`repro.analysis.ir` / :mod:`repro.analysis.expr` /
:mod:`repro.analysis.semantics`) extracts per-kernel metrics --

- launch geometry (block/grid dims, launch count) from the host
  launcher and macros;
- the tap set (per-axis offsets of every global load) via row-major
  flat-index decomposition, giving footprints, halos and per-cache-level
  memory volumes through the same interval/footprint reasoning the
  bounds checker uses;
- warp-level coalescing classification from the affine
  ``threadIdx.x``-stride of the contiguous-axis coordinate, resolved
  through declaration chains;
- shared-memory bytes, queue depth and bank-conflict estimates from the
  ``__shared__`` declarations;
- FLOP counts from the accumulation statements;
- streaming / merge / retiming / prefetch / temporal structure from the
  loop nest and the staging intrinsics.

The metrics are composed into a roofline-style time estimate by reusing
the centralized composition in :class:`repro.gpu.simulator.GPUSimulator`
(occupancy-derived latency hiding, smooth-max phase combination, wave
quantization, streaming stalls) -- so the analytical estimate and the
measurement substrate share one timing formulation, and the estimate
needs **no profiling campaign**: source in, milliseconds out.

Nothing here inspects the generator's inputs: remove the stencil/OC
provenance comments from the source and the estimate is unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from ..errors import KernelLaunchError, ReproError
from . import expr as E
from . import ir
from . import semantics as S

#: Bytes per grid cell (double precision throughout).
WORD = 8


class EstimateError(ReproError):
    """The source is outside the shape the metric extractor understands."""


# ----------------------------------------------------------------------
# extracted metrics
# ----------------------------------------------------------------------
@dataclass
class KernelMetrics:
    """Source-level facts about one generated kernel.

    Everything is derived from the translation unit text; axis 0 is the
    contiguous dimension, offsets follow ``(off_x, off_y[, off_z])``.
    """

    kernel_name: str = ""
    ndim: int = 0
    dims: tuple[int, ...] = ()  # grid extents from the N* macros
    block_dims: tuple[int, ...] = (1, 1, 1)  # hardware block shape
    threads_per_block: int = 1
    n_blocks: int = 1
    launches: int = 1
    time_steps: int = 1  # TIME_STEPS macro (sweeps per run)

    # Access structure.
    taps: tuple[tuple[int, ...], ...] = ()  # per-axis load offsets
    stores: int = 0
    extents: tuple[int, ...] = ()  # per-axis max |offset|
    coverage: tuple[int, ...] = ()  # per-axis outputs per block
    tx_stride: float = 0.0  # threadIdx.x stride in the flat index
    coalescing: float = 1.0

    # Optimization structure recovered from the loop nest.
    scheme: str = "cache"  # cache | register-stream | smem-stream | smem-tile
    stream_axis: int | None = None
    stream_tiles: int = 1
    stream_unroll: int = 1
    stream_iters: int = 0
    merge_axis: int | None = None
    merge_factor: int = 1
    merge_step: int = 0  # 1 = adjacent (BM), >1 = cyclic (CM)
    prefetch: bool = False
    retimed: bool = False
    temporal_steps: int = 1

    # Resources.
    smem_per_block: int = 0
    smem_queue_planes: int = 0
    smem_footprint: tuple[int, ...] = ()  # staged cells per axis, x first
    bank_conflict_factor: float = 1.0
    register_array_cells: int = 0
    scalar_decls: int = 0
    regs_per_thread: int = 0
    spilled_regs: int = 0

    # Work.
    flops_per_point: float = 0.0  # roofline convention (2*taps - 1)
    source_flops_per_point: float = 0.0  # literal source operation count

    # Derived per-launch volumes (filled by the volume pass).
    points: int = 0
    read_bytes_base: float = 0.0
    read_amplification: float = 1.0
    reuse_window_bytes: float = 0.0
    write_bytes: float = 0.0
    l2_bytes: float = 0.0
    smem_bytes: float = 0.0
    flops: float = 0.0
    redundancy: float = 1.0

    notes: list[str] = field(default_factory=list)

    @property
    def footprint_cells(self) -> int:
        """Cells one block touches per stream position (halo included)."""
        if self.smem_footprint:
            return math.prod(self.smem_footprint)
        cells = 1
        for a in range(self.ndim):
            if a == self.stream_axis:
                continue
            cells *= self.coverage[a] + 2 * self.extents[a]
        return cells

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel_name,
            "ndim": self.ndim,
            "dims": list(self.dims),
            "block_dims": list(self.block_dims),
            "threads_per_block": self.threads_per_block,
            "n_blocks": self.n_blocks,
            "launches": self.launches,
            "taps": sorted(list(t) for t in self.taps),
            "extents": list(self.extents),
            "coverage": list(self.coverage),
            "footprint_cells": self.footprint_cells,
            "tx_stride": self.tx_stride,
            "coalescing": round(self.coalescing, 4),
            "scheme": self.scheme,
            "stream_axis": self.stream_axis,
            "stream_iters": self.stream_iters,
            "merge_factor": self.merge_factor,
            "merge_axis": self.merge_axis,
            "prefetch": self.prefetch,
            "retimed": self.retimed,
            "temporal_steps": self.temporal_steps,
            "smem_per_block": self.smem_per_block,
            "smem_queue_planes": self.smem_queue_planes,
            "bank_conflict_factor": self.bank_conflict_factor,
            "regs_per_thread": self.regs_per_thread,
            "flops_per_point": self.flops_per_point,
            "source_flops_per_point": self.source_flops_per_point,
            "points": self.points,
            "read_bytes_base": self.read_bytes_base,
            "read_amplification": self.read_amplification,
            "reuse_window_bytes": self.reuse_window_bytes,
            "write_bytes": self.write_bytes,
            "l2_bytes": self.l2_bytes,
            "smem_bytes": self.smem_bytes,
            "flops": self.flops,
        }


# ----------------------------------------------------------------------
# expression helpers
# ----------------------------------------------------------------------
def _const_env(unit: ir.TranslationUnit, kernel: ir.Kernel) -> dict[str, float]:
    """Macros plus every kernel-local declaration that folds to a constant."""
    env = dict(unit.macros)
    for stmt, _ in ir.walk_stmts(kernel.body):
        if isinstance(stmt, ir.VarDecl) and stmt.init is not None:
            v = E.eval_const(stmt.init, env)
            if v is not None:
                env[stmt.name] = v
    return env


def _linear_coeff(node, var: str, decls, env, _seen=frozenset()):
    """Coefficient of *var* in *node*, resolving declaration chains.

    Returns ``None`` when the expression is not affine in *var*; names
    that are neither *var* nor resolvable declarations contribute 0
    (loop counters and other builtins are warp-uniform or handled by
    their own axis).
    """
    if isinstance(node, E.Num):
        return 0.0
    if isinstance(node, E.Name):
        if node.id == var:
            return 1.0
        decl = decls.get(node.id)
        if decl is not None and decl.init is not None and node.id not in _seen:
            return _linear_coeff(decl.init, var, decls, env, _seen | {node.id})
        return 0.0
    if isinstance(node, E.Unary):
        inner = _linear_coeff(node.operand, var, decls, env, _seen)
        if inner is None:
            return None
        return -inner if node.op == "-" else (0.0 if inner == 0 else None)
    if isinstance(node, E.Bin):
        lhs = _linear_coeff(node.lhs, var, decls, env, _seen)
        rhs = _linear_coeff(node.rhs, var, decls, env, _seen)
        if lhs is None or rhs is None:
            return None
        if node.op == "+":
            return lhs + rhs
        if node.op == "-":
            return lhs - rhs
        if node.op == "*":
            coeff = 0.0
            if lhs:
                c = E.eval_const(node.rhs, env)
                if c is None:
                    return None
                coeff += lhs * c
            if rhs:
                c = E.eval_const(node.lhs, env)
                if c is None:
                    return None
                coeff += rhs * c
            return coeff
        if node.op in ("/", "%"):
            return 0.0 if lhs == 0 and rhs == 0 else None
        return 0.0 if lhs == 0 and rhs == 0 else None
    if isinstance(node, E.Call):
        coeffs = [_linear_coeff(a, var, decls, env, _seen) for a in node.args]
        if any(c is None for c in coeffs):
            return None
        return 0.0 if all(c == 0 for c in coeffs) else None
    return None


def _count_flops(node) -> tuple[int, int]:
    """(adds, muls) in an expression, skipping index arithmetic."""
    if isinstance(node, E.Index):
        return 0, 0  # subscript arithmetic is address, not FLOPs
    if isinstance(node, E.Bin):
        la, lm = _count_flops(node.lhs)
        ra, rm = _count_flops(node.rhs)
        return la + ra + (1 if node.op in ("+", "-") else 0), lm + rm + (
            1 if node.op == "*" else 0
        )
    if isinstance(node, E.Unary):
        return _count_flops(node.operand)
    if isinstance(node, E.Call):
        adds = muls = 0
        for a in node.args:
            x, y = _count_flops(a)
            adds, muls = adds + x, muls + y
        return adds, muls
    return 0, 0


# ----------------------------------------------------------------------
# extraction passes
# ----------------------------------------------------------------------
class MetricPass:
    """One step of the extraction pipeline; mutates the metrics record."""

    name = "metric"

    def run(self, unit: ir.TranslationUnit, kernel: ir.Kernel, m: KernelMetrics) -> None:
        raise NotImplementedError


class LaunchPass(MetricPass):
    """Grid extents, block/grid geometry and launch count."""

    name = "launch"

    def run(self, unit, kernel, m):
        m.kernel_name = kernel.name
        m.ndim = S.grid_rank(unit.macros)
        if m.ndim == 0:
            raise EstimateError("no N* grid macros: cannot size the problem")
        m.dims = tuple(int(unit.macros[S.axis_macro(a)]) for a in range(m.ndim))
        m.points = math.prod(m.dims)
        m.time_steps = int(unit.macros.get("TIME_STEPS", 1))
        if unit.host is None:
            raise EstimateError("no host launcher: launch geometry unknown")
        block = [E.eval_const(d, unit.macros) for d in unit.host.block_dims]
        grid = [E.eval_const(d, unit.macros) for d in unit.host.grid_dims]
        if any(v is None or v < 1 for v in block + grid):
            raise EstimateError("non-constant block/grid dimensions")
        m.block_dims = tuple(int(v) for v in block)
        m.threads_per_block = math.prod(m.block_dims)
        m.n_blocks = math.prod(int(v) for v in grid)
        launches = None
        if unit.host.launches is not None:
            launches = E.eval_const(unit.host.launches, unit.macros)
        m.launches = int(launches) if launches else 1
        m.stream_tiles = int(unit.macros.get("STREAM_TILES", 1))
        m.stream_unroll = int(unit.macros.get("STREAM_UNROLL", 1))
        m.temporal_steps = int(unit.macros.get("TSTEPS", 1))


class AccessPass(MetricPass):
    """Tap set, store, loop roles (stream / merge) and coverage."""

    name = "access"

    def run(self, unit, kernel, m):
        decls = kernel.declarations()
        env = _const_env(unit, kernel)
        store_coords = None
        store_ancestors = ()
        taps: set[tuple[int, ...]] = set()
        stores = 0

        for stmt, ancestors in ir.walk_stmts(kernel.body):
            if not isinstance(stmt, ir.Assign):
                continue
            for node in E.walk(stmt.value) + E.walk(stmt.target):
                if not (isinstance(node, E.Index) and isinstance(node.base, E.Name)):
                    continue
                if node.base.id not in S.GLOBAL_ARRAYS or len(node.indices) != 1:
                    continue
                coords = S.decompose_flat_index(node.indices[0], m.ndim)
                if coords is None:
                    continue  # staging access (e.g. prefetch _plane_index)
                parts = [S.coord_parts(c) for c in coords]
                if any(p is None for p in parts):
                    continue
                offsets = tuple(int(p[1]) for p in parts)
                if node.base.id == "out":
                    stores += 1
                    store_coords = [p[0] for p in parts]
                    store_ancestors = ancestors
                else:
                    taps.add(offsets)

        if store_coords is None or not taps:
            raise EstimateError(
                f"kernel {kernel.name!r} has no decomposable global accesses"
            )
        m.taps = tuple(sorted(taps))
        m.stores = stores
        m.extents = tuple(
            max(abs(t[a]) for t in m.taps) for a in range(m.ndim)
        )

        # Loop roles: a surrounding loop whose variable *is* a coordinate
        # base streams that axis; a constant-trip loop whose variable
        # feeds a coordinate declaration merges that axis.
        for loop in (s for s in store_ancestors if isinstance(s, ir.For)):
            if loop.var in store_coords:
                m.stream_axis = store_coords.index(loop.var)
                continue
            trip = self._trip_count(loop, env)
            if trip is None or trip < 2:
                continue
            for axis, base in enumerate(store_coords):
                decl = decls.get(base)
                if decl is None or decl.init is None:
                    continue
                if loop.var in E.names_in(decl.init):
                    m.merge_axis = axis
                    m.merge_factor = int(trip)
                    step = _linear_coeff(decl.init, loop.var, decls, env)
                    m.merge_step = int(step) if step else 0

        # Per-axis coverage: the blockIdx coefficient of each coordinate;
        # the stream axis is covered by the per-block tile length instead.
        coverage = []
        for axis, base in enumerate(store_coords):
            if axis == m.stream_axis:
                tile_len = env.get("tile_len")
                if tile_len is None:
                    tile_len = m.dims[axis] / max(1, m.stream_tiles)
                coverage.append(int(tile_len))
                continue
            expr = E.Name(base)
            cov = None
            for bdim in ("x", "y", "z"):
                c = _linear_coeff(expr, f"blockIdx.{bdim}", decls, env)
                if c:
                    cov = abs(c)
                    break
            if not cov:
                raise EstimateError(
                    f"coordinate {base!r} has no blockIdx coverage"
                )
            coverage.append(int(cov))
        m.coverage = tuple(coverage)

        # Streaming iteration count per launch.
        if m.stream_axis is not None:
            tile_len = m.coverage[m.stream_axis]
            m.stream_iters = math.ceil(tile_len / max(1, m.stream_unroll))

        # Warp-level coalescing: the threadIdx.x stride of the flat index.
        pitch = 1.0
        stride = 0.0
        ok = True
        for axis, base in enumerate(store_coords):
            c = _linear_coeff(E.Name(base), "threadIdx.x", decls, env)
            if c is None:
                ok = False
                break
            stride += c * pitch
            pitch *= m.dims[axis]
        m.tx_stride = stride if ok else float("nan")
        m.coalescing = self._coalescing(stride if ok else None, m.block_dims[0])

    @staticmethod
    def _trip_count(loop: ir.For, env) -> float | None:
        if loop.init is None or loop.cond is None:
            return None
        lo = E.eval_const(loop.init, env)
        if not (isinstance(loop.cond, E.Bin) and loop.cond.op == "<"):
            return None
        hi = E.eval_const(loop.cond.rhs, env)
        if lo is None or hi is None:
            return None
        return hi - lo

    @staticmethod
    def _coalescing(stride: float | None, x_threads: int, warp: int = 32) -> float:
        """Warp transaction efficiency of one global access pattern.

        ``stride`` is the address step (in elements) between adjacent
        ``threadIdx.x`` lanes: 0 broadcasts, 1 is fully coalesced, small
        strides waste a proportional sector fraction, and row-pitch
        strides (streaming along x) degrade to strided row fetches.
        ``warp`` is the scheduling width of the target device (32 for
        NVIDIA warps, 64 for AMD wavefronts): narrower-than-warp blocks
        waste proportionally more of each transaction on wider machines.
        """
        if stride is None:
            return 0.25
        stride = abs(stride)
        if stride == 0:
            return 1.0
        base = 1.0 if x_threads >= warp else max(x_threads / float(warp), 0.25)
        if stride == 1:
            eff = base
        elif stride <= 8:
            # Small strides come from adjacent merging along x (stride =
            # merge factor): each extra lane gap splits the transaction,
            # saturating at a quarter sector -- the centralized model's
            # 1/min(m, 4) merge penalty.
            eff = base / min(stride, 4.0)
        else:
            eff = 0.25
        return max(eff, 0.15)


class SchemePass(MetricPass):
    """Classify the data-movement scheme and shared-memory staging."""

    name = "scheme"

    def run(self, unit, kernel, m):
        env = _const_env(unit, kernel)
        shared = kernel.shared_arrays()
        calls = {
            s.call.func
            for s, _ in ir.walk_stmts(kernel.body)
            if isinstance(s, ir.CallStmt)
        }
        value_calls = {
            n.func
            for s, _ in ir.walk_stmts(kernel.body)
            if isinstance(s, (ir.Assign, ir.VarDecl))
            for n in E.walk(s.value if isinstance(s, ir.Assign) else (s.init or E.Num(0)))
            if isinstance(n, E.Call)
        }
        m.prefetch = "_queue_rotate" in calls or "next_plane" in kernel.declarations()
        streaming = m.stream_axis is not None

        if shared:
            total = 0
            footprint: tuple[int, ...] = ()
            planes = 0
            conflict = 1.0
            for decl in shared.values():
                dims = [E.eval_const(d, env) for d in decl.dims]
                if any(d is None or d < 1 for d in dims):
                    raise EstimateError(
                        f"shared array {decl.name!r} has non-constant dims"
                    )
                dims = [int(d) for d in dims]
                total += math.prod(dims) * ir.CTYPE_SIZE.get(decl.ctype, WORD)
                if streaming:
                    planes, stage = dims[0], dims[1:]
                elif len(dims) == m.ndim + 1:
                    planes, stage = dims[0], dims[1:]  # time double-buffer
                else:
                    planes, stage = 1, dims
                # Declarations are outermost-first; axis 0 is innermost.
                footprint = tuple(reversed(stage))
                # 8-byte words over 32 4-byte banks: a row length that is
                # a multiple of 32 words puts same-lane rows in the same
                # bank pair (no padding in the generated source).  Both
                # modeled vendors expose 32 scratchpad banks, so the
                # modulus is vendor-independent.
                if footprint and footprint[0] % 32 == 0:
                    conflict = 2.0
            m.smem_per_block = total
            m.smem_queue_planes = planes
            m.smem_footprint = footprint
            m.bank_conflict_factor = conflict
            m.scheme = "smem-stream" if streaming else "smem-tile"
        elif streaming:
            m.scheme = "register-stream"
        else:
            m.scheme = "cache"

        # Retiming: a scalar accumulator that is folded in and reset.
        folded = set()
        reset = set()
        for stmt, _ in ir.walk_stmts(kernel.body):
            if not isinstance(stmt, ir.Assign):
                continue
            if (
                stmt.op == "+="
                and isinstance(stmt.value, E.Name)
                and stmt.value.id in kernel.declarations()
            ):
                folded.add(stmt.value.id)
            if (
                stmt.op == "="
                and isinstance(stmt.target, E.Name)
                and isinstance(stmt.value, E.Num)
                and stmt.value.value == 0
            ):
                reset.add(stmt.target.id)
        m.retimed = bool(folded & reset)

        if m.temporal_steps > 1 and not (
            {"_plane_time_update", "_tile_update"} & (calls | value_calls)
        ):
            m.notes.append("TSTEPS defined but no staged time update found")

        # Register plane queue (register streaming).
        cells = 0
        scalars = 0
        for decl in kernel.declarations().values():
            if decl.shared:
                continue
            if decl.is_array:
                dims = [E.eval_const(d, env) for d in decl.dims]
                if all(d is not None for d in dims):
                    cells += int(math.prod(dims))
            elif decl.ctype in ("double", "float"):
                scalars += 1
        m.register_array_cells = cells
        m.scalar_decls = scalars


class FlopPass(MetricPass):
    """FLOPs per output point, in the roofline accounting convention.

    The generated source folds the tap coefficients into a single final
    ``COEFF`` multiply, so counting its literal operations undercounts
    the arithmetic the cost model prices.  The roofline convention --
    one multiply and one add per tap, shared with
    ``Stencil.flops_per_point`` -- is recovered from the extracted tap
    set instead; the literal source operation count is kept as
    ``source_flops_per_point`` for feature/reporting use.
    """

    name = "flops"

    def run(self, unit, kernel, m):
        adds = muls = 0
        for stmt, _ in ir.walk_stmts(kernel.body):
            if not isinstance(stmt, ir.Assign):
                continue
            a, mu = _count_flops(stmt.value)
            if stmt.op in ("+=", "-="):
                a += 1
            elif stmt.op == "*=":
                mu += 1
            adds += a
            muls += mu
        m.source_flops_per_point = float(adds + muls)
        if m.taps:
            m.flops_per_point = float(2 * len(m.taps) - 1)
        else:
            m.flops_per_point = float(adds + muls)


class RegisterPass(MetricPass):
    """Per-thread register estimate via the centralized pressure model.

    Registers are not visible in the source, so the pass feeds the
    structural facts it *can* see -- tap count, merge shape, streaming
    queue, retiming, prefetch, temporal staging -- into
    :func:`~repro.optimizations.kernelmodel.register_estimate`, the same
    formula :func:`~repro.optimizations.kernelmodel.build_profile`
    prices occupancy with.  Agreement here is what lets the analytical
    ranking separate register-hungry merge variants from cheap ones.
    """

    name = "registers"

    def run(self, unit, kernel, m):
        from ..optimizations.kernelmodel import register_estimate

        streaming = m.stream_axis is not None
        m.regs_per_thread, m.spilled_regs = register_estimate(
            max(1, len(m.taps)),
            merge_factor=m.merge_factor,
            block_merge=m.merge_step == 1,
            streaming=streaming,
            use_smem=m.scheme.startswith("smem"),
            retiming=m.retimed,
            stream_extent=m.extents[m.stream_axis] if streaming else 0,
            unroll=m.stream_unroll if streaming else 1,
            prefetch=m.prefetch,
            temporal_steps=m.temporal_steps,
        )


class VolumePass(MetricPass):
    """Per-cache-level memory volumes from footprint analysis."""

    name = "volumes"

    def run(self, unit, kernel, m):
        t = m.temporal_steps
        points = m.points
        m.write_bytes = float(WORD * points)

        axes = [a for a in range(m.ndim) if a != m.stream_axis]

        # Redundant halo work of temporal blocking, from extracted
        # extents: each fused step shrinks the valid interior.
        redundancy = 1.0
        if t > 1:
            for a in axes:
                cov = m.coverage[a]
                halo = 2 * m.extents[a] * (t - 1)
                if cov <= halo:
                    raise KernelLaunchError(
                        f"temporal halo {halo} consumes the tile "
                        f"(coverage {cov}) along axis {a}"
                    )
                redundancy *= (cov + halo) / cov
        m.redundancy = redundancy
        m.flops = points * m.flops_per_point * t * redundancy

        if m.scheme in ("smem-stream", "smem-tile"):
            # Every staged cell (tile or plane window, halo included) is
            # fetched from DRAM once per block: the halo factor is the
            # staged footprint over the block's output coverage.
            halo = 1.0
            for a, cells in zip(axes, m.smem_footprint or ()):
                halo *= cells / m.coverage[a]
            if not m.smem_footprint:
                for a in axes:
                    halo *= (m.coverage[a] + 2 * m.extents[a] * t) / m.coverage[a]
            m.read_bytes_base = WORD * points * halo
            m.read_amplification = 1.0
            m.reuse_window_bytes = 0.0
            l2 = m.read_bytes_base

            # Bank conflicts throttle achievable smem bandwidth rather
            # than adding traffic, so ``bank_conflict_factor`` stays a
            # reported metric and does not scale the volume.
            from ..optimizations.kernelmodel import smem_traffic_taps

            m.smem_bytes = (
                smem_traffic_taps(
                    m.taps,
                    stream_axis=m.stream_axis,
                    retiming=m.retimed,
                    block_merge=m.merge_step == 1,
                    merge_axis=m.merge_axis,
                    merge_factor=m.merge_factor,
                )
                * WORD
                * points
                * t
                * redundancy
            )
        else:
            # Cache-served: stream-axis reuse (if any) is perfect, the
            # remaining axes ride the L2.  Worst case re-fetches every
            # outer-axis visit; the reuse window says when that happens.
            m.read_bytes_base = float(WORD * points)
            if not axes:
                m.read_amplification = 1.0
                m.reuse_window_bytes = 0.0
            else:
                outer = axes[-1]
                m.read_amplification = (
                    1.0 + 2.0 * m.extents[outer] if len(axes) > 1 else 1.0
                )
                inner = math.prod(m.dims[a] for a in axes[:-1])
                m.reuse_window_bytes = (2 * m.extents[outer] + 1) * inner * WORD
            l2 = WORD * points * _row_accesses(
                m.taps, tuple(axes), m.merge_factor, m.merge_axis
            )
            m.smem_bytes = 0.0

        if m.spilled_regs:
            spill = m.spilled_regs * WORD * 2 * 0.25 * points * t
            l2 += spill
            m.read_bytes_base += 0.3 * spill
        m.l2_bytes = max(l2, m.read_bytes_base) + m.write_bytes


def _row_accesses(taps, axes: tuple[int, ...], merge: int, merge_axis) -> float:
    """Distinct offset rows per point: the SM <-> L2 transaction factor."""
    outer = [a for a in axes if a != 0]
    if not outer:
        return 1.0
    rows = {tuple(p[a] for a in outer) for p in taps}
    n_rows = float(len(rows))
    if merge > 1 and merge_axis in outer:
        n_rows = 1.0 + (n_rows - 1.0) / merge
    return n_rows


#: The extraction pipeline, in dependency order.
METRIC_PASSES: tuple[MetricPass, ...] = (
    LaunchPass(),
    AccessPass(),
    SchemePass(),
    FlopPass(),
    RegisterPass(),
    VolumePass(),
)


def extract_metrics(source: "str | ir.TranslationUnit") -> KernelMetrics:
    """Run the metric-extraction pipeline over one translation unit."""
    if isinstance(source, ir.TranslationUnit):
        unit = source
    else:
        from .framework import parse_unit_cached

        unit = parse_unit_cached(source)
    if not unit.kernels:
        raise EstimateError("translation unit has no __global__ kernel")
    kernel = unit.kernel
    metrics = KernelMetrics()
    for pipeline_pass in METRIC_PASSES:
        pipeline_pass.run(unit, kernel, metrics)
    return metrics


# ----------------------------------------------------------------------
# roofline composition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PerfEstimate:
    """Analytical timing for one kernel on one GPU (per time step)."""

    gpu: str
    time_ms: float
    dram_ms: float
    l2_ms: float
    smem_ms: float
    compute_ms: float
    stream_ms: float
    launch_ms: float
    occupancy: float
    utilization: float
    metrics: KernelMetrics

    def to_dict(self) -> dict:
        return {
            "gpu": self.gpu,
            "time_ms": self.time_ms,
            "phases_ms": {
                "dram": self.dram_ms,
                "l2": self.l2_ms,
                "smem": self.smem_ms,
                "compute": self.compute_ms,
                "stream": self.stream_ms,
                "launch": self.launch_ms,
            },
            "occupancy": round(self.occupancy, 4),
            "utilization": round(self.utilization, 4),
        }


def _to_profile(m: KernelMetrics):
    """Package extracted metrics as a simulator-compatible profile."""
    from ..optimizations.kernelmodel import KernelProfile

    return KernelProfile(
        threads_per_block=m.threads_per_block,
        n_blocks=m.n_blocks,
        launches=m.launches,
        regs_per_thread=m.regs_per_thread,
        spilled_regs=m.spilled_regs,
        smem_per_block=m.smem_per_block,
        flops=m.flops,
        read_bytes_base=m.read_bytes_base,
        read_amplification=m.read_amplification,
        reuse_window_bytes=m.reuse_window_bytes,
        write_bytes=m.write_bytes,
        l2_bytes=m.l2_bytes,
        smem_bytes=m.smem_bytes,
        coalescing=m.coalescing,
        scattered=m.scheme in ("cache", "register-stream"),
        stream_iters=m.stream_iters,
        prefetch=m.prefetch,
        temporal_steps=m.temporal_steps,
        points=m.points,
    )


def _compose(metrics: KernelMetrics, gpu: str) -> PerfEstimate:
    """Time extracted metrics on one GPU via the centralized roofline.

    The simulator normalizes per-step time by its own ``TIME_STEPS``
    constant; the source carries the macro, so re-scale when they
    differ (they agree for all generator output).
    """
    from dataclasses import replace as _replace

    from ..gpu.simulator import GPUSimulator
    from ..gpu.specs import get_gpu
    from ..optimizations.kernelmodel import TIME_STEPS

    spec = get_gpu(gpu)
    sim = GPUSimulator(spec, sigma=0.0)
    profile = _to_profile(metrics)
    if spec.warp_size != 32:
        # The extracted coalescing factor was classified at the default
        # 32-lane width; re-derive it for this device's scheduling width
        # from the recorded threadIdx.x stride (matches build_profile's
        # warp_size-parameterized clause on generator output).
        stride = metrics.tx_stride if math.isfinite(metrics.tx_stride) else None
        profile = _replace(
            profile,
            coalescing=AccessPass._coalescing(
                stride, metrics.block_dims[0], warp=spec.warp_size
            ),
        )
    result = sim.time_profile(profile)
    scale = TIME_STEPS / max(1, metrics.time_steps)
    smem_s = 0.0
    if metrics.smem_bytes:
        smem_bw = (
            spec.sms * spec.smem_bytes_per_clk * spec.boost_clock_mhz * 1e6 * 0.35
        )
        smem_s = metrics.smem_bytes / smem_bw
    return PerfEstimate(
        gpu=spec.name,
        time_ms=result.time_ms * scale,
        dram_ms=result.dram_ms,
        l2_ms=result.l2_ms,
        smem_ms=smem_s * 1e3,
        compute_ms=result.compute_ms,
        stream_ms=result.stream_ms,
        launch_ms=result.launch_ms,
        occupancy=result.occupancy.occupancy,
        utilization=result.utilization,
        metrics=metrics,
    )


def estimate_source(source: "str | ir.TranslationUnit", gpu: str) -> PerfEstimate:
    """Roofline time estimate for generated source on one GPU.

    Composes the extracted metrics with the centralized occupancy /
    latency-hiding / phase model.  Raises
    :class:`~repro.errors.KernelLaunchError` when the configuration
    cannot launch on *gpu* and :class:`EstimateError` when the source is
    outside the extractable subset.
    """
    return _compose(extract_metrics(source), gpu)


@lru_cache(maxsize=65536)
def _generate(stencil, oc, setting, grid):
    from ..codegen import generate_cuda

    return generate_cuda(stencil, oc, setting, grid=grid)


@lru_cache(maxsize=65536)
def _metrics_for(stencil, oc, setting, grid) -> KernelMetrics:
    return extract_metrics(_generate(stencil, oc, setting, grid))


def estimate_kernel(
    stencil,
    oc,
    setting,
    gpu: str,
    grid: tuple[int, ...] | None = None,
) -> PerfEstimate:
    """Generate the kernel for (stencil, OC, setting) and estimate it.

    The generate + parse + extract work is memoized per configuration;
    only the (cheap) per-GPU composition runs on repeat calls.
    """
    return _compose(_metrics_for(stencil, oc, setting, grid), gpu)


# ----------------------------------------------------------------------
# feature extraction for the hybrid predictor
# ----------------------------------------------------------------------
ANALYTICAL_FEATURE_NAMES: tuple[str, ...] = (
    "ana_log_time_ms",
    "ana_log_dram_ms",
    "ana_log_l2_ms",
    "ana_log_smem_ms",
    "ana_log_compute_ms",
    "ana_log_stream_ms",
    "ana_occupancy",
    "ana_utilization",
    "ana_coalescing",
    "ana_log_read_bytes",
    "ana_log_smem_bytes",
    "ana_log_flops",
    "ana_crashed",
)


def analytical_features(stencil, oc, setting, gpu: str) -> list[float]:
    """Fixed-width analytical feature vector for hybrid models.

    Configurations the analytical model rejects (launch-infeasible or
    outside the extractable subset) get a zero vector with the crash
    flag set, so downstream models see failure as a feature rather than
    an exception.
    """

    def _log(v: float) -> float:
        return math.log2(1.0 + max(0.0, v))

    from ..errors import OptimizationError

    try:
        est = estimate_kernel(stencil, oc, setting, gpu)
    except (KernelLaunchError, OptimizationError, EstimateError, ir.ParseError):
        return [0.0] * (len(ANALYTICAL_FEATURE_NAMES) - 1) + [1.0]
    m = est.metrics
    return [
        _log(est.time_ms),
        _log(est.dram_ms),
        _log(est.l2_ms),
        _log(est.smem_ms),
        _log(est.compute_ms),
        _log(est.stream_ms),
        est.occupancy,
        est.utilization,
        m.coalescing,
        _log(m.read_bytes_base),
        _log(m.smem_bytes),
        _log(m.flops),
    ] + [0.0]
