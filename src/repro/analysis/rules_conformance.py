"""Structural OC conformance (rules OCST001..OCTB001, OCXX001).

Each optimization of Table I leaves a recognisable footprint in the
generated kernel; this pass checks that the footprint of every opt in
the declared OC is present -- and that no foreign footprint sneaks in.
The declared OC comes from the analysis context (generated sweeps) or
from the ``// optimization combination:`` header comment of a snippet.

Footprints
----------
- **ST**: a plane loop over the stream-axis variable plus a queue
  (``_queue_push``/``_queue_rotate`` rotation and a queue declaration).
- **BM**: the ``mi`` merge loop with *adjacent* indexing (stride 1).
- **CM**: the ``mi`` merge loop with *block-strided* indexing
  (``mi * BLOCK_<axis>``).  No loop is required (or allowed) when the
  merge axis coincides with the stream axis.
- **RT**: a ``partial`` accumulator that is folded into ``acc`` and
  reset inside the stream loop.
- **PR**: a ``next_plane`` double buffer filled from
  ``in[_plane_index(...)]`` and consumed by ``_queue_rotate``.
- **TB**: a ``step`` time loop advancing the staged planes
  (``_tile_update`` tiled / ``_plane_time_update`` streaming).
"""

from __future__ import annotations

from . import expr as E
from . import ir, semantics
from .findings import Finding, Severity
from .framework import AnalysisPass, RuleInfo


def _missing(rule: str, title: str) -> RuleInfo:
    return RuleInfo(
        rule,
        Severity.ERROR,
        title,
        "The OC promises this transformation; without its structure the "
        "kernel the model prices is not the kernel that was generated.",
    )


class ConformancePass(AnalysisPass):
    name = "conformance"
    rules = (
        _missing("OCST001", "streaming structure missing"),
        _missing("OCBM001", "block-merging loop missing or wrong stride"),
        _missing("OCCM001", "cyclic-merging loop missing or wrong stride"),
        _missing("OCRT001", "retimed partial accumulator missing"),
        _missing("OCPR001", "prefetch double buffer missing"),
        _missing("OCTB001", "temporal step loop missing"),
        RuleInfo(
            "OCXX001",
            Severity.ERROR,
            "structure of an optimization outside the OC",
            "A footprint of an opt the OC does not contain means the "
            "generator emitted a different variant than requested.",
        ),
    )

    def run(self, ctx) -> list:
        findings: list = []
        oc = ctx.oc
        if oc is None:
            oc_name = (ctx.unit.meta or {}).get("optimization combination", "")
            opts = set(oc_name.split("_")) if oc_name else None
        else:
            opts = {o.name for o in oc.opts}
        if opts is None:
            return findings
        for kernel in ctx.unit.kernels:
            findings.extend(self._check_kernel(ctx, kernel, opts))
        return findings

    # ------------------------------------------------------------------
    def _check_kernel(self, ctx, kernel: ir.Kernel, opts: set) -> list:
        findings: list = []
        calls = self._calls(kernel)
        decls = kernel.declarations()
        merge_loops = self._merge_loops(kernel)
        step_loops = [
            f for f, _ in ir.walk_stmts(kernel.body)
            if isinstance(f, ir.For) and f.var == "step"
        ]

        def err(rule, msg, line=0):
            findings.append(
                Finding.make(rule, Severity.ERROR, msg, line=line, kernel=kernel.name)
            )

        streaming = "ST" in opts
        merging = "BM" in opts or "CM" in opts
        merge_on_stream = self._merge_on_stream(ctx)

        # ST --------------------------------------------------------------
        if streaming:
            if not ({"_queue_push", "_queue_rotate"} & set(calls)):
                err("OCST001", "streaming OC without a plane-queue rotation "
                    "(_queue_push/_queue_rotate)")
            if not any(d.is_array for d in decls.values()):
                err("OCST001", "streaming OC without a plane queue declaration "
                    "(__shared__ planes or register array)")
            if not self._has_stream_loop(ctx, kernel):
                err("OCST001", "streaming OC without a plane loop over the "
                    "stream axis")
        elif {"_queue_push", "_queue_rotate"} & set(calls):
            err("OCXX001", "plane-queue rotation in a non-streaming OC",
                line=min(calls[c] for c in
                         {"_queue_push", "_queue_rotate"} & set(calls)))

        # BM / CM ---------------------------------------------------------
        if merging and not merge_on_stream:
            want = "BM" if "BM" in opts else "CM"
            rule = f"OC{want}001"
            if not merge_loops:
                err(rule, f"{want} OC without the mi merge loop")
            else:
                line, stride = merge_loops[0]
                if want == "BM" and stride != "adjacent":
                    err(rule, "block merging must index adjacent points "
                        "(found block-strided indexing)", line=line)
                if want == "CM" and stride != "strided":
                    err(rule, "cyclic merging must index block-strided points "
                        "(found adjacent indexing)", line=line)
        elif not merging and merge_loops:
            err("OCXX001", "merge loop present in a merge-free OC",
                line=merge_loops[0][0])

        # RT --------------------------------------------------------------
        has_partial = "partial" in decls
        folds = any(
            isinstance(s, ir.Assign) and s.op == "+="
            and "partial" in E.names_in(s.value)
            for s, _ in ir.walk_stmts(kernel.body)
        )
        if "RT" in opts:
            if not (has_partial and folds):
                err("OCRT001", "retiming OC without a partial accumulator "
                    "folded into the result")
        elif has_partial and folds:
            err("OCXX001", "retimed partial accumulator in a non-RT OC",
                line=decls["partial"].line)

        # PR --------------------------------------------------------------
        has_next = "next_plane" in decls
        prefetch_load = any(
            isinstance(s, ir.Assign)
            and isinstance(s.target, E.Name)
            and s.target.id == "next_plane"
            and any(
                isinstance(n, E.Call) and n.func == "_plane_index"
                for n in E.walk(s.value)
            )
            for s, _ in ir.walk_stmts(kernel.body)
        )
        if "PR" in opts:
            if not (has_next and prefetch_load):
                err("OCPR001", "prefetch OC without a next_plane double "
                    "buffer loaded via _plane_index")
        elif has_next:
            err("OCXX001", "prefetch double buffer in a non-PR OC",
                line=decls["next_plane"].line)

        # TB --------------------------------------------------------------
        update = "_plane_time_update" if streaming else "_tile_update"
        tb_loops = [
            f for f in step_loops
            if any(
                isinstance(s, ir.CallStmt) and s.call.func == update
                for s, _ in ir.walk_stmts(f.body)
            )
        ]
        if "TB" in opts:
            if not tb_loops:
                err("OCTB001", f"temporal OC without a step loop calling "
                    f"{update}")
        elif step_loops:
            err("OCXX001", "time-step loop in a non-TB OC",
                line=step_loops[0].line)
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _calls(kernel: ir.Kernel) -> dict:
        """Intrinsic call name -> first line it appears on."""
        out: dict = {}
        for stmt, _ in ir.walk_stmts(kernel.body):
            if isinstance(stmt, ir.CallStmt):
                out.setdefault(stmt.call.func, stmt.line)
        return out

    @staticmethod
    def _merge_loops(kernel: ir.Kernel) -> "list[tuple[int, str]]":
        """(line, "adjacent"|"strided"|"unknown") for each mi loop."""
        out: list = []
        for stmt, _ in ir.walk_stmts(kernel.body):
            if not (isinstance(stmt, ir.For) and stmt.var == "mi"):
                continue
            kind = "unknown"
            for s in stmt.body:
                if not (isinstance(s, ir.VarDecl) and s.init is not None):
                    continue
                stride = _merge_stride(s.init)
                if stride is not None:
                    kind = stride
                    break
            out.append((stmt.line, kind))
        return out

    def _merge_on_stream(self, ctx) -> bool:
        if ctx.oc is None or ctx.setting is None:
            return False
        if "ST" not in ctx.oc or not (
            "BM" in ctx.oc or "CM" in ctx.oc
        ):
            return False
        return ctx.setting["merge_dim"] == ctx.setting["stream_dim"]

    def _has_stream_loop(self, ctx, kernel: ir.Kernel) -> bool:
        axes = set(semantics.AXES)
        if ctx.setting is not None and ctx.oc is not None and "ST" in ctx.oc:
            axes = {semantics.AXES[ctx.setting["stream_dim"] - 1]}
        return any(
            isinstance(s, ir.For) and s.var in axes
            for s, _ in ir.walk_stmts(kernel.body)
        )


def _merge_stride(init) -> "str | None":
    """Classify ``<axis>0 + mi * <stride>`` initializers."""
    if not (isinstance(init, E.Bin) and init.op == "+"):
        return None
    mul = init.rhs
    if not (
        isinstance(mul, E.Bin)
        and mul.op == "*"
        and isinstance(mul.lhs, E.Name)
        and mul.lhs.id == "mi"
    ):
        return None
    if isinstance(mul.rhs, E.Num):
        return "adjacent" if mul.rhs.value == 1 else "unknown"
    if isinstance(mul.rhs, E.Name) and mul.rhs.id.startswith("BLOCK_"):
        return "strided"
    return "unknown"
