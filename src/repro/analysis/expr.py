"""Expression layer of the kernel analyzer: lexer, parser, evaluation.

The generated CUDA sources use a small, disciplined C expression subset --
integer arithmetic over macros, thread/block builtins and local scalars,
comparisons joined by ``&&`` in boundary guards, and a couple of pseudo
intrinsics (``min``, ``_plane_index``).  This module turns that subset
into a tiny AST and provides two evaluators over it:

- :func:`eval_const` -- exact evaluation against a macro environment
  (used for shared-memory dimensions, launch geometry, loop trip counts);
- :func:`eval_interval` -- conservative interval arithmetic against an
  environment of variable ranges (used by the symbolic bounds checker:
  every value is tracked as a ``[lo, hi]`` range, with ``+/-inf`` for
  unknowns, so an access is provably in bounds only when its whole
  interval is).

Both evaluators are deliberately sound-over-complete: anything outside
the subset evaluates to "unknown" rather than raising mid-analysis.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from ..errors import ReproError

INF = math.inf


class ExprError(ReproError):
    """The analyzer could not lex or parse a C expression."""


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    """Integer or floating literal."""

    value: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Num({self.value!r})"


@dataclass(frozen=True)
class Name:
    """Identifier; dotted builtins (``threadIdx.x``) are one name."""

    id: str


@dataclass(frozen=True)
class Unary:
    op: str  # "-" or "!"
    operand: "Expr"


@dataclass(frozen=True)
class Bin:
    op: str  # + - * / % < > <= >= == != && ||
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class Call:
    func: str
    args: "tuple[Expr, ...]"


@dataclass(frozen=True)
class Index:
    """Postfix subscript chain: ``base[i0][i1]...``."""

    base: "Expr"
    indices: "tuple[Expr, ...]"


Expr = "Num | Name | Unary | Bin | Call | Index"


def walk(node) -> "list":
    """All nodes of an expression tree, preorder."""
    out = [node]
    if isinstance(node, Unary):
        out += walk(node.operand)
    elif isinstance(node, Bin):
        out += walk(node.lhs) + walk(node.rhs)
    elif isinstance(node, Call):
        for a in node.args:
            out += walk(a)
    elif isinstance(node, Index):
        out += walk(node.base)
        for i in node.indices:
            out += walk(i)
    return out


def names_in(node) -> set[str]:
    """Identifiers referenced anywhere in the expression."""
    return {n.id for n in walk(node) if isinstance(n, Name)}


# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<num>\d+\.\d*(?:e[+-]?\d+)?|\.\d+|\d+)
    |(?P<name>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)
    |(?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%<>!(),\[\]?:])
    |(?P<ws>\s+)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[str]:
    """Split a C expression into tokens; raises :class:`ExprError` on junk."""
    out: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ExprError(f"cannot lex {text[pos:pos + 20]!r} in {text!r}")
        if m.lastgroup != "ws":
            out.append(m.group())
        pos = m.end()
    return out


# ----------------------------------------------------------------------
# parser (precedence climbing)
# ----------------------------------------------------------------------
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class _Parser:
    def __init__(self, tokens: list[str], source: str):
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ExprError(f"unexpected end of expression in {self.source!r}")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ExprError(f"expected {tok!r}, got {got!r} in {self.source!r}")

    def parse(self):
        node = self.expression(0)
        if self.peek() is not None:
            raise ExprError(f"trailing tokens {self.tokens[self.pos:]} in {self.source!r}")
        return node

    def expression(self, min_prec: int):
        node = self.unary()
        while True:
            op = self.peek()
            prec = _PRECEDENCE.get(op or "")
            if prec is None or prec < min_prec:
                return node
            self.next()
            rhs = self.expression(prec + 1)
            node = Bin(op, node, rhs)

    def unary(self):
        tok = self.peek()
        if tok in ("-", "!", "+"):
            self.next()
            operand = self.unary()
            if tok == "+":
                return operand
            if tok == "-" and isinstance(operand, Num):
                return Num(-operand.value)
            return Unary(tok, operand)
        return self.postfix()

    def postfix(self):
        node = self.primary()
        while True:
            tok = self.peek()
            if tok == "(" and isinstance(node, Name):
                self.next()
                args: list = []
                if self.peek() != ")":
                    args.append(self.expression(0))
                    while self.peek() == ",":
                        self.next()
                        args.append(self.expression(0))
                self.expect(")")
                node = Call(node.id, tuple(args))
            elif tok == "[":
                indices: list = []
                while self.peek() == "[":
                    self.next()
                    indices.append(self.expression(0))
                    self.expect("]")
                node = Index(node, tuple(indices))
            else:
                return node

    def primary(self):
        tok = self.next()
        if tok == "(":
            node = self.expression(0)
            self.expect(")")
            return node
        if re.fullmatch(r"\d+\.\d*(?:e[+-]?\d+)?|\.\d+", tok):
            return Num(float(tok))
        if tok.isdigit():
            return Num(int(tok))
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", tok):
            return Name(tok)
        raise ExprError(f"unexpected token {tok!r} in {self.source!r}")


def parse_expr(text: str):
    """Parse one C expression into the analyzer AST."""
    return _Parser(tokenize(text), text).parse()


# ----------------------------------------------------------------------
# exact evaluation
# ----------------------------------------------------------------------
def eval_const(node, env: "dict[str, float] | None" = None) -> "float | None":
    """Evaluate *node* exactly against *env*; ``None`` when not constant.

    Division follows C integer semantics when both operands are integral
    (truncation toward zero -- all generated divisions are non-negative).
    """
    env = env or {}
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Name):
        return env.get(node.id)
    if isinstance(node, Unary):
        v = eval_const(node.operand, env)
        if v is None:
            return None
        return -v if node.op == "-" else float(not v)
    if isinstance(node, Call):
        args = [eval_const(a, env) for a in node.args]
        if any(a is None for a in args):
            return None
        if node.func == "min":
            return min(args)
        if node.func == "max":
            return max(args)
        return None
    if isinstance(node, Bin):
        lhs = eval_const(node.lhs, env)
        rhs = eval_const(node.rhs, env)
        if lhs is None or rhs is None:
            return None
        return _apply(node.op, lhs, rhs)
    return None


def _apply(op: str, lhs: float, rhs: float) -> "float | None":
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            return None
        if float(lhs).is_integer() and float(rhs).is_integer():
            return float(int(lhs) // int(rhs))  # non-negative in practice
        return lhs / rhs
    if op == "%":
        return lhs % rhs if rhs else None
    if op in ("<", ">", "<=", ">=", "==", "!="):
        return float(
            {"<": lhs < rhs, ">": lhs > rhs, "<=": lhs <= rhs,
             ">=": lhs >= rhs, "==": lhs == rhs, "!=": lhs != rhs}[op]
        )
    if op == "&&":
        return float(bool(lhs) and bool(rhs))
    if op == "||":
        return float(bool(lhs) or bool(rhs))
    return None


# ----------------------------------------------------------------------
# interval arithmetic
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` with infinite endpoints."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ExprError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ---------------------------------------------------
    @staticmethod
    def point(v: float) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def top() -> "Interval":
        return Interval(-INF, INF)

    # -- predicates -----------------------------------------------------
    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def within(self, lo: float, hi: float) -> bool:
        """True when the whole interval fits inside ``[lo, hi]``."""
        return self.lo >= lo and self.hi <= hi

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = [
            _mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(products), max(products))

    def div(self, other: "Interval") -> "Interval":
        """C integer division; exact only for positive point divisors."""
        if other.is_point and other.lo > 0 and other.lo not in (INF, -INF):
            d = other.lo
            lo = -INF if self.lo == -INF else float(math.floor(self.lo / d))
            hi = INF if self.hi == INF else float(math.floor(self.hi / d))
            return Interval(lo, hi)
        return Interval.top()

    def mod(self, other: "Interval") -> "Interval":
        if other.is_point and other.lo > 0 and other.lo not in (INF, -INF):
            return Interval(0, other.lo - 1)
        return Interval.top()

    def meet(self, other: "Interval") -> "Interval | None":
        """Intersection, ``None`` when disjoint."""
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo}, {self.hi}]"


def _mul(a: float, b: float) -> float:
    """IEEE-safe product where ``0 * inf`` is 0 (integer semantics)."""
    if a == 0 or b == 0:
        return 0.0
    return a * b


def imin(a: Interval, b: Interval) -> Interval:
    return Interval(min(a.lo, b.lo), min(a.hi, b.hi))


def imax(a: Interval, b: Interval) -> Interval:
    return Interval(max(a.lo, b.lo), max(a.hi, b.hi))


def eval_interval(node, env: "dict[str, Interval]", macros: "dict[str, float]") -> Interval:
    """Conservative range of *node* under variable ranges and macro values."""
    if isinstance(node, Num):
        return Interval.point(node.value)
    if isinstance(node, Name):
        if node.id in env:
            return env[node.id]
        if node.id in macros:
            return Interval.point(macros[node.id])
        return Interval.top()
    if isinstance(node, Unary):
        inner = eval_interval(node.operand, env, macros)
        return -inner if node.op == "-" else Interval.top()
    if isinstance(node, Call):
        args = [eval_interval(a, env, macros) for a in node.args]
        if node.func == "min" and len(args) == 2:
            return imin(*args)
        if node.func == "max" and len(args) == 2:
            return imax(*args)
        return Interval.top()
    if isinstance(node, Bin):
        lhs = eval_interval(node.lhs, env, macros)
        rhs = eval_interval(node.rhs, env, macros)
        if node.op == "+":
            return lhs + rhs
        if node.op == "-":
            return lhs - rhs
        if node.op == "*":
            return lhs * rhs
        if node.op == "/":
            return lhs.div(rhs)
        if node.op == "%":
            return lhs.mod(rhs)
        return Interval.top()
    return Interval.top()


# ----------------------------------------------------------------------
# guard refinement
# ----------------------------------------------------------------------
def conjuncts(node) -> "list":
    """Flatten a ``&&`` tree into its comparison conjuncts."""
    if isinstance(node, Bin) and node.op == "&&":
        return conjuncts(node.lhs) + conjuncts(node.rhs)
    return [node]


def refine_env(
    cond, env: "dict[str, Interval]", macros: "dict[str, float]"
) -> "dict[str, Interval]":
    """Intersect *env* with the constraints a guard condition implies.

    Only conjuncts of the shape ``name <op> expr`` (or mirrored) with an
    interval-evaluable bound refine; anything else is soundly ignored
    (the result only ever *widens* relative to the true reachable set).
    """
    out = dict(env)
    for c in conjuncts(cond):
        if not (isinstance(c, Bin) and c.op in ("<", ">", "<=", ">=", "==")):
            continue
        lhs, op, rhs = c.lhs, c.op, c.rhs
        if not isinstance(lhs, Name) and isinstance(rhs, Name):
            lhs, rhs = rhs, lhs
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "=="}[op]
        if not isinstance(lhs, Name):
            continue
        bound = eval_interval(rhs, out, macros)
        current = out.get(lhs.id, Interval.top())
        if op == ">=":
            refined = current.meet(Interval(bound.lo, INF))
        elif op == ">":
            refined = current.meet(Interval(bound.lo + 1, INF))
        elif op == "<=":
            refined = current.meet(Interval(-INF, bound.hi))
        elif op == "<":
            refined = current.meet(Interval(-INF, bound.hi - 1))
        else:  # ==
            refined = current.meet(bound)
        if refined is not None:
            out[lhs.id] = refined
    return out


def guard_bounds(cond, macros: "dict[str, float]") -> "dict[str, tuple[float | None, float | None]]":
    """Per-variable ``(lo, hi_exclusive)`` bounds a guard imposes.

    Unlike :func:`refine_env` this reports the *syntactic* bounds (used by
    the guard-contract check), evaluated against macros only, so loop
    ranges and other context do not leak in.  ``None`` marks a side the
    guard leaves open or non-constant.
    """
    out: dict[str, tuple[float | None, float | None]] = {}
    for c in conjuncts(cond):
        if not (isinstance(c, Bin) and c.op in ("<", ">", "<=", ">=")):
            continue
        lhs, op, rhs = c.lhs, c.op, c.rhs
        if not isinstance(lhs, Name) and isinstance(rhs, Name):
            lhs, rhs = rhs, lhs
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}[op]
        if not isinstance(lhs, Name):
            continue
        bound = eval_const(rhs, macros)
        lo, hi = out.get(lhs.id, (None, None))
        if op == ">=":
            lo = bound
        elif op == ">":
            lo = None if bound is None else bound + 1
        elif op == "<":
            hi = bound
        elif op == "<=":
            hi = None if bound is None else bound + 1
        out[lhs.id] = (lo, hi)
    return out
