"""Static analysis of generated CUDA kernels.

The subsystem has three layers:

- :mod:`repro.analysis.expr` / :mod:`repro.analysis.ir` -- a lexer,
  expression parser and structural parser covering the disciplined C
  subset the code generator emits, producing a small kernel IR;
- :mod:`repro.analysis.framework` / :mod:`repro.analysis.findings` --
  the pass pipeline, rule metadata, findings with suppression and
  baseline support;
- the rule passes (``rules_*``) and the sweep driver
  (:mod:`repro.analysis.lint`) behind the ``repro lint`` CLI.
"""

from .findings import Baseline, Finding, Report, Severity, Suppressions
from .framework import (
    AnalysisContext,
    AnalysisPass,
    Analyzer,
    RuleInfo,
    all_rules,
    build_context,
    default_passes,
)
from .ir import ParseError, parse_unit
from .lint import (
    LintRecord,
    LintSummary,
    feasible_settings,
    lint_kernel,
    lint_sweep,
)

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "Analyzer",
    "Baseline",
    "Finding",
    "LintRecord",
    "LintSummary",
    "ParseError",
    "Report",
    "RuleInfo",
    "Severity",
    "Suppressions",
    "all_rules",
    "build_context",
    "default_passes",
    "feasible_settings",
    "lint_kernel",
    "lint_sweep",
    "parse_unit",
]
