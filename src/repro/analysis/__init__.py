"""Static analysis of generated CUDA kernels.

The subsystem has three layers:

- :mod:`repro.analysis.expr` / :mod:`repro.analysis.ir` -- a lexer,
  expression parser and structural parser covering the disciplined C
  subset the code generator emits, producing a small kernel IR;
- :mod:`repro.analysis.framework` / :mod:`repro.analysis.findings` --
  the pass pipeline, rule metadata, findings with suppression and
  baseline support;
- the rule passes (``rules_*``) and the sweep driver
  (:mod:`repro.analysis.lint`) behind the ``repro lint`` CLI;
- the analytical performance model
  (:mod:`repro.analysis.perfmodel`) behind ``repro estimate``: metric
  extraction plus a roofline time estimate from generated source.
"""

from .backend import AnalyticalBackend
from .findings import Baseline, Finding, Report, Severity, Suppressions
from .framework import (
    AnalysisContext,
    AnalysisPass,
    Analyzer,
    RuleInfo,
    all_rules,
    build_context,
    clear_parse_cache,
    default_passes,
    parse_cache_info,
    parse_unit_cached,
)
from .ir import ParseError, parse_unit
from .lint import (
    LintRecord,
    LintSummary,
    feasible_settings,
    lint_kernel,
    lint_sweep,
)
from .perfmodel import (
    ANALYTICAL_FEATURE_NAMES,
    EstimateError,
    KernelMetrics,
    PerfEstimate,
    analytical_features,
    estimate_kernel,
    estimate_source,
    extract_metrics,
)

__all__ = [
    "ANALYTICAL_FEATURE_NAMES",
    "AnalysisContext",
    "AnalyticalBackend",
    "AnalysisPass",
    "Analyzer",
    "Baseline",
    "EstimateError",
    "Finding",
    "KernelMetrics",
    "LintRecord",
    "LintSummary",
    "ParseError",
    "PerfEstimate",
    "Report",
    "RuleInfo",
    "Severity",
    "Suppressions",
    "all_rules",
    "analytical_features",
    "build_context",
    "clear_parse_cache",
    "default_passes",
    "estimate_kernel",
    "estimate_source",
    "extract_metrics",
    "feasible_settings",
    "lint_kernel",
    "lint_sweep",
    "parse_cache_info",
    "parse_unit",
    "parse_unit_cached",
]
