"""Shared semantic helpers for the analysis passes.

Bridges the syntactic IR to the generator's conventions: row-major flat
index decomposition, axis naming, thread-variance propagation, and the
builtin thread/block coordinate ranges derived from the host launcher.
"""

from __future__ import annotations

from . import expr as E
from . import ir

#: Axis variable names in generator order (axis 0 is contiguous).
AXES = ("x", "y", "z")

#: Global-memory arrays indexed with the row-major flat convention.
GLOBAL_ARRAYS = ("in", "out")

#: Pseudo-intrinsics the generator emits and the semantics the analyzer
#: assigns to them.  ``reads``/``writes`` name the shared-state they touch:
#: ``"arg0"`` means the first call argument, ``"queue"`` means the kernel's
#: shared plane queue (when one is declared).
INTRINSICS = {
    "_tile_store": {"writes": "arg0", "reads": None},
    "_tile_update": {"writes": "arg0", "reads": "arg0"},
    "_queue_push": {"writes": "queue", "reads": "queue"},
    "_queue_rotate": {"writes": "queue", "reads": "queue"},
    "_plane_time_update": {"writes": "queue", "reads": "queue"},
}

#: Opaque value-producing intrinsics.
VALUE_INTRINSICS = ("_flat_tid", "_tile_cells", "_block_threads", "_plane_index")

#: The subset whose value differs across the threads of a block
#: (``_tile_cells``/``_block_threads`` are block-uniform tile geometry).
THREAD_INTRINSICS = ("_flat_tid",)


def axis_macro(axis: int) -> str:
    """Grid-size macro for one axis (``NX``/``NY``/``NZ``)."""
    return f"N{AXES[axis].upper()}"


def grid_rank(macros: dict) -> int:
    """Grid dimensionality implied by the defined ``N*`` macros."""
    return sum(1 for a in range(3) if axis_macro(a) in macros)


def decompose_flat_index(node, ndim: int) -> "list | None":
    """Split a row-major flat index into per-axis coordinate expressions.

    Matches the generator's convention ``((c2) * NY + (c1)) * NX + (c0)``
    (x fastest); returns ``[c0, c1, (c2)]`` or ``None`` when the
    expression does not have that shape.
    """
    coords: list = []
    current = node
    for axis in range(ndim - 1):
        if not (isinstance(current, E.Bin) and current.op == "+"):
            return None
        mul = current.lhs
        if not (
            isinstance(mul, E.Bin)
            and mul.op == "*"
            and isinstance(mul.rhs, E.Name)
            and mul.rhs.id == axis_macro(axis)
        ):
            return None
        coords.append(current.rhs)
        current = mul.lhs
    coords.append(current)
    return coords


def coord_parts(node) -> "tuple[str, float] | None":
    """Split a coordinate expression into ``(base variable, offset)``.

    Handles the generator's forms: ``x``, ``x + (-2)``, ``x + (2)``.
    """
    if isinstance(node, E.Name):
        return node.id, 0.0
    if isinstance(node, E.Bin) and node.op in ("+", "-"):
        if isinstance(node.lhs, E.Name) and isinstance(node.rhs, E.Num):
            off = node.rhs.value
            return node.lhs.id, (-off if node.op == "-" else off)
    return None


def builtin_env(unit: ir.TranslationUnit) -> dict:
    """Initial interval environment: thread/block coordinate ranges.

    Block dimensions come from the host ``dim3 block(...)``, grid extents
    from ``dim3 grid(...)``; without a host launcher both default to the
    sound ``[0, +inf)``.
    """
    env: dict = {}
    for i, axis in enumerate(("x", "y", "z")):
        tdim = gdim = None
        if unit.host is not None:
            tdim = E.eval_const(unit.host.block_dims[i], unit.macros)
            gdim = E.eval_const(unit.host.grid_dims[i], unit.macros)
        env[f"threadIdx.{axis}"] = E.Interval(0, tdim - 1 if tdim else E.INF)
        env[f"blockIdx.{axis}"] = E.Interval(0, gdim - 1 if gdim else E.INF)
    return env


def thread_varying(kernel: ir.Kernel) -> set[str]:
    """Variables whose value differs across the threads of a block.

    Seeds with the ``threadIdx`` builtins and the value intrinsics, then
    propagates through declarations and loop variables until fixpoint.
    """
    varying: set[str] = {f"threadIdx.{a}" for a in ("x", "y", "z")}
    changed = True
    while changed:
        changed = False
        for stmt, _ in ir.walk_stmts(kernel.body):
            name = None
            refs: set[str] = set()
            if isinstance(stmt, ir.VarDecl) and stmt.init is not None:
                name = stmt.name
                refs = E.names_in(stmt.init)
                calls = {n.func for n in E.walk(stmt.init) if isinstance(n, E.Call)}
                refs |= calls & set(THREAD_INTRINSICS)
            elif isinstance(stmt, ir.For) and stmt.init is not None:
                name = stmt.var
                refs = E.names_in(stmt.init)
                calls = {n.func for n in E.walk(stmt.init) if isinstance(n, E.Call)}
                refs |= calls & set(THREAD_INTRINSICS)
            if name and name not in varying and refs & (varying | set(THREAD_INTRINSICS)):
                varying.add(name)
                changed = True
    return varying


def cond_is_divergent(cond, varying: set[str]) -> bool:
    """True when a branch/loop condition can differ across threads."""
    if cond is None:
        return False
    if E.names_in(cond) & varying:
        return True
    calls = {n.func for n in E.walk(cond) if isinstance(n, E.Call)}
    return bool(calls & set(THREAD_INTRINSICS))
