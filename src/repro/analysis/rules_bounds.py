"""Symbolic bounds and halo checking (rules BOUNDS001-003).

The pass walks the kernel with an interval environment seeded from the
host launch geometry (``threadIdx``/``blockIdx`` ranges), propagated
through declarations, narrowed by loop ranges and guard predicates.
Every subscript of a global array (row-major ``in``/``out``) or of a
declared local/shared array must then be *provably* inside the array --
the whole access interval within ``[0, N-1]`` -- otherwise BOUNDS001
fires with the offending axis and range.

BOUNDS002 is the **guard contract**: the boundary guard of a stencil
kernel must clip each axis by exactly the stencil's per-axis extent.
A looser guard reads out of bounds (also BOUNDS001); a tighter guard --
e.g. the historical bug of guarding every axis by the uniform Chebyshev
``order`` instead of ``axis_extents`` -- silently skips interior points
that the analytical model prices, so prediction and kernel drift apart.
When the originating stencil is attached to the context the expected
extents come from it; for bare snippets they are inferred from the tap
offsets actually present under the guard.
"""

from __future__ import annotations

from . import expr as E
from . import ir, semantics
from .findings import Finding, Severity
from .framework import AnalysisPass, RuleInfo


class BoundsPass(AnalysisPass):
    name = "bounds"
    rules = (
        RuleInfo(
            "BOUNDS001",
            Severity.ERROR,
            "array access not provably in bounds",
            "The access interval under all guards and loop ranges exceeds "
            "the array extent: out-of-bounds reads/writes on real hardware.",
        ),
        RuleInfo(
            "BOUNDS002",
            Severity.ERROR,
            "boundary guard does not match per-axis stencil extents",
            "Guard radius must equal the stencil's extent on each axis; a "
            "tighter guard skips interior points the performance model "
            "prices, a looser one is an out-of-bounds access.",
        ),
        RuleInfo(
            "BOUNDS003",
            Severity.INFO,
            "index expression outside the analyzable subset",
            "The access was not checked; keep generated indices in the "
            "row-major convention so the bounds checker can see them.",
        ),
    )

    def run(self, ctx) -> list:
        findings: list = []
        for kernel in ctx.unit.kernels:
            _KernelScan(ctx, kernel, findings).scan()
        return findings


class _KernelScan:
    """One kernel's walk: env propagation, access checks, guard contract."""

    def __init__(self, ctx, kernel: ir.Kernel, findings: list):
        self.ctx = ctx
        self.kernel = kernel
        self.findings = findings
        self.macros = ctx.macros
        self.ndim = semantics.grid_rank(self.macros) or (
            ctx.stencil.ndim if ctx.stencil is not None else 0
        )
        self.arrays = {
            d.name: d for d in kernel.declarations().values() if d.is_array
        }
        # Innermost guard -> accumulated evidence for the contract check.
        self.guard_taps: dict[int, dict[int, list[float]]] = {}
        self.guard_writes: dict[int, dict[int, str]] = {}
        self.guard_nodes: dict[int, ir.If] = {}

    # ------------------------------------------------------------------
    def scan(self) -> None:
        env = semantics.builtin_env(self.ctx.unit)
        self._scan(self.kernel.body, env, None)
        self._check_guard_contract()

    def _scan(self, stmts, env, guard: "ir.If | None") -> None:
        env = dict(env)
        for stmt in stmts:
            if isinstance(stmt, ir.VarDecl):
                if stmt.init is not None:
                    self._check_expr(stmt.init, env, guard, stmt.line)
                    if not stmt.is_array:
                        env[stmt.name] = E.eval_interval(stmt.init, env, self.macros)
            elif isinstance(stmt, ir.For):
                if stmt.init is not None:
                    self._check_expr(stmt.init, env, guard, stmt.line)
                if stmt.cond is not None:
                    self._check_expr(stmt.cond, env, guard, stmt.line)
                child = dict(env)
                if stmt.var:
                    child[stmt.var] = self._loop_range(stmt, env)
                self._scan(stmt.body, child, guard)
            elif isinstance(stmt, ir.If):
                refined = E.refine_env(stmt.cond, env, self.macros)
                self.guard_nodes[id(stmt)] = stmt
                self._scan(stmt.body, refined, stmt)
            elif isinstance(stmt, ir.Assign):
                self._check_expr(stmt.target, env, guard, stmt.line, is_write=True)
                self._check_expr(stmt.value, env, guard, stmt.line)
            elif isinstance(stmt, ir.CallStmt):
                for a in stmt.call.args:
                    self._check_expr(a, env, guard, stmt.line)

    def _loop_range(self, stmt: ir.For, env) -> E.Interval:
        lo, hi = -E.INF, E.INF
        if stmt.init is not None:
            lo = E.eval_interval(stmt.init, env, self.macros).lo
        bound = ir._upper_bound(stmt.cond) if stmt.cond is not None else None
        if bound is not None:
            hi = E.eval_interval(bound, env, self.macros).hi - 1
        if lo > hi:  # statically empty loop: keep the init point
            hi = lo
        return E.Interval(lo, hi)

    # ------------------------------------------------------------------
    def _check_expr(self, node, env, guard, line, is_write: bool = False) -> None:
        for sub in E.walk(node):
            if isinstance(sub, E.Index) and isinstance(sub.base, E.Name):
                self._check_access(sub, env, guard, line, is_write)

    def _check_access(self, node: E.Index, env, guard, line, is_write) -> None:
        base = node.base.id
        if base in semantics.GLOBAL_ARRAYS and len(node.indices) == 1:
            self._check_global(base, node.indices[0], env, guard, line, is_write)
            return
        decl = self.arrays.get(base)
        if decl is not None and len(node.indices) == len(decl.dims):
            for k, (idx, dim) in enumerate(zip(node.indices, decl.dims)):
                size = E.eval_const(dim, self.macros)
                if size is None:
                    continue
                rng = E.eval_interval(idx, env, self.macros)
                if not rng.within(0, size - 1):
                    self._oob(base, k, rng, size, line)

    def _check_global(self, base, idx, env, guard, line, is_write) -> None:
        # Prefetch pseudo-intrinsic: a whole-plane read on the stream axis.
        plane = self._plane_index_arg(idx)
        if plane is not None:
            axis = self._stream_axis()
            if axis is None:
                return
            size = self.macros.get(semantics.axis_macro(axis))
            if size is None:
                return
            rng = E.eval_interval(plane, env, self.macros)
            if not rng.within(0, size - 1):
                self._oob(base, axis, rng, size, line)
            return

        coords = semantics.decompose_flat_index(idx, self.ndim) if self.ndim else None
        if coords is None:
            self.findings.append(
                Finding.make(
                    "BOUNDS003",
                    Severity.INFO,
                    f"index into {base!r} is outside the analyzable row-major "
                    "subset; access not checked",
                    line=line,
                    kernel=self.kernel.name,
                )
            )
            return
        for axis, coord in enumerate(coords):
            size = self.macros.get(semantics.axis_macro(axis))
            if size is None:
                continue
            rng = E.eval_interval(coord, env, self.macros)
            if not rng.within(0, size - 1):
                self._oob(base, axis, rng, size, line)
            if guard is not None:
                self._record_guard_evidence(guard, axis, coord, base, is_write)

    @staticmethod
    def _plane_index_arg(idx):
        if isinstance(idx, E.Call) and idx.func == "_plane_index" and len(idx.args) == 1:
            return idx.args[0]
        return None

    def _stream_axis(self) -> "int | None":
        setting, oc = self.ctx.setting, self.ctx.oc
        if setting is None or oc is None or "ST" not in oc:
            return None
        return setting["stream_dim"] - 1

    def _oob(self, base, axis, rng, size, line) -> None:
        self.findings.append(
            Finding.make(
                "BOUNDS001",
                Severity.ERROR,
                f"access to {base!r} axis {axis} spans {rng} but the valid "
                f"range is [0, {int(size) - 1}]",
                line=line,
                kernel=self.kernel.name,
                array=base,
                axis=axis,
                lo=rng.lo,
                hi=rng.hi,
                size=size,
            )
        )

    # ------------------------------------------------------------------
    # guard contract (BOUNDS002)
    # ------------------------------------------------------------------
    def _record_guard_evidence(self, guard, axis, coord, base, is_write) -> None:
        parts = semantics.coord_parts(coord)
        if parts is None:
            return
        var, offset = parts
        key = id(guard)
        if is_write and base == "out":
            self.guard_writes.setdefault(key, {})[axis] = var
        elif base == "in":
            self.guard_taps.setdefault(key, {}).setdefault(axis, []).append(offset)

    def _check_guard_contract(self) -> None:
        stencil = self.ctx.stencil
        for key, write_vars in self.guard_writes.items():
            guard = self.guard_nodes[key]
            bounds = E.guard_bounds(guard.cond, self.macros)
            taps = self.guard_taps.get(key, {})
            for axis, var in sorted(write_vars.items()):
                size = self.macros.get(semantics.axis_macro(axis))
                if size is None:
                    continue
                if stencil is not None and axis < stencil.ndim:
                    extent = stencil.axis_extents[axis]
                elif taps.get(axis):
                    extent = max(abs(o) for o in taps[axis])
                else:
                    continue
                lo, hi = bounds.get(var, (None, None))
                expected_lo, expected_hi = float(extent), float(size - extent)
                if lo == expected_lo and hi == expected_hi:
                    continue
                direction = self._direction(lo, hi, expected_lo, expected_hi)
                self.findings.append(
                    Finding.make(
                        "BOUNDS002",
                        Severity.ERROR,
                        f"guard on axis {axis} ({var!r}) clips "
                        f"[{_fmt(lo)}, {_fmt(hi)}) but the stencil extent "
                        f"requires [{int(expected_lo)}, {int(expected_hi)}): "
                        f"{direction}",
                        line=guard.line,
                        kernel=self.kernel.name,
                        axis=axis,
                        var=var,
                        got_lo=lo,
                        got_hi=hi,
                        expected_lo=expected_lo,
                        expected_hi=expected_hi,
                    )
                )

    @staticmethod
    def _direction(lo, hi, expected_lo, expected_hi) -> str:
        if lo is None or hi is None:
            return "guard leaves the axis unbounded (out-of-bounds access)"
        if lo > expected_lo or hi < expected_hi:
            return (
                "over-guarded: interior points are skipped while the "
                "performance model prices them (codegen-model drift)"
            )
        return "under-guarded: boundary taps read out of bounds"


def _fmt(v) -> str:
    return "?" if v is None else str(int(v))
