"""Coalescing and divergence heuristics (rules PERF001-PERF003).

Warnings, not errors: these configurations are *legal* -- the sweep
deliberately samples them so the performance model can learn their cost
-- but each one throws away global-memory bandwidth in a way the
analytical model prices down (``coalescing`` factors in
:mod:`repro.optimizations.kernelmodel`).  The lint surfaces them so a
hand-picked configuration does not hit one by accident.
"""

from __future__ import annotations

from .findings import Finding, Severity
from .framework import AnalysisPass, RuleInfo

#: Threads per warp on every NVIDIA GPU; the default when the analysis
#: context has no target device.  AMD wavefronts are 64 wide, so PERF002
#: reads the width from ``ctx.warp_size`` when a device is attached.
WARP = 32


class MemoryAccessPass(AnalysisPass):
    name = "memory"
    rules = (
        RuleInfo(
            "PERF001",
            Severity.WARNING,
            "streaming along the contiguous axis",
            "Sweeping x leaves threads covering (y[,z]); every warp load "
            "is a strided row fetch using a quarter of each sector.",
        ),
        RuleInfo(
            "PERF002",
            Severity.WARNING,
            "block narrower than a warp along x",
            "BLOCK_X below 32 issues partial warps; global loads waste "
            "the unused lanes of every transaction.",
        ),
        RuleInfo(
            "PERF003",
            Severity.WARNING,
            "block merging along the contiguous axis",
            "Adjacent merged outputs along x stride the warp's accesses "
            "by the merge factor, splitting each load across sectors.",
        ),
    )

    def run(self, ctx) -> list:
        findings: list = []
        oc, setting = ctx.oc, ctx.setting

        if oc is not None and setting is not None:
            if "ST" in oc and setting["stream_dim"] == 1:
                findings.append(
                    Finding.make(
                        "PERF001",
                        Severity.WARNING,
                        "streaming sweeps the contiguous axis (stream_dim=1); "
                        "warp accesses become strided row fetches",
                    )
                )
            if "BM" in oc and setting["merge_dim"] == 1:
                findings.append(
                    Finding.make(
                        "PERF003",
                        Severity.WARNING,
                        f"block merging {setting['merge_factor']} adjacent "
                        "points along the contiguous axis strides warp "
                        "accesses by the merge factor",
                    )
                )

        warp = getattr(ctx, "warp_size", WARP)
        block_x = ctx.macros.get("BLOCK_X")
        if block_x is not None and block_x < warp:
            findings.append(
                Finding.make(
                    "PERF002",
                    Severity.WARNING,
                    f"BLOCK_X={int(block_x)} is narrower than a {warp}-thread "
                    "warp; global loads issue partially-filled transactions",
                )
            )
        return findings
