"""Lint driver: analyze generated kernels across the (stencil, OC) grid.

``lint_kernel`` generates and analyzes one variant; ``lint_sweep``
covers a stencil selection against all 30 OCs with deterministically
sampled parameter settings (seeded per (stencil, OC) so adding a
stencil does not reshuffle everyone else's settings).  Infeasible
settings -- the analytical model refuses the launch, e.g. a temporal
halo consuming the tile -- are resampled a bounded number of times and
skipped when the OC has no feasible point at that grid, mirroring how
the profiling campaign treats them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from ..codegen.core import generate_source
from ..errors import KernelLaunchError, OptimizationError
from ..optimizations import kernelmodel
from ..optimizations.combos import ALL_OCS, OC
from ..optimizations.params import ParamSetting, sample_setting
from ..stencil import library
from .findings import Baseline, Severity
from .framework import Analyzer

#: Resample attempts before declaring an OC infeasible for a stencil.
MAX_SAMPLE_ATTEMPTS = 64


def _rng_for(stencil_name: str, oc_name: str, seed: int) -> np.random.Generator:
    """Deterministic per-(stencil, OC) stream, stable across sweeps."""
    digest = hashlib.blake2b(
        f"{stencil_name}|{oc_name}|{seed}".encode(), digest_size=8
    ).digest()
    return np.random.default_rng(int.from_bytes(digest, "big"))


def feasible_settings(
    stencil,
    oc: OC,
    count: int,
    seed: int = 0,
    grid: "tuple[int, ...] | None" = None,
) -> list[ParamSetting]:
    """Sample *count* distinct model-feasible settings (may return fewer)."""
    rng = _rng_for(stencil.name or "anonymous", oc.name, seed)
    out: list[ParamSetting] = []
    seen: set = set()
    for _ in range(MAX_SAMPLE_ATTEMPTS):
        if len(out) >= count:
            break
        s = sample_setting(oc, stencil.ndim, rng)
        if s.as_tuple() in seen:
            continue
        seen.add(s.as_tuple())
        try:
            kernelmodel.build_profile(stencil, oc, s, grid)
        except (KernelLaunchError, OptimizationError):
            continue
        out.append(s)
    return out


def lint_kernel(
    stencil,
    oc: "OC | str",
    setting: ParamSetting,
    grid: "tuple[int, ...] | None" = None,
    analyzer: "Analyzer | None" = None,
    baseline: "Baseline | None" = None,
    dialect: str = "cuda",
    gpu=None,
):
    """Generate one kernel variant and analyze it; ``(source, Report)``.

    ``dialect`` selects the emitted source flavour (CUDA or HIP); ``gpu``
    (spec or name) attaches the target device so warp-sensitive rules use
    its scheduling width.
    """
    oc_obj = OC.parse(oc) if isinstance(oc, str) else oc
    source = generate_source(stencil, oc_obj, setting, grid, dialect=dialect)
    analyzer = analyzer or Analyzer()
    report = analyzer.analyze(
        source, stencil=stencil, oc=oc_obj, setting=setting, grid=grid,
        gpu=gpu, baseline=baseline,
    )
    return source, report


@dataclass
class LintRecord:
    """One analyzed (stencil, OC, setting) triple."""

    stencil: str
    oc: str
    setting: ParamSetting
    report: object  # findings.Report

    def to_dict(self) -> dict:
        return {
            "stencil": self.stencil,
            "oc": self.oc,
            "setting": dict(self.setting),
            **self.report.to_dict(),
        }


@dataclass
class LintSummary:
    """Aggregated result of a lint sweep."""

    records: list = field(default_factory=list)
    skipped: list = field(default_factory=list)  # (stencil, oc) with no feasible point

    @property
    def errors(self) -> int:
        return sum(len(r.report.errors) for r in self.records)

    @property
    def warnings(self) -> int:
        return sum(len(r.report.warnings) for r in self.records)

    @property
    def ok(self) -> bool:
        return self.errors == 0

    def all_findings(self) -> list:
        return [f for r in self.records for f in r.report.findings]

    def to_dict(self) -> dict:
        return {
            "kernels": len(self.records),
            "errors": self.errors,
            "warnings": self.warnings,
            "skipped": [list(s) for s in self.skipped],
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_text(self, verbose: bool = False) -> str:
        lines: list[str] = []
        for r in self.records:
            if not r.report.findings and not verbose:
                continue
            for f in r.report.findings:
                lines.append(f"{r.stencil} x {r.oc}: {f.format()}")
            if verbose and not r.report.findings:
                lines.append(f"{r.stencil} x {r.oc}: clean")
        for stencil, oc in self.skipped:
            lines.append(f"{stencil} x {oc}: skipped (no feasible setting)")
        lines.append(
            f"{len(self.records)} kernels linted: "
            f"{self.errors} error(s), {self.warnings} warning(s)"
        )
        return "\n".join(lines)


def lint_sweep(
    stencils: "list | None" = None,
    ocs: "list[OC] | None" = None,
    n_settings: int = 1,
    seed: int = 0,
    grid: "tuple[int, ...] | None" = None,
    analyzer: "Analyzer | None" = None,
    baseline: "Baseline | None" = None,
    dialect: str = "cuda",
    gpu=None,
) -> LintSummary:
    """Lint every (stencil, OC) pair with sampled feasible settings."""
    stencils = list(library.LIBRARY.values()) if stencils is None else list(stencils)
    ocs = list(ALL_OCS) if ocs is None else list(ocs)
    analyzer = analyzer or Analyzer()
    summary = LintSummary()
    for stencil in stencils:
        for oc in ocs:
            settings = feasible_settings(stencil, oc, n_settings, seed, grid)
            if not settings:
                summary.skipped.append((stencil.name or "anonymous", oc.name))
                continue
            for setting in settings:
                _, report = lint_kernel(
                    stencil, oc, setting, grid, analyzer, baseline,
                    dialect=dialect, gpu=gpu,
                )
                summary.records.append(
                    LintRecord(
                        stencil=stencil.name or "anonymous",
                        oc=oc.name,
                        setting=setting,
                        report=report,
                    )
                )
    return summary


def worst_severity(summary: LintSummary) -> "Severity | None":
    """Most severe finding in *summary* (``None`` for a clean sweep).

    Severity ranks ascend from most to least severe (error=0), so the
    worst finding is the *minimum* rank.
    """
    findings = summary.all_findings()
    if not findings:
        return None
    return min((f.severity for f in findings), key=lambda s: s.rank)
