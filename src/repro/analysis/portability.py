"""Cross-vendor transfer benchmark: NVIDIA-trained selectors on AMD.

The portability experiment of ISSUE 10, answering two questions on
held-out stencils measured on AMD-class targets (wavefront-64 CDNA
devices) the selectors never profiled:

- **Zero-shot transfer**: how much OC-ranking quality survives when
  every training measurement comes from the four NVIDIA GPUs?
- **Recovery**: how much of the gap to a natively-trained selector does
  adding a *single* AMD GPU (MI100) to the training campaign close on
  the remaining AMD targets?

Three selector regimes are scored per family:

``zero_shot``
    Trained on NVIDIA measurements only.
``plus_one_amd``
    Trained on NVIDIA measurements plus the MI100 rows.
``native``
    Trained on the target GPU's own (sparse) training rows -- the
    in-distribution ceiling the transfer regimes are judged against.

The training-free families (heuristic ladder, analytical selector) have
no regimes: they see no campaign, so their score is the same in all
three columns and serves as the portability floor/reference.

``tools/bench_portability.py`` records the document as
``BENCH_portability.json``; the CI bench-smoke job runs the quick shape.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..gpu.specs import GPU_ORDER
from ..stencil.generator import generate_population
from .bench import REGRET, _bench_ocs, _predict_rows, _score_picks

__all__ = [
    "make_transfer_campaigns",
    "run_portability_bench",
    "run_transfer_regression",
    "run_transfer_selection",
]


def _bench_shape(quick: bool) -> dict:
    """Campaign sizes and GPU roles.

    The training campaign spans the NVIDIA sources, the single AMD
    training GPU and the AMD targets (the target rows exist only so the
    ``native`` ceiling has something to train on).  The held-out test
    campaign is measured on the targets alone, densely enough to act as
    the ranking oracle (see :func:`repro.analysis.bench._bench_shape`).
    """
    if quick:
        return dict(
            n_train=5, n_test=4,
            nvidia_gpus=("V100", "A100"), amd_train_gpu="MI100",
            target_gpus=("MI210",),
            n_settings=1, oracle_settings=8, rank_settings=4,
        )
    return dict(
        n_train=12, n_test=8,
        nvidia_gpus=tuple(GPU_ORDER), amd_train_gpu="MI100",
        target_gpus=("MI210", "MI250"),
        n_settings=2, oracle_settings=16, rank_settings=8,
    )


def make_transfer_campaigns(quick: bool = False, seed: int = 31):
    """Disjoint train/test campaigns for the transfer experiment."""
    from ..optimizations.combos import OC_BY_NAME
    from ..profiling import run_campaign

    shape = _bench_shape(quick)
    pop = generate_population(2, shape["n_train"] + shape["n_test"], seed=seed)
    ocs = [OC_BY_NAME[n] for n in _bench_ocs()]
    train_gpus = (
        tuple(shape["nvidia_gpus"])
        + (shape["amd_train_gpu"],)
        + tuple(shape["target_gpus"])
    )
    train = run_campaign(
        pop[: shape["n_train"]], gpus=train_gpus, ocs=ocs,
        n_settings=shape["n_settings"], seed=seed,
    )
    test = run_campaign(
        pop[shape["n_train"]:], gpus=shape["target_gpus"], ocs=ocs,
        n_settings=shape["oracle_settings"], seed=seed + 1,
    )
    return train, test


# ----------------------------------------------------------------------
# selection: rank OCs on an unseen-vendor target
# ----------------------------------------------------------------------
def _gbdt_picks(train, source_gpu: str, stencils, seed: int) -> "list[str]":
    """Picks of a GBDT selector trained on *source_gpu* for *stencils*."""
    from ..profiling.train import train_selector_artifact
    from ..serve.features import FeatureCache

    art = train_selector_artifact(train, source_gpu, method="gbdt", seed=seed)
    x = FeatureCache(art.max_order).features(list(stencils))
    return [art.representatives[int(c)] for c in art.model.predict(x)]


def _predictor_picks(
    art, stencils, gpu: str, n_settings: int, seed: int
) -> "list[str]":
    """Pick one OC per stencil by ranking the predictor's estimates.

    For every candidate OC the predictor prices ``n_settings`` sampled
    parameter settings on *gpu*; the OC whose cheapest predicted setting
    wins is the pick.  This is the regression family's selection mode:
    the cross-architecture predictor carries the hardware feature vector,
    so the *same artifact* ranks on a GPU it never trained on.

    Settings that cannot launch on the target are screened out before
    ranking: the predictors train on successful measurements only, so
    their extrapolation onto crashing configurations is unconstrained --
    and launchability is knowable without measuring anything.
    """
    from ..errors import KernelLaunchError, OptimizationError
    from ..gpu.occupancy import compute_occupancy
    from ..gpu.specs import get_gpu, hardware_features
    from ..ml.preprocess import LogTimeTransform, augment_features
    from ..optimizations.combos import OC_BY_NAME
    from ..optimizations.kernelmodel import build_profile
    from ..optimizations.params import sample_settings
    from ..profiling.dataset import oc_flags
    from ..stencil.features import batch_features

    spec = get_gpu(gpu)

    def _launchable(stencil, oc, setting) -> bool:
        try:
            if spec.warp_size == 32:
                p = build_profile(stencil, oc, setting)
            else:
                p = build_profile(stencil, oc, setting, warp_size=spec.warp_size)
            compute_occupancy(
                spec, p.threads_per_block, p.regs_per_thread, p.smem_per_block
            )
        except (KernelLaunchError, OptimizationError):
            return False
        return True

    hw = np.array(hardware_features(gpu))
    sten_feats = batch_features(list(stencils), art.max_order)
    candidates = _bench_ocs()
    picks: list[str] = []
    for i, stencil in enumerate(stencils):
        rows: list[np.ndarray] = []
        meta: list[tuple[str, object]] = []
        for j, oc_name in enumerate(candidates):
            oc = OC_BY_NAME[oc_name]
            rng = np.random.default_rng((seed, i, j))
            for setting in sample_settings(oc, stencil.ndim, n_settings, rng):
                if not _launchable(stencil, oc, setting):
                    continue
                aux = np.concatenate([oc_flags(oc_name), setting.encode(), hw])
                rows.append(np.concatenate([sten_feats[i], aux]))
                meta.append((oc_name, setting))
        if not rows:
            picks.append("naive")
            continue
        X = np.stack(rows)
        if art.method == "hybrid":
            from .perfmodel import analytical_features

            extra = np.array(
                [
                    analytical_features(stencil, OC_BY_NAME[oc_name], setting, gpu)
                    for oc_name, setting in meta
                ],
                dtype=np.float64,
            )
            X = augment_features(X, extra)
        pred = LogTimeTransform.inverse(art.model.predict(X))
        best: dict[str, float] = {}
        for (oc_name, _), t in zip(meta, pred):
            if math.isfinite(t) and t < best.get(oc_name, math.inf):
                best[oc_name] = float(t)
        picks.append(min(best, key=best.get) if best else "naive")
    return picks


def _mean_scores(rows: "list[dict]") -> dict:
    """Field-wise mean of ``_score_picks`` dicts (ensemble of sources)."""
    return {
        "top1": float(np.mean([r["top1"] for r in rows])),
        "near_optimal": float(np.mean([r["near_optimal"] for r in rows])),
        "geomean_slowdown": float(
            np.mean([r["geomean_slowdown"] for r in rows])
        ),
        "infeasible_picks": float(np.mean([r["infeasible_picks"] for r in rows])),
    }


def run_transfer_selection(
    train, test, seed: int = 31, quick: bool = False
) -> dict:
    """Selection quality per family x regime on the AMD targets."""
    from ..ml.analytical import AnalyticalSelector
    from ..profiling.train import train_predictor_artifact
    from ..serve.fallback import HeuristicSelector

    shape = _bench_shape(quick)
    nvidia = list(shape["nvidia_gpus"])
    amd_train = shape["amd_train_gpu"]
    rank_settings = shape["rank_settings"]
    regime_gpus = {
        "zero_shot": tuple(nvidia),
        "plus_one_amd": tuple(nvidia) + (amd_train,),
    }

    families: dict[str, dict[str, dict]] = {}
    wall: dict[str, float] = {}

    def _record(family: str, regime: str, gpu: str, scores: dict) -> None:
        families.setdefault(family, {}).setdefault(regime, {})[gpu] = scores

    # --- training-free references (regime-independent) ----------------
    analytical = AnalyticalSelector(
        candidates=_bench_ocs(), n_settings=rank_settings, seed=seed
    )
    heuristic = HeuristicSelector()
    for name, picker in (
        ("analytical", lambda g: analytical.select_many(test.stencils, g)),
        ("heuristic-ladder", lambda g: [heuristic.select(s, g) for s in test.stencils]),
    ):
        t0 = time.perf_counter()
        for gpu in test.gpus:
            scores = _score_picks(test, gpu, picker(gpu))
            for regime in ("zero_shot", "plus_one_amd", "native"):
                _record(name, regime, gpu, scores)
        wall[name] = time.perf_counter() - t0

    # --- GBDT classification selector ----------------------------------
    # Per-GPU classifiers do not embed hardware features, so transfer is
    # an ensemble question: zero-shot applies each NVIDIA-trained
    # selector to the AMD target and averages; plus-one applies the
    # MI100-trained selector; native trains on the target's own rows.
    t0 = time.perf_counter()
    nvidia_picks = {g: _gbdt_picks(train, g, test.stencils, seed) for g in nvidia}
    mi_picks = _gbdt_picks(train, amd_train, test.stencils, seed)
    for gpu in test.gpus:
        _record(
            "gbdt", "zero_shot", gpu,
            _mean_scores([_score_picks(test, gpu, nvidia_picks[g]) for g in nvidia]),
        )
        _record("gbdt", "plus_one_amd", gpu, _score_picks(test, gpu, mi_picks))
        _record(
            "gbdt", "native", gpu,
            _score_picks(test, gpu, _gbdt_picks(train, gpu, test.stencils, seed)),
        )
    wall["gbdt"] = time.perf_counter() - t0

    # --- cross-architecture regression predictors -----------------------
    for method in ("gbr", "hybrid"):
        t0 = time.perf_counter()
        for regime, gpus in regime_gpus.items():
            art = train_predictor_artifact(
                train, gpus=gpus, method=method, seed=seed
            )
            for gpu in test.gpus:
                picks = _predictor_picks(
                    art, test.stencils, gpu, rank_settings, seed
                )
                _record(method, regime, gpu, _score_picks(test, gpu, picks))
        for gpu in test.gpus:
            art = train_predictor_artifact(
                train, gpus=(gpu,), method=method, seed=seed
            )
            picks = _predictor_picks(art, test.stencils, gpu, rank_settings, seed)
            _record(method, "native", gpu, _score_picks(test, gpu, picks))
        wall[method] = time.perf_counter() - t0

    # --- aggregate + recovery -------------------------------------------
    out = {
        "targets": list(test.gpus),
        "nvidia_sources": nvidia,
        "amd_train_gpu": amd_train,
        "n_test_stencils": len(test.stencils),
        "ocs": list(_bench_ocs()),
        "regret_threshold": REGRET,
        "families": {},
    }
    for family, regimes in families.items():
        entry: dict = {"wall_s": wall[family], "regimes": {}}
        for regime, per_gpu in regimes.items():
            entry["regimes"][regime] = {
                "per_gpu": per_gpu,
                **_mean_scores(list(per_gpu.values())),
            }
        zs = entry["regimes"]["zero_shot"]["near_optimal"]
        p1 = entry["regimes"]["plus_one_amd"]["near_optimal"]
        nat = entry["regimes"]["native"]["near_optimal"]
        entry["near_optimal_recovered"] = p1 - zs
        gap = nat - zs
        # Only meaningful when native actually beats zero-shot; at small
        # test sizes a family can transfer better than it trains.
        entry["recovery_fraction"] = (p1 - zs) / gap if gap > 1e-9 else None
        out["families"][family] = entry
    return out


# ----------------------------------------------------------------------
# regression: runtime fidelity on the unseen vendor
# ----------------------------------------------------------------------
def run_transfer_regression(
    train, test, seed: int = 31, quick: bool = False
) -> dict:
    """Held-out AMD runtime fidelity of the gbr / hybrid predictors."""
    from ..ml.metrics import mape, pcc
    from ..profiling.dataset import build_regression_dataset
    from ..profiling.train import train_predictor_artifact

    shape = _bench_shape(quick)
    regime_gpus = {
        "zero_shot": tuple(shape["nvidia_gpus"]),
        "plus_one_amd": tuple(shape["nvidia_gpus"]) + (shape["amd_train_gpu"],),
    }
    out: dict = {"predictors": {}}
    for method in ("gbr", "hybrid"):
        per_regime: dict = {}
        for regime, gpus in regime_gpus.items():
            art = train_predictor_artifact(
                train, gpus=gpus, method=method, seed=seed
            )
            per_gpu: dict = {}
            for gpu in test.gpus:
                ds = build_regression_dataset(test, (gpu,))
                y = ds.times_ms
                pred = _predict_rows(art, test, ds)
                per_gpu[gpu] = {
                    "pcc": pcc(y, pred),
                    "log_pcc": pcc(np.log(y), np.log(np.maximum(pred, 1e-9))),
                    "mape": mape(y, pred),
                    "rows": int(ds.n_samples),
                }
            per_regime[regime] = {
                "per_gpu": per_gpu,
                "pcc": float(np.mean([m["pcc"] for m in per_gpu.values()])),
                "log_pcc": float(
                    np.mean([m["log_pcc"] for m in per_gpu.values()])
                ),
            }
        out["predictors"][method] = per_regime
    return out


def run_portability_bench(quick: bool = False, seed: int = 31) -> dict:
    """Full document: shared campaigns, selection + regression sections."""
    train, test = make_transfer_campaigns(quick=quick, seed=seed)
    return {
        "quick": quick,
        "seed": seed,
        "shape": _bench_shape(quick),
        "selection": run_transfer_selection(train, test, seed=seed, quick=quick),
        "regression": run_transfer_regression(train, test, seed=seed, quick=quick),
    }
