"""Shared-memory race detection (rules RACE001, RACE002).

Model
-----
A ``__shared__`` array is *dirty* from the moment any statement writes it
until the next ``__syncthreads()``.  A **cross-thread read** -- an
explicit subscript read, or an intrinsic documented to consume other
threads' elements (``_tile_update``, ``_plane_time_update``) -- of a
dirty array races: another thread may still be writing the element this
thread reads.  Queue-rotation intrinsics (``_queue_push``,
``_queue_rotate``) write thread-private slices and are not treated as
cross-thread readers of their own array.

Loops are scanned **twice** with carried dirty-state, so a loop body
whose iteration N+1 reads what iteration N wrote is caught without any
extra machinery (the classic missing-barrier-in-streaming-loop bug).

RACE002 flags a barrier nested under thread-divergent control flow
(a guard on thread coordinates, or a loop whose bounds vary per
thread): threads that skip the branch never reach the barrier and the
block deadlocks -- undefined behaviour on every CUDA architecture.
"""

from __future__ import annotations

from . import expr as E
from . import ir, semantics
from .findings import Finding, Severity
from .framework import AnalysisPass, RuleInfo

#: Intrinsics whose reads span other threads' writes.
_CROSS_THREAD_READERS = {"_tile_update", "_plane_time_update"}

#: Intrinsics that write shared state: name -> how to resolve the target.
_SHARED_WRITERS = {
    "_tile_store": "arg0",
    "_tile_update": "arg0",
    "_queue_push": "queue",
    "_queue_rotate": "queue",
    "_plane_time_update": "queue",
}


class RacePass(AnalysisPass):
    name = "race"
    rules = (
        RuleInfo(
            "RACE001",
            Severity.ERROR,
            "shared-memory write/read without intervening barrier",
            "A thread may read a __shared__ element another thread is still "
            "writing; results depend on warp scheduling.",
        ),
        RuleInfo(
            "RACE002",
            Severity.ERROR,
            "__syncthreads() under divergent control flow",
            "Threads that do not take the branch never reach the barrier; "
            "the block deadlocks (undefined behaviour).",
        ),
    )

    def run(self, ctx) -> list:
        findings: list = []
        for kernel in ctx.unit.kernels:
            findings.extend(self._check_kernel(kernel))
        return findings

    # ------------------------------------------------------------------
    def _check_kernel(self, kernel: ir.Kernel) -> list:
        findings: list = []
        shared = set(kernel.shared_arrays())
        varying = semantics.thread_varying(kernel)

        # RACE002: barriers under divergent ancestors.
        for stmt, ancestors in ir.walk_stmts(kernel.body):
            if not isinstance(stmt, ir.Barrier):
                continue
            for anc in ancestors:
                divergent = (
                    isinstance(anc, ir.If)
                    and semantics.cond_is_divergent(anc.cond, varying)
                ) or (
                    isinstance(anc, ir.For)
                    and (
                        semantics.cond_is_divergent(anc.cond, varying)
                        or semantics.cond_is_divergent(anc.init, varying)
                    )
                )
                if divergent:
                    findings.append(
                        Finding.make(
                            "RACE002",
                            Severity.ERROR,
                            "__syncthreads() inside thread-divergent control "
                            f"flow (condition at line {anc.line}); threads that "
                            "skip the branch deadlock the block",
                            line=stmt.line,
                            kernel=kernel.name,
                            divergent_line=anc.line,
                        )
                    )
                    break

        # RACE001: dirty-state scan with two-pass loops.
        if shared:
            dirty: dict[str, int] = {}  # array -> line of the unsynced write
            self._scan(kernel, kernel.body, shared, dirty, findings)
        return findings

    # ------------------------------------------------------------------
    def _scan(self, kernel, stmts, shared, dirty, findings) -> None:
        for stmt in stmts:
            if isinstance(stmt, ir.Barrier):
                dirty.clear()
            elif isinstance(stmt, ir.For):
                # Two passes so writes of iteration N meet reads of N+1.
                before = len(findings)
                self._scan(kernel, stmt.body, shared, dirty, findings)
                self._scan(kernel, stmt.body, shared, dirty, findings)
                # A loop body repeats its own findings on the second pass;
                # keep each (rule, line) once.
                seen: set = set()
                unique = []
                for f in findings[before:]:
                    key = (f.rule, f.line, f.message)
                    if key not in seen:
                        seen.add(key)
                        unique.append(f)
                findings[before:] = unique
            elif isinstance(stmt, ir.If):
                self._scan(kernel, stmt.body, shared, dirty, findings)
            else:
                self._visit(kernel, stmt, shared, dirty, findings)

    def _visit(self, kernel, stmt, shared, dirty, findings) -> None:
        reads, writes = self._reads_writes(stmt, shared)
        for array in reads:
            if array in dirty:
                findings.append(
                    Finding.make(
                        "RACE001",
                        Severity.ERROR,
                        f"read of __shared__ {array!r} after the write at "
                        f"line {dirty[array]} with no __syncthreads() between",
                        line=stmt.line,
                        kernel=kernel.name,
                        array=array,
                        write_line=dirty[array],
                    )
                )
        for array in writes:
            dirty.setdefault(array, stmt.line)

    # ------------------------------------------------------------------
    def _reads_writes(self, stmt, shared) -> tuple[set, set]:
        """(cross-thread reads, writes) of shared arrays in one statement."""
        reads: set = set()
        writes: set = set()
        exprs: list = []
        if isinstance(stmt, ir.Assign):
            exprs.append(stmt.value)
            if isinstance(stmt.target, E.Index) and isinstance(stmt.target.base, E.Name):
                base = stmt.target.base.id
                if base in shared:
                    writes.add(base)
                # Compound assignment reads the destination too.
                if stmt.op != "=" and base in shared:
                    reads.add(base)
                exprs.extend(stmt.target.indices)
            else:
                exprs.append(stmt.target)
        elif isinstance(stmt, ir.CallStmt):
            call = stmt.call
            target = _SHARED_WRITERS.get(call.func)
            resolved = self._resolve_target(call, target, shared)
            if resolved:
                writes.update(resolved)
                if call.func in _CROSS_THREAD_READERS:
                    reads.update(resolved)
            exprs.extend(call.args)
        elif isinstance(stmt, ir.VarDecl) and stmt.init is not None:
            exprs.append(stmt.init)
        # Explicit subscript reads anywhere in the expressions.
        for e in exprs:
            for node in E.walk(e):
                if (
                    isinstance(node, E.Index)
                    and isinstance(node.base, E.Name)
                    and node.base.id in shared
                ):
                    reads.add(node.base.id)
        return reads, writes

    @staticmethod
    def _resolve_target(call, target, shared) -> set:
        if target == "arg0" and call.args and isinstance(call.args[0], E.Name):
            name = call.args[0].id
            return {name} if name in shared else set()
        if target == "queue":
            return set(shared)
        return set()
