"""Analytical-model benchmark: selection accuracy and runtime fidelity.

The static performance model's two claims (ISSUE 8) measured on held-out
stencils the learned models never saw:

- **Selection**: ranking candidate OCs by estimated time beats the
  static heuristic ladder, approaching the trained GBDT selector --
  without a single profiled measurement.
- **Regression**: feeding the analytical metric columns to the GBDT
  regressor (the *hybrid* method) matches or improves the plain GBDT's
  runtime correlation (PCC), and the raw analytical estimate alone is
  already strongly rank-correlated with measured times.

``tools/bench_analytical.py`` records the document as
``BENCH_analytical.json``; ``benchmarks/test_analytical.py`` asserts the
acceptance bars on the same functions.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..errors import KernelLaunchError, OptimizationError
from ..ml.metrics import kendall_tau, mape, pcc
from ..ml.preprocess import LogTimeTransform, augment_features
from ..stencil.generator import generate_population

def _bench_ocs() -> "tuple[str, ...]":
    """The full 30-OC grid: a static ladder cannot track the diverse
    best-OC distribution here, which is exactly what the analytical
    ranking is supposed to buy over it."""
    from ..optimizations.combos import ALL_OCS

    return tuple(oc.name for oc in ALL_OCS)

#: Regret threshold: a pick within 10% of the stencil's best measured
#: time counts as correct ("near-optimal accuracy").
REGRET = 1.10


def _bench_shape(quick: bool) -> dict:
    """Campaign sizes.

    ``oracle_settings`` deliberately exceeds the training density: the
    held-out campaign is the *ground truth* selectors are judged
    against, so its per-OC search must be dense enough that the
    measured per-OC optimum approximates the true one.  Against a
    sparse oracle, selection scores mostly measure the oracle's own
    sampling luck.
    """
    if quick:
        return dict(
            n_train=5, n_test=4, gpus=("V100",),
            n_settings=1, oracle_settings=8, selector_settings=4,
        )
    return dict(
        n_train=12, n_test=8, gpus=("V100", "A100"),
        n_settings=2, oracle_settings=16, selector_settings=8,
    )


def make_campaigns(quick: bool = False, seed: int = 29):
    """Disjoint train/test campaigns over one generated population."""
    from ..optimizations.combos import OC_BY_NAME
    from ..profiling import run_campaign

    shape = _bench_shape(quick)
    pop = generate_population(2, shape["n_train"] + shape["n_test"], seed=seed)
    ocs = [OC_BY_NAME[n] for n in _bench_ocs()]
    train = run_campaign(
        pop[: shape["n_train"]], gpus=shape["gpus"], ocs=ocs,
        n_settings=shape["n_settings"], seed=seed,
    )
    test = run_campaign(
        pop[shape["n_train"]:], gpus=shape["gpus"], ocs=ocs,
        n_settings=shape["oracle_settings"], seed=seed + 1,
    )
    return train, test


# ----------------------------------------------------------------------
# selection: analytical vs heuristic ladder vs trained GBDT
# ----------------------------------------------------------------------
def _score_picks(test, gpu: str, picks: "list[str]") -> dict:
    """Top-1 / near-optimal accuracy and geomean slowdown of *picks*."""
    profiles = test.gpu_profiles(gpu)
    top1 = near = 0
    slowdowns: list[float] = []
    infeasible = 0
    for p, pick in zip(profiles, picks):
        t = p.time_of(pick)
        if not math.isfinite(t):
            infeasible += 1
            continue
        ratio = t / p.best_time_ms
        slowdowns.append(ratio)
        top1 += pick == p.best_oc
        near += ratio <= REGRET
    n = len(profiles)
    return {
        "top1": top1 / n,
        "near_optimal": near / n,
        "geomean_slowdown": (
            float(np.exp(np.mean(np.log(slowdowns)))) if slowdowns else math.inf
        ),
        "infeasible_picks": infeasible,
    }


def run_selection_bench(train, test, seed: int = 29, quick: bool = False) -> dict:
    """Selection accuracy of the three selector families on *test*."""
    from ..ml.analytical import AnalyticalSelector
    from ..profiling.train import train_selector_artifact
    from ..serve.fallback import HeuristicSelector
    from ..serve.features import FeatureCache

    analytical = AnalyticalSelector(
        candidates=_bench_ocs(),
        n_settings=_bench_shape(quick)["selector_settings"],
        seed=seed,
    )
    heuristic = HeuristicSelector()
    per_selector: dict[str, dict] = {
        "analytical": {}, "heuristic-ladder": {}, "gbdt": {},
    }
    wall = {"analytical": 0.0, "heuristic-ladder": 0.0, "gbdt": 0.0}
    for gpu in test.gpus:
        t0 = time.perf_counter()
        ana_picks = analytical.select_many(test.stencils, gpu)
        wall["analytical"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        heur_picks = [heuristic.select(s, gpu) for s in test.stencils]
        wall["heuristic-ladder"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        art = train_selector_artifact(train, gpu, method="gbdt", seed=seed)
        x = FeatureCache(art.max_order).features(test.stencils)
        gbdt_picks = [
            art.representatives[int(c)] for c in art.model.predict(x)
        ]
        wall["gbdt"] += time.perf_counter() - t0

        for name, picks in (
            ("analytical", ana_picks),
            ("heuristic-ladder", heur_picks),
            ("gbdt", gbdt_picks),
        ):
            per_selector[name][gpu] = _score_picks(test, gpu, picks)

    out = {"gpus": list(test.gpus), "n_test_stencils": len(test.stencils),
           "ocs": list(_bench_ocs()), "regret_threshold": REGRET, "selectors": {}}
    for name, per_gpu in per_selector.items():
        out["selectors"][name] = {
            "per_gpu": per_gpu,
            "top1": float(np.mean([m["top1"] for m in per_gpu.values()])),
            "near_optimal": float(
                np.mean([m["near_optimal"] for m in per_gpu.values()])
            ),
            "geomean_slowdown": float(
                np.mean([m["geomean_slowdown"] for m in per_gpu.values()])
            ),
            "wall_s": wall[name],
        }
    return out


# ----------------------------------------------------------------------
# regression: hybrid vs plain GBDT vs raw analytical estimate
# ----------------------------------------------------------------------
def _predict_rows(art, test, ds) -> np.ndarray:
    from ..profiling.dataset import analytical_feature_matrix

    X = ds.features
    if art.method == "hybrid":
        X = augment_features(X, analytical_feature_matrix(test, ds))
    return LogTimeTransform.inverse(art.model.predict(X))


def _analytical_rows(test, ds) -> np.ndarray:
    """Raw static estimates per dataset row (NaN where inestimable)."""
    from ..optimizations.combos import OC_BY_NAME
    from .ir import ParseError
    from .perfmodel import EstimateError, estimate_kernel

    out = np.full(ds.n_samples, np.nan)
    rows = zip(ds.stencil_ids, ds.ocs, ds.settings, ds.gpus)
    for i, (sid, oc, setting, gpu) in enumerate(rows):
        try:
            est = estimate_kernel(
                test.stencils[sid], OC_BY_NAME[oc], setting, gpu
            )
        except (KernelLaunchError, OptimizationError, EstimateError, ParseError):
            continue
        out[i] = est.time_ms
    return out


def run_regression_bench(train, test, seed: int = 29) -> dict:
    """Held-out runtime fidelity of gbr / hybrid / raw-analytical."""
    from ..profiling.dataset import build_regression_dataset
    from ..profiling.train import train_predictor_artifact

    arts = {
        method: train_predictor_artifact(train, method=method, seed=seed)
        for method in ("gbr", "hybrid")
    }
    out: dict = {"predictors": {}}
    per: dict[str, dict] = {m: {} for m in ("gbr", "hybrid", "analytical")}
    for gpu in test.gpus:
        ds = build_regression_dataset(test, (gpu,))
        y = ds.times_ms
        for method, art in arts.items():
            pred = _predict_rows(art, test, ds)
            per[method][gpu] = {
                "pcc": pcc(y, pred),
                "log_pcc": pcc(np.log(y), np.log(np.maximum(pred, 1e-9))),
                "mape": mape(y, pred),
                "rows": int(ds.n_samples),
            }
        est = _analytical_rows(test, ds)
        ok = np.isfinite(est)
        per["analytical"][gpu] = {
            "pcc": pcc(y[ok], est[ok]),
            "log_pcc": pcc(np.log(y[ok]), np.log(est[ok])),
            "kendall_tau": kendall_tau(y[ok], est[ok]),
            "coverage": float(ok.mean()),
            "rows": int(ds.n_samples),
        }
    for method, per_gpu in per.items():
        out["predictors"][method] = {
            "per_gpu": per_gpu,
            "pcc": float(np.mean([m["pcc"] for m in per_gpu.values()])),
            "log_pcc": float(
                np.mean([m["log_pcc"] for m in per_gpu.values()])
            ),
        }
    return out


def run_analytical_bench(quick: bool = False, seed: int = 29) -> dict:
    """Full document: shared campaigns, selection + regression sections."""
    train, test = make_campaigns(quick=quick, seed=seed)
    return {
        "quick": quick,
        "seed": seed,
        "shape": _bench_shape(quick),
        "selection": run_selection_bench(train, test, seed=seed, quick=quick),
        "regression": run_regression_bench(train, test, seed=seed),
    }
