"""Findings, suppressions and baselines for the kernel analyzer.

Every rule violation is a :class:`Finding`: rule id, severity, source
span, human message and a machine-readable ``data`` payload, serialized
as JSON by ``repro lint --format json``.  Two mechanisms silence known
findings without weakening the rules themselves:

- **inline suppressions** -- a ``// lint: disable=RULE1,RULE2`` comment
  suppresses those rules on its line; ``// lint: disable-file=RULE``
  anywhere suppresses the rule for the whole translation unit;
- **baselines** -- a JSON file of finding fingerprints recorded from a
  known state (``repro lint --write-baseline``); findings matching the
  baseline are reported separately and do not fail the lint, so a new
  rule can land before every historical violation is fixed.

Suppressed and baselined findings are never dropped silently: the
:class:`Report` carries them alongside the active ones.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from enum import Enum


class Severity(str, Enum):
    """Finding severities; only ``ERROR`` fails ``repro lint``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    message: str
    line: int = 0
    end_line: int = 0
    kernel: str = ""
    data: "tuple[tuple[str, object], ...]" = ()

    @classmethod
    def make(
        cls,
        rule: str,
        severity: Severity,
        message: str,
        *,
        line: int = 0,
        end_line: int = 0,
        kernel: str = "",
        **data,
    ) -> "Finding":
        return cls(
            rule=rule,
            severity=severity,
            message=message,
            line=line,
            end_line=end_line or line,
            kernel=kernel,
            data=tuple(sorted(data.items())),
        )

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (line-insensitive)."""
        key = f"{self.rule}|{self.kernel}|{self.message}"
        return hashlib.blake2b(key.encode(), digest_size=8).hexdigest()

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "kernel": self.kernel,
            "span": {"line": self.line, "end_line": self.end_line},
            "fingerprint": self.fingerprint,
            "data": dict(self.data),
        }

    def format(self) -> str:
        loc = f"L{self.line}" if self.line else "-"
        where = f"{self.kernel}:{loc}" if self.kernel else loc
        return f"[{self.severity.value}] {self.rule} {where}: {self.message}"


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"//\s*lint:\s*disable=([\w,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"//\s*lint:\s*disable-file=([\w,\s]+)")


@dataclass(frozen=True)
class Suppressions:
    """Inline suppression directives scanned from one source text."""

    by_line: "tuple[tuple[int, frozenset[str]], ...]" = ()
    whole_file: frozenset = frozenset()

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        per_line: list[tuple[int, frozenset[str]]] = []
        whole: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), 1):
            m = _SUPPRESS_FILE_RE.search(line)
            if m is not None:
                whole.update(r.strip() for r in m.group(1).split(",") if r.strip())
                continue
            m = _SUPPRESS_RE.search(line)
            if m is not None:
                rules = frozenset(r.strip() for r in m.group(1).split(",") if r.strip())
                per_line.append((lineno, rules))
        return cls(by_line=tuple(per_line), whole_file=frozenset(whole))

    def covers(self, finding: Finding) -> bool:
        if finding.rule in self.whole_file:
            return True
        for lineno, rules in self.by_line:
            if finding.rule in rules and finding.line <= lineno <= finding.end_line:
                return True
        return False


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
BASELINE_VERSION = 1


class Baseline:
    """A set of accepted finding fingerprints loaded from JSON."""

    def __init__(self, fingerprints: "set[str] | None" = None):
        self.fingerprints: set[str] = set(fingerprints or ())

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)

    @classmethod
    def from_findings(cls, findings: "list[Finding]") -> "Baseline":
        return cls({f.fingerprint for f in findings})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {version}; "
                f"this analyzer reads version {BASELINE_VERSION}"
            )
        return cls(set(payload.get("fingerprints", ())))

    def save(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "fingerprints": sorted(self.fingerprints),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
@dataclass
class Report:
    """Findings for one analyzed translation unit."""

    findings: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    baselined: list = field(default_factory=list)

    @property
    def errors(self) -> list:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def sorted(self) -> list:
        return sorted(
            self.findings, key=lambda f: (f.severity.rank, f.kernel, f.line, f.rule)
        )

    def extend(self, other: "Report") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.sorted()],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.findings) - len(self.errors) - len(self.warnings),
            },
        }

    @classmethod
    def filtered(
        cls,
        findings: "list[Finding]",
        suppressions: "Suppressions | None" = None,
        baseline: "Baseline | None" = None,
    ) -> "Report":
        report = cls()
        for f in findings:
            if suppressions is not None and suppressions.covers(f):
                report.suppressed.append(f)
            elif baseline is not None and f in baseline:
                report.baselined.append(f)
            else:
                report.findings.append(f)
        return report
