"""Offset arithmetic for stencil access patterns.

A stencil is a set of integer *offsets* relative to the point being updated
(the *central point*).  Throughout this package an offset is a plain tuple of
``ndim`` Python ints, e.g. ``(-1, 0)`` for the west neighbor of a 2-D
stencil.  The *order* of an offset is its Chebyshev (L-infinity) distance
from the center, matching the paper's definition of stencil order as "the
extent of the neighbors along each dimension": an order-``k`` stencil
touches points whose largest per-dimension displacement is ``k``.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

Offset = tuple[int, ...]

#: Dimensionalities supported by the paper's pipeline.
SUPPORTED_NDIMS = (2, 3)


def validate_offset(offset: Sequence[int], ndim: int) -> Offset:
    """Normalise *offset* to a tuple of ints and check its dimensionality."""
    tup = tuple(int(c) for c in offset)
    if len(tup) != ndim:
        raise ValueError(f"offset {tup} has {len(tup)} coords, expected {ndim}")
    return tup


def chebyshev(offset: Offset) -> int:
    """Chebyshev (L-infinity) distance of *offset* from the central point."""
    return max(abs(c) for c in offset)


def manhattan(offset: Offset) -> int:
    """Manhattan (L1) distance of *offset* from the central point."""
    return sum(abs(c) for c in offset)


def euclidean_sq(offset: Offset) -> int:
    """Squared Euclidean distance of *offset* from the central point."""
    return sum(c * c for c in offset)


def order_of(offset: Offset) -> int:
    """The neighbor order of *offset* (alias for :func:`chebyshev`)."""
    return chebyshev(offset)


def moore_neighbors(offset: Offset) -> list[Offset]:
    """All points at Chebyshev distance exactly 1 from *offset*.

    For ``d`` dimensions this is the Moore neighborhood of ``3**d - 1``
    points.  The input point itself is excluded.
    """
    deltas = itertools.product((-1, 0, 1), repeat=len(offset))
    out = []
    for delta in deltas:
        if all(d == 0 for d in delta):
            continue
        out.append(tuple(o + d for o, d in zip(offset, delta)))
    return out


def neighbors_of_set(points: Iterable[Offset]) -> set[Offset]:
    """Union of Moore neighborhoods over *points* (points excluded)."""
    pts = set(points)
    out: set[Offset] = set()
    for p in pts:
        out.update(moore_neighbors(p))
    return out - pts


def shell(ndim: int, order: int) -> list[Offset]:
    """All offsets at Chebyshev distance exactly *order* in *ndim* dims.

    ``shell(2, 0) == [(0, 0)]``; ``shell(2, 1)`` has 8 points, etc.
    Points are returned in lexicographic coordinate order so the result is
    deterministic.
    """
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    if order == 0:
        return [(0,) * ndim]
    rng = range(-order, order + 1)
    return [
        p for p in itertools.product(rng, repeat=ndim) if chebyshev(p) == order
    ]


def shell_size(ndim: int, order: int) -> int:
    """Number of offsets at Chebyshev distance exactly *order*.

    Equals ``(2k+1)^d - (2k-1)^d`` for ``k = order > 0`` and 1 for order 0.
    """
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    if order == 0:
        return 1
    return (2 * order + 1) ** ndim - (2 * order - 1) ** ndim


def ball(ndim: int, order: int) -> list[Offset]:
    """All offsets with Chebyshev distance <= *order* (a full box)."""
    rng = range(-order, order + 1)
    return list(itertools.product(rng, repeat=ndim))


def on_axis(offset: Offset) -> bool:
    """True when *offset* lies on a coordinate axis (<= 1 nonzero coord)."""
    return sum(1 for c in offset if c != 0) <= 1


def on_diagonal(offset: Offset) -> bool:
    """True when all nonzero coordinates of *offset* share one magnitude.

    The central point and axis points are also "on a diagonal" under this
    definition; use together with :func:`on_axis` to isolate true diagonal
    points.
    """
    mags = {abs(c) for c in offset if c != 0}
    return len(mags) <= 1 and all(abs(c) in mags or c == 0 for c in offset)


def is_full_diagonal(offset: Offset) -> bool:
    """True when every coordinate is nonzero with the same magnitude."""
    mags = {abs(c) for c in offset}
    return 0 not in {abs(c) for c in offset} and len(mags) == 1
