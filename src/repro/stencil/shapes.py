"""Constructors and classifiers for the classic stencil shapes.

The paper's motivation study covers *star*, *box* and *cross* stencils of
orders 1-4 in 2-D and 3-D (Section III).  This module builds those shapes
and classifies arbitrary stencils back into a shape family (used for
reporting and for stratified analysis of the random population).
"""

from __future__ import annotations

from enum import Enum

from . import offsets as off
from .stencil import Stencil


class Shape(str, Enum):
    """Shape family of a stencil access pattern."""

    STAR = "star"
    BOX = "box"
    CROSS = "cross"
    IRREGULAR = "irregular"


def star(ndim: int, order: int, name: str = "") -> Stencil:
    """Axis-aligned star: points ``(0,..,±i,..,0)`` for ``i <= order``.

    ``star2d1r`` is the classic 5-point Jacobi stencil; ``star3d1r`` the
    7-point one.
    """
    _check(ndim, order)
    pts: set[tuple[int, ...]] = {(0,) * ndim}
    for d in range(ndim):
        for i in range(1, order + 1):
            for s in (-i, i):
                p = [0] * ndim
                p[d] = s
                pts.add(tuple(p))
    return Stencil(ndim=ndim, offsets=frozenset(pts), name=name or f"star{ndim}d{order}r")


def box(ndim: int, order: int, name: str = "") -> Stencil:
    """Dense box: every point with Chebyshev distance <= *order*.

    ``box2d1r`` is the 9-point Moore stencil; ``box3d1r`` the 27-point one.
    """
    _check(ndim, order)
    return Stencil(
        ndim=ndim,
        offsets=frozenset(off.ball(ndim, order)),
        name=name or f"box{ndim}d{order}r",
    )


def cross(ndim: int, order: int, name: str = "") -> Stencil:
    """Star plus full diagonals: axes and ``(±i, ±i, ...)`` points.

    This is the "X plus +" pattern used for oriented derivative stencils;
    the paper's ``cross2d1r`` is its order-1 2-D instance (9 points, same
    count as ``box2d1r`` but only 8 distinct directions at higher order).
    """
    _check(ndim, order)
    pts = set(star(ndim, order).offsets)
    for i in range(1, order + 1):
        for signs in _sign_combos(ndim):
            pts.add(tuple(s * i for s in signs))
    return Stencil(ndim=ndim, offsets=frozenset(pts), name=name or f"cross{ndim}d{order}r")


def _sign_combos(ndim: int) -> list[tuple[int, ...]]:
    out: list[tuple[int, ...]] = []

    def rec(prefix: tuple[int, ...]) -> None:
        if len(prefix) == ndim:
            out.append(prefix)
            return
        rec(prefix + (-1,))
        rec(prefix + (1,))

    rec(())
    return out


def _check(ndim: int, order: int) -> None:
    if ndim not in off.SUPPORTED_NDIMS:
        raise ValueError(f"ndim must be one of {off.SUPPORTED_NDIMS}, got {ndim}")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")


def classify(stencil: Stencil) -> Shape:
    """Classify *stencil* into a shape family.

    A stencil is a *star* when every point lies on a coordinate axis, a
    *box* when it is the full Chebyshev ball of its order, a *cross* when it
    matches the star-plus-diagonals pattern, and *irregular* otherwise
    (the typical outcome for randomly generated stencils).
    """
    r = stencil.order
    if stencil.offsets == star(stencil.ndim, r).offsets:
        return Shape.STAR
    if stencil.offsets == box(stencil.ndim, r).offsets:
        return Shape.BOX
    if stencil.offsets == cross(stencil.ndim, r).offsets:
        return Shape.CROSS
    if all(off.on_axis(p) for p in stencil.offsets):
        return Shape.STAR
    return Shape.IRREGULAR


BUILDERS = {Shape.STAR: star, Shape.BOX: box, Shape.CROSS: cross}
