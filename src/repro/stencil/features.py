"""Candidate feature extraction (paper Table II).

The feature set focuses on the distance structure of accessed neighbors
relative to the central point -- unlike dense-tensor sparsity features, it
captures *where* the accesses fall shell by shell:

====  ==================  ===================================================
No.   Feature             Meaning
====  ==================  ===================================================
1     ``order``           maximum Chebyshev extent of nonzeros
2     ``nnz``             number of nonzeros in the assignment tensor
3     ``sparsity``        density of nonzeros in the tensor
4     ``nnz_order_n``     number of nonzeros among order-``n`` neighbors
5     ``nnzRatio_order_n``ratio of nonzeros among order-``n`` neighbors
====  ==================  ===================================================

Shell features are emitted for every order ``n`` in ``1..max_order`` so the
vector length is fixed for a given ``max_order``, independent of the
stencil's own order.
"""

from __future__ import annotations

import numpy as np

from ..config import MAX_ORDER
from . import offsets as off
from .stencil import Stencil


def feature_names(max_order: int = MAX_ORDER) -> list[str]:
    """Names of the Table II feature vector entries, in order."""
    names = ["order", "nnz", "sparsity"]
    names += [f"nnz_order_{n}" for n in range(1, max_order + 1)]
    names += [f"nnzRatio_order_{n}" for n in range(1, max_order + 1)]
    return names


def n_features(max_order: int = MAX_ORDER) -> int:
    """Length of the feature vector for a given *max_order*."""
    return 3 + 2 * max_order


def extract_features(stencil: Stencil, max_order: int = MAX_ORDER) -> np.ndarray:
    """Extract the Table II candidate feature vector for *stencil*.

    The ``sparsity`` and shell-ratio features are computed against the
    fixed ``(2*max_order+1)^d`` tensor space so that 2-D and 3-D stencils
    of different orders are comparable within a dimensionality.
    """
    counts = stencil.shell_counts(max_order)
    tensor_cells = (2 * max_order + 1) ** stencil.ndim
    vec = np.empty(n_features(max_order), dtype=np.float64)
    vec[0] = stencil.order
    vec[1] = stencil.nnz
    vec[2] = stencil.nnz / tensor_cells
    for n in range(1, max_order + 1):
        vec[2 + n] = counts[n]
        vec[2 + max_order + n] = counts[n] / off.shell_size(stencil.ndim, n)
    return vec


def batch_features(stencils: "list[Stencil]", max_order: int = MAX_ORDER) -> np.ndarray:
    """Feature matrix of shape ``(n_stencils, n_features)``."""
    return np.stack([extract_features(s, max_order) for s in stencils])


def describe(stencil: Stencil, max_order: int = MAX_ORDER) -> dict[str, float]:
    """Feature vector as a name -> value mapping (reporting convenience)."""
    return dict(zip(feature_names(max_order), extract_features(stencil, max_order)))
