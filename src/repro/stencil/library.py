"""Named benchmark stencils used by the paper's motivation and figures.

The representative set "covers a variety of shapes (star, box and cross),
orders (1-4) and dimensions (2-D and 3-D)" (Section III): 24 stencils,
``{star,box,cross} x {2d,3d} x {1..4}r``.  Figures 1 and 4 plot these by
name (``cross2d1r``, ``box3d4r``, ...).
"""

from __future__ import annotations

from ..config import MAX_ORDER
from . import shapes
from .stencil import Stencil

_SHAPE_BUILDERS = {
    "star": shapes.star,
    "box": shapes.box,
    "cross": shapes.cross,
}


def _build_library() -> dict[str, Stencil]:
    lib: dict[str, Stencil] = {}
    for shape in ("star", "box", "cross"):
        for ndim in (2, 3):
            for order in range(1, MAX_ORDER + 1):
                name = f"{shape}{ndim}d{order}r"
                lib[name] = _SHAPE_BUILDERS[shape](ndim, order, name=name)
    return lib


#: All named benchmark stencils, keyed by name.
LIBRARY: dict[str, Stencil] = _build_library()


def get(name: str) -> Stencil:
    """Look up a named benchmark stencil (e.g. ``"box3d3r"``)."""
    try:
        return LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(LIBRARY))
        raise KeyError(f"unknown stencil {name!r}; known: {known}") from None


def names(ndim: int | None = None) -> list[str]:
    """Benchmark stencil names, optionally filtered by dimensionality.

    Ordered shape-major then order, matching the figure x-axes.
    """
    out = [n for n, s in LIBRARY.items() if ndim is None or s.ndim == ndim]
    return sorted(out, key=lambda n: (LIBRARY[n].ndim, _shape_rank(n), LIBRARY[n].order))


def _shape_rank(name: str) -> int:
    for i, shape in enumerate(("star", "box", "cross")):
        if name.startswith(shape):
            return i
    return 99


def benchmark_stencils(ndim: int | None = None) -> list[Stencil]:
    """The benchmark stencils as a list, in figure order."""
    return [LIBRARY[n] for n in names(ndim)]
