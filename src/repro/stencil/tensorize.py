"""Binary-tensor assignment for stencil access patterns (paper Fig. 6).

A stencil in ``d`` dimensions with maximum order ``R`` is embedded into a
``(2R+1)^d`` tensor: the cell at index ``offset + R`` (per dimension) is 1
when the stencil accesses that neighbor and 0 otherwise.  The central point
is always 1.  These tensors are the input representation for the ConvNet
classifier and the CNN branch of ConvMLP.
"""

from __future__ import annotations

import numpy as np

from ..config import MAX_ORDER
from ..errors import StencilError
from .stencil import Stencil


def tensor_shape(ndim: int, max_order: int = MAX_ORDER) -> tuple[int, ...]:
    """Shape of the assignment tensor: ``(2*max_order + 1)`` per dimension."""
    return (2 * max_order + 1,) * ndim


def assign_tensor(stencil: Stencil, max_order: int = MAX_ORDER) -> np.ndarray:
    """Embed *stencil* into a binary float64 tensor.

    Raises
    ------
    StencilError
        If the stencil's order exceeds *max_order* (it would not fit).
    """
    if stencil.order > max_order:
        raise StencilError(
            f"stencil order {stencil.order} exceeds tensor max order {max_order}"
        )
    t = np.zeros(tensor_shape(stencil.ndim, max_order), dtype=np.float64)
    for p in stencil.offsets:
        idx = tuple(c + max_order for c in p)
        t[idx] = 1.0
    return t


def from_tensor(tensor: np.ndarray, name: str = "") -> Stencil:
    """Inverse of :func:`assign_tensor`: recover the stencil from a tensor.

    Any strictly positive cell is treated as accessed.  The tensor must be
    a hypercube of odd edge length so the central point is well defined.
    """
    shape = tensor.shape
    if len(set(shape)) != 1:
        raise StencilError(f"assignment tensor must be a hypercube, got {shape}")
    edge = shape[0]
    if edge % 2 != 1:
        raise StencilError(f"tensor edge must be odd, got {edge}")
    R = edge // 2
    idx = np.argwhere(tensor > 0)
    if idx.size == 0:
        raise StencilError("tensor has no nonzero cells")
    pts = {tuple(int(c) - R for c in row) for row in idx}
    return Stencil(ndim=len(shape), offsets=frozenset(pts), name=name)


def batch_tensors(stencils: "list[Stencil]", max_order: int = MAX_ORDER) -> np.ndarray:
    """Stack assignment tensors into one array of shape ``(n, *tensor)``.

    All stencils must share a dimensionality; the result feeds directly
    into the ConvNet / ConvMLP training loops.
    """
    if not stencils:
        raise StencilError("empty stencil list")
    ndims = {s.ndim for s in stencils}
    if len(ndims) != 1:
        raise StencilError(f"mixed dimensionalities in batch: {sorted(ndims)}")
    return np.stack([assign_tensor(s, max_order) for s in stencils])
