"""Stencil access-pattern modelling.

Public surface:

- :class:`Stencil` -- the immutable access pattern.
- :func:`star` / :func:`box` / :func:`cross` -- classic shape constructors.
- :func:`assign_tensor` / :func:`from_tensor` -- Fig. 6 binary-tensor
  representation.
- :func:`extract_features` -- Table II candidate feature vector.
- :func:`generate_population` -- Algorithm 1 random stencil generator.
- :data:`LIBRARY` -- the named benchmark stencils of the evaluation.
"""

from .boundary import (
    BOUNDARY_CODES,
    Boundary,
    apply_with_boundary,
    boundary_feature,
    boundary_fraction,
    boundary_overhead_factor,
)
from .features import (
    batch_features,
    describe,
    extract_features,
    feature_names,
    n_features,
)
from .generator import (
    generate_population,
    generate_stencil,
    verify_neighbor_property,
)
from .library import LIBRARY, benchmark_stencils, get, names
from .offsets import Offset, ball, chebyshev, moore_neighbors, shell, shell_size
from .shapes import Shape, box, classify, cross, star
from .stencil import Stencil
from .tensorize import assign_tensor, batch_tensors, from_tensor, tensor_shape

__all__ = [
    "BOUNDARY_CODES",
    "Boundary",
    "LIBRARY",
    "apply_with_boundary",
    "boundary_feature",
    "boundary_fraction",
    "boundary_overhead_factor",
    "Offset",
    "Shape",
    "Stencil",
    "assign_tensor",
    "ball",
    "batch_features",
    "batch_tensors",
    "benchmark_stencils",
    "box",
    "chebyshev",
    "classify",
    "cross",
    "describe",
    "extract_features",
    "feature_names",
    "from_tensor",
    "generate_population",
    "generate_stencil",
    "get",
    "moore_neighbors",
    "n_features",
    "names",
    "shell",
    "shell_size",
    "star",
    "tensor_shape",
    "verify_neighbor_property",
]
