"""Boundary-condition support (the paper's Section VII future work).

The paper's kernels are boundary-free (interior updates only); its stated
future work is "to support stencil kernels with boundary conditions ...
quantify the impact of boundary conditions on performance and further
parameterize them as model input".  This module implements that extension:

- reference semantics for the three standard boundary treatments
  (:func:`apply_with_boundary`), via ghost-cell padding;
- a performance overhead model (:func:`boundary_overhead_factor`)
  capturing the two real costs of boundary handling on GPUs -- divergent
  guard branches in edge blocks and the extra ghost-cell traffic -- as a
  multiplicative factor on interior-kernel time;
- a model-input encoding (:func:`boundary_feature`) so predictors can be
  trained with the boundary treatment as a feature, exactly as the paper
  proposes.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..errors import StencilError
from .stencil import Stencil


class Boundary(str, Enum):
    """Boundary treatments for stencil sweeps."""

    NONE = "none"  # interior-only update (the paper's default)
    DIRICHLET = "dirichlet"  # fixed boundary values (ghost cells constant)
    PERIODIC = "periodic"  # wrap-around
    REFLECT = "reflect"  # mirror across the boundary


_PAD_MODE = {
    Boundary.PERIODIC: "wrap",
    Boundary.REFLECT: "reflect",
}


def apply_with_boundary(
    stencil: Stencil,
    grid: np.ndarray,
    boundary: Boundary,
    coefficient: float | None = None,
    dirichlet_value: float = 0.0,
) -> np.ndarray:
    """One sweep of *stencil* updating *every* grid point.

    Ghost cells are synthesized by padding according to the boundary
    treatment; with :attr:`Boundary.NONE` this defers to
    :meth:`Stencil.apply` (boundary rows copied through).
    """
    if boundary is Boundary.NONE:
        return stencil.apply(grid, coefficient)
    if grid.ndim != stencil.ndim:
        raise StencilError(f"grid has {grid.ndim} dims, stencil expects {stencil.ndim}")
    r = stencil.order
    if any(s < 1 for s in grid.shape):
        raise StencilError("empty grid")
    if boundary is Boundary.DIRICHLET:
        padded = np.pad(grid, r, mode="constant", constant_values=dirichlet_value)
    else:
        if any(s < r + 1 for s in grid.shape) and boundary is Boundary.REFLECT:
            raise StencilError(
                f"grid shape {grid.shape} too small to reflect order {r}"
            )
        padded = np.pad(grid, r, mode=_PAD_MODE[boundary])
    c = 1.0 / stencil.nnz if coefficient is None else float(coefficient)
    acc = np.zeros_like(grid, dtype=np.float64)
    for p in stencil.sorted_offsets:
        src = tuple(slice(r + d, r + d + s) for d, s in zip(p, grid.shape))
        acc += padded[src]
    return c * acc


def boundary_fraction(stencil: Stencil, dims: tuple[int, ...]) -> float:
    """Fraction of grid points within ``order`` of a face."""
    r = stencil.order
    interior = 1.0
    total = 1.0
    for n in dims:
        if n <= 2 * r:
            return 1.0
        interior *= n - 2 * r
        total *= n
    return 1.0 - interior / total


def boundary_overhead_factor(
    stencil: Stencil, dims: tuple[int, ...], boundary: Boundary
) -> float:
    """Multiplicative execution-time overhead of boundary handling.

    - ``NONE`` costs nothing (the paper's setting).
    - ``DIRICHLET`` adds divergent guards in edge blocks: the boundary
      share of points executes with ~half efficiency.
    - ``PERIODIC`` additionally breaks coalescing for wrapped accesses
      (the wrapped neighbor lives at the far end of the row).
    - ``REFLECT`` sits between the two: irregular but local indexing.
    """
    if boundary is Boundary.NONE:
        return 1.0
    share = boundary_fraction(stencil, dims)
    penalty = {
        Boundary.DIRICHLET: 0.5,
        Boundary.REFLECT: 0.8,
        Boundary.PERIODIC: 1.5,
    }[boundary]
    return 1.0 + share * penalty


#: Model-input encoding (enumeration type, numbered from 1 like the
#: paper's other enum parameters; NONE encodes to 0).
BOUNDARY_CODES: dict[Boundary, int] = {
    Boundary.NONE: 0,
    Boundary.DIRICHLET: 1,
    Boundary.PERIODIC: 2,
    Boundary.REFLECT: 3,
}


def boundary_feature(boundary: Boundary) -> float:
    """Feature value for a boundary treatment."""
    return float(BOUNDARY_CODES[boundary])
