"""The :class:`Stencil` access-pattern model.

A :class:`Stencil` is the central object of the reproduction: an immutable
set of neighbor offsets (plus the central point) in 2 or 3 dimensions.  It
knows its order, per-shell population, and can apply itself to a NumPy grid
(the reference semantics used by correctness tests and the quickstart
example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..errors import StencilError
from . import offsets as off
from .offsets import Offset


@dataclass(frozen=True)
class Stencil:
    """An immutable stencil access pattern.

    Parameters
    ----------
    ndim:
        Grid dimensionality (2 or 3).
    offsets:
        Neighbor offsets relative to the updated point.  The central point
        (all zeros) is always part of the access pattern and is added
        automatically if missing.
    name:
        Optional human-readable name (e.g. ``"star2d1r"``).

    Notes
    -----
    Coefficients are uniform: the paper's random stencil programs sum the
    accessed neighbors with constant weights, and its representation (binary
    tensor / Table II features) is coefficient-blind, so the model carries
    the access pattern only.
    """

    ndim: int
    offsets: frozenset[Offset]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.ndim not in off.SUPPORTED_NDIMS:
            raise StencilError(f"ndim must be one of {off.SUPPORTED_NDIMS}, got {self.ndim}")
        pts = frozenset(off.validate_offset(p, self.ndim) for p in self.offsets)
        center = (0,) * self.ndim
        pts = pts | {center}
        if len(pts) < 2:
            raise StencilError("a stencil must access at least one neighbor")
        object.__setattr__(self, "offsets", pts)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls, points: "list[tuple[int, ...]] | set[tuple[int, ...]]", name: str = ""
    ) -> "Stencil":
        """Build a stencil from an iterable of offsets, inferring ``ndim``."""
        pts = list(points)
        if not pts:
            raise StencilError("empty point list")
        ndim = len(pts[0])
        return cls(ndim=ndim, offsets=frozenset(tuple(p) for p in pts), name=name)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @cached_property
    def order(self) -> int:
        """Maximum Chebyshev extent of any accessed neighbor."""
        return max(off.chebyshev(p) for p in self.offsets)

    @cached_property
    def nnz(self) -> int:
        """Number of accessed points, central point included."""
        return len(self.offsets)

    @cached_property
    def sorted_offsets(self) -> tuple[Offset, ...]:
        """Offsets in deterministic lexicographic order."""
        return tuple(sorted(self.offsets))

    def shell_counts(self, max_order: int | None = None) -> list[int]:
        """Number of accessed points at each Chebyshev distance ``0..R``.

        ``R`` defaults to the stencil's own order; pass *max_order* to pad
        with zeros (used when featurising against a fixed tensor size).
        """
        R = self.order if max_order is None else max_order
        counts = [0] * (R + 1)
        for p in self.offsets:
            d = off.chebyshev(p)
            if d <= R:
                counts[d] += 1
        return counts

    @cached_property
    def axis_extents(self) -> tuple[int, ...]:
        """Maximum absolute displacement along each dimension."""
        return tuple(
            max(abs(p[d]) for p in self.offsets) for d in range(self.ndim)
        )

    @cached_property
    def footprint_points(self) -> int:
        """Volume of the bounding box of the access pattern.

        This is the per-point working-set extent used by the shared-memory
        tile model: a tile of ``T`` points along a dimension with extent
        ``e`` needs ``T + 2e`` input points along that dimension.
        """
        v = 1
        for e in self.axis_extents:
            v *= 2 * e + 1
        return v

    @cached_property
    def is_symmetric(self) -> bool:
        """True when the pattern is invariant under point reflection."""
        return all(tuple(-c for c in p) in self.offsets for p in self.offsets)

    def distances(self) -> np.ndarray:
        """Euclidean distances of all accessed points from the center."""
        pts = np.array(self.sorted_offsets, dtype=np.float64)
        return np.sqrt((pts**2).sum(axis=1))

    # ------------------------------------------------------------------
    # reference execution semantics
    # ------------------------------------------------------------------
    def apply(self, grid: np.ndarray, coefficient: float | None = None) -> np.ndarray:
        """Apply one Jacobi-style sweep of the stencil to *grid*.

        Each interior output point becomes the coefficient-weighted sum of
        its accessed neighbors; boundary points (within ``order`` of an
        edge) are copied through unchanged, matching the paper's
        boundary-free kernels.  This NumPy implementation (shifted views,
        no Python loop over grid points -- see the repository's
        hpc-parallel guide notes) is the correctness oracle for the code
        generator and the quickstart example, not a performance vehicle.

        Parameters
        ----------
        grid:
            Input array with ``ndim`` matching the stencil.
        coefficient:
            Weight applied to every accessed point.  Defaults to
            ``1 / nnz`` (an averaging stencil, which is numerically stable
            under repeated sweeps).
        """
        if grid.ndim != self.ndim:
            raise StencilError(
                f"grid has {grid.ndim} dims, stencil expects {self.ndim}"
            )
        r = self.order
        if any(s <= 2 * r for s in grid.shape):
            raise StencilError(
                f"grid shape {grid.shape} too small for order-{r} stencil"
            )
        c = 1.0 / self.nnz if coefficient is None else float(coefficient)
        out = grid.astype(np.float64, copy=True)
        interior = tuple(slice(r, s - r) for s in grid.shape)
        acc = np.zeros_like(out[interior])
        for p in self.sorted_offsets:
            src = tuple(
                slice(r + d, s - r + d) for d, s in zip(p, grid.shape)
            )
            acc += grid[src]
        out[interior] = c * acc
        return out

    def flops_per_point(self) -> int:
        """Floating-point operations per updated point.

        One multiply per accessed point plus ``nnz - 1`` adds, the cost
        model used by the simulator and by roofline accounting.
        """
        return 2 * self.nnz - 1

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "stencil"
        return (
            f"Stencil({label}, ndim={self.ndim}, order={self.order}, "
            f"nnz={self.nnz})"
        )

    def cache_key(self) -> tuple:
        """A hashable identity used to key deterministic noise and caches."""
        return (self.ndim, self.sorted_offsets)
