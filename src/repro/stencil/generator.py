"""Random stencil generation (paper Algorithm 1).

The generator grows a stencil shell by shell: order-1 points are sampled
from the central point's Moore neighborhood; order-``n`` points are sampled
from the Moore neighborhoods of the order-``(n-1)`` points selected in the
previous iteration, after deleting lower-order candidates.  The result
always satisfies the *neighbor access* property -- every accessed point of
order ``n`` is adjacent to an accessed point of order ``n-1`` -- which a
uniform sample over the tensor space would not guarantee.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_SEED, MAX_ORDER
from ..errors import StencilError
from . import offsets as off
from .offsets import Offset
from .stencil import Stencil


def generate_stencil(
    ndim: int,
    order: int,
    rng: np.random.Generator,
    keep_prob: float = 0.5,
) -> Stencil:
    """Generate one random stencil of exactly *order* via Algorithm 1.

    Parameters
    ----------
    ndim:
        Grid dimensionality (2 or 3).
    order:
        Target maximum order ``N``; each shell ``1..N`` receives at least
        one point so the generated stencil's order is exactly ``N``.
    rng:
        NumPy random generator (no global state is touched).
    keep_prob:
        Per-candidate selection probability within a shell.  Lower values
        yield sparser, more star-like stencils; higher values approach
        boxes.

    Notes
    -----
    The candidate pool for shell ``n`` is the union of Moore neighborhoods
    of the shell-``(n-1)`` selections with all points of order ``< n``
    removed (Algorithm 1 lines 8-14); when sampling leaves a shell empty,
    one candidate is drawn uniformly so the stencil reaches its target
    order (the paper's generator implicitly guarantees non-empty shells by
    construction of its training population).
    """
    if order < 1 or order > MAX_ORDER:
        raise StencilError(f"order must be in [1, {MAX_ORDER}], got {order}")
    if not 0.0 < keep_prob <= 1.0:
        raise StencilError(f"keep_prob must be in (0, 1], got {keep_prob}")
    center: Offset = (0,) * ndim
    np_list: set[Offset] = set()
    selected_prev: list[Offset] = [center]
    for n in range(1, order + 1):
        candidates = sorted(
            p
            for p in off.neighbors_of_set(selected_prev if n > 1 else [center])
            if off.chebyshev(p) == n
        )
        if not candidates:  # pragma: no cover - unreachable by construction
            raise StencilError(f"no order-{n} candidates; generator invariant broken")
        mask = rng.random(len(candidates)) < keep_prob
        selected = [p for p, m in zip(candidates, mask) if m]
        if not selected:
            selected = [candidates[rng.integers(len(candidates))]]
        np_list.update(selected)
        selected_prev = selected
    return Stencil(ndim=ndim, offsets=frozenset(np_list | {center}))


def generate_population(
    ndim: int,
    count: int,
    max_order: int = MAX_ORDER,
    seed: int = DEFAULT_SEED,
    keep_prob: float = 0.5,
    unique: bool = True,
) -> list[Stencil]:
    """Generate *count* random stencils with orders drawn from ``1..max_order``.

    Orders are sampled uniformly, matching the paper's population that
    "covers the popular stencil shapes" up to the maximum order.  With
    ``unique=True`` duplicate access patterns are rejected and resampled
    (bounded retries) so the training set has no exact repeats.

    Returns
    -------
    list[Stencil]
        Stencils named ``rand{ndim}d-{i}``, deterministic for a given seed.
    """
    rng = np.random.default_rng(seed)
    out: list[Stencil] = []
    seen: set[tuple] = set()
    attempts = 0
    max_attempts = count * 50
    while len(out) < count:
        attempts += 1
        if attempts > max_attempts:
            if unique:
                # The pattern space is finite at low orders; fall back to
                # allowing duplicates rather than looping forever.
                unique = False
                continue
            raise StencilError("generator failed to produce requested population")
        order = int(rng.integers(1, max_order + 1))
        s = generate_stencil(ndim, order, rng, keep_prob=keep_prob)
        key = s.cache_key()
        if unique and key in seen:
            continue
        seen.add(key)
        out.append(
            Stencil(ndim=s.ndim, offsets=s.offsets, name=f"rand{ndim}d-{len(out)}")
        )
    return out


def verify_neighbor_property(stencil: Stencil) -> bool:
    """Check the Algorithm 1 invariant on an arbitrary stencil.

    Every accessed point of order ``n >= 1`` must be Moore-adjacent to an
    accessed point of order ``n - 1``.  Used by property-based tests.
    """
    by_order: dict[int, set[Offset]] = {}
    for p in stencil.offsets:
        by_order.setdefault(off.chebyshev(p), set()).add(p)
    for n in sorted(by_order):
        if n == 0:
            continue
        below = by_order.get(n - 1, set())
        for p in by_order[n]:
            if not any(q in below for q in off.moore_neighbors(p)):
                return False
    return True
