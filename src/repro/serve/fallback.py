"""Heuristic OC selection for graceful degradation.

When the service has no usable selector artifact (missing, corrupt,
wrong dimensionality) it must still answer -- with a defensible default
rather than an error.  The heuristic mirrors the AN5D baseline's fixed
strategy ladder (:mod:`repro.baselines.an5d`): prefer streaming with
retiming and temporal blocking, back off to weaker combinations, and
finally the naive kernel, picking the first rung that is *statically*
feasible for the stencil on the target GPU.

Feasibility comes from the analytical kernel model
(:func:`repro.analysis.lint.feasible_settings`) -- a pure resource
check, no simulation, no oracle, no measurement noise -- so the
fallback path stays cheap and deterministic.  Results are memoized by
(stencil content, GPU).
"""

from __future__ import annotations

import threading

from ..optimizations.combos import OC
from ..stencil.stencil import Stencil

#: Strategy ladder, strongest first (AN5D's ladder plus the naive rung
#: so the fallback is total: the naive kernel always launches).
LADDER = ("ST_RT_TB", "ST_RT", "ST", "naive")


class HeuristicSelector:
    """Oracle-free baseline selector: first feasible rung of the ladder."""

    name = "heuristic-ladder"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._memo: dict[tuple, str] = {}
        self._lock = threading.Lock()

    def select(self, stencil: Stencil, gpu: str) -> str:
        """Name of the chosen OC for *stencil* on *gpu*."""
        key = (stencil.cache_key(), gpu)
        with self._lock:
            cached = self._memo.get(key)
        if cached is not None:
            return cached
        from ..analysis.lint import feasible_settings

        choice = LADDER[-1]
        for name in LADDER[:-1]:
            oc = OC.parse(name)
            if feasible_settings(stencil, oc, 1, self.seed):
                choice = name
                break
        with self._lock:
            self._memo[key] = choice
        return choice

    def select_many(self, stencils: "list[Stencil]", gpu: str) -> "list[str]":
        return [self.select(s, gpu) for s in stencils]
