"""Micro-batching of concurrent requests onto vectorized predict paths.

The models' predict methods are NumPy-vectorized: scoring 64 stencils
in one call costs little more than scoring one (the engine benchmarks
quantified the same effect for measurements).  The HTTP front end gets
one request per connection, though -- so handler threads hand their
items to a :class:`MicroBatcher`, which drains everything queued (up to
``max_batch``) into a single call of the underlying batch function.

The first thread to arrive becomes the *leader*: it waits
``max_wait_s`` for followers to pile on, then processes one combined
batch while later arrivals queue for the next round.  Under no
concurrency the wait short-circuits (a lone item proceeds immediately
once no leader is active), so single-client latency stays at the
per-request cost plus at most one scheduler wakeup.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence


class _Item:
    __slots__ = ("value", "event", "result", "error", "deadline")

    def __init__(self, value, deadline: "float | None" = None):
        self.value = value
        self.deadline = deadline
        self.event = threading.Event()
        self.result = None
        self.error: "BaseException | None" = None


class MicroBatcher:
    """Funnel concurrent ``submit`` calls into batched function calls.

    Parameters
    ----------
    batch_fn:
        ``batch_fn(values) -> results`` (same length/order).  Called on
        exactly one thread at a time.
    max_batch:
        Largest batch handed to *batch_fn*.
    max_wait_s:
        How long the batch leader lingers for followers.  ``0`` batches
        only what is already queued (pure opportunistic batching).
    on_batch:
        Optional observer called with each batch size (telemetry).
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`.
        When given, ``submit`` reserves a queue slot first (which may
        shed with :class:`~repro.errors.OverloadError`), slots are
        released as items complete, and items whose deadline expired
        while queued are shed before compute.  One controller may guard
        several batchers: the bound then spans all of them.
    """

    def __init__(
        self,
        batch_fn: "Callable[[Sequence], list]",
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        on_batch: "Callable[[int], None] | None" = None,
        admission=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.batch_fn = batch_fn
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.on_batch = on_batch
        self.admission = admission
        self._queue: list[_Item] = []
        self._lock = threading.Lock()
        self._leader_active = False

    # ------------------------------------------------------------------
    def submit(self, value, deadline: "float | None" = None):
        """Block until *value* has been processed in some batch.

        Raises :class:`~repro.errors.OverloadError` without queueing
        when the admission controller's bound is hit, or after dequeue
        when *deadline* (absolute, on the controller's clock) expired
        before the item reached compute.
        """
        if self.admission is not None:
            self.admission.admit()
        item = _Item(value, deadline)
        with self._lock:
            self._queue.append(item)
            lead = not self._leader_active
            if lead:
                self._leader_active = True
        if lead:
            self._lead()
        item.event.wait()
        if item.error is not None:
            raise item.error
        return item.result

    def _lead(self) -> None:
        """Run batches until the queue drains, then resign leadership."""
        if self.max_wait_s > 0:
            # Give followers a beat to enqueue; lone requests pay at
            # most this once (and nothing when the queue already holds
            # a full batch).
            with self._lock:
                full = len(self._queue) >= self.max_batch
            if not full:
                threading.Event().wait(self.max_wait_s)
        while True:
            with self._lock:
                batch = self._queue[: self.max_batch]
                del self._queue[: len(batch)]
                if not batch:
                    self._leader_active = False
                    return
            batch = self._shed_expired(batch)
            if batch:
                self._run_batch(batch)

    def _shed_expired(self, batch: "list[_Item]") -> "list[_Item]":
        """Drop items whose deadline passed while they queued.

        Expired work is answered with the controller's deadline error
        (503-class) *before* the batch function runs: compute is spent
        only on answers somebody is still waiting for.
        """
        adm = self.admission
        if adm is None:
            return batch
        live: list[_Item] = []
        for item in batch:
            if adm.expired(item.deadline):
                adm.shed_expired()
                adm.release(1)
                item.error = adm.deadline_error()
                item.event.set()
            else:
                live.append(item)
        return live

    def _run_batch(self, batch: "list[_Item]") -> None:
        if self.on_batch is not None:
            self.on_batch(len(batch))
        try:
            results = self.batch_fn([item.value for item in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(batch)} items"
                )
            for item, result in zip(batch, results):
                item.result = result
        except BaseException as e:  # noqa: BLE001 - forwarded to callers
            for item in batch:
                item.error = e
        finally:
            if self.admission is not None:
                self.admission.release(len(batch))
            for item in batch:
                item.event.set()
