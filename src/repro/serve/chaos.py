"""Chaos harness: synthetic traffic plus fault injection for the serve
stack.

The robustness claims of the serving tier -- load shedding instead of
collapse, a circuit breaker pinning the last good model through bad
publishes, hot swaps with zero failed requests, automatic rollback of
models that go bad at runtime -- are exactly the kind of claims that
rot silently.  This module turns each one into a scripted scenario that
runs in seconds on real (small) artifacts and returns a single JSON
report the benchmarks and CI can assert on.

Scenario (one :func:`run_chaos` call, seven phases):

1. **light**: baseline traffic; everything answers from the model.
2. **overload**: an injected worker stall plus a bursty open-loop
   arrival pattern overruns the admission bound -- requests are shed
   with 503-class errors and stale queued work misses its deadline,
   but nothing *fails*.  p99 of the surviving answers is the
   ``p99_under_overload_ms`` headline.
3. **corrupt_publish**: two corrupt artifacts land in the registry;
   both fail checksum validation off the hot path, the breaker opens,
   and traffic keeps answering from the pinned last-good model.
4. **torn_latest**: the ``LATEST`` tag is torn (emptied); polls fail
   closed, the pin holds.
5. **swap**: a good artifact is published and loaded *slowly* (injected
   delay) while live traffic runs; the half-open breaker probes,
   validates, swaps atomically -- zero failed requests.
6. **poison**: the swapped-in model is poisoned to throw at answer
   time; answers degrade down the fallback ladder (never 500) -- the
   analytical rung must serve them, attributed per rung in ``/stats``
   -- the post-swap health window trips, and the reloader rolls back
   to the previous version.
7. **recovery**: one more good publish swaps in and survives its health
   window; the breaker ends closed.

Traffic uses many distinct generated stencils, so the feature cache is
exercised under growth, not just hits.  All faults are injected through
public seams (:class:`ChaosRegistry`, a wrapped batch function, a
poisoned model object); the service code under test is unmodified.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

from ..config import DEFAULT_SEED, MAX_ORDER
from ..errors import OverloadError, ReproError
from ..optimizations.params import ParamSetting
from ..profiling.storage import atomic_write_text
from ..stencil.generator import generate_population
from .admission import AdmissionPolicy
from .features import FeatureCache
from .registry import ModelRegistry
from .reload import ModelReloader, ReloadPolicy
from .service import PredictionService

SELECTOR_NAME = "select-chaos"
PREDICTOR_NAME = "predict-chaos"


@dataclass(frozen=True)
class ChaosConfig:
    """Scenario knobs; the defaults run the full script in seconds."""

    seed: int = DEFAULT_SEED
    gpu: str = "V100"
    ndim: int = 2
    quick: bool = False
    n_stencils: int = 48          # distinct stencils in the traffic mix
    light_requests: int = 12
    burst_threads: int = 10       # open-loop arrivals in the overload burst
    burst_requests: int = 8       # per thread
    max_queue: int = 4            # admission bound (small: sheds happen)
    budget_ms: float = 30.0       # per-request budget during the burst
    stall_s: float = 0.05         # injected worker stall per batch
    slow_load_s: float = 0.15     # injected artifact-load delay
    swap_threads: int = 3         # live traffic during the hot swap
    cooldown_s: float = 0.05      # breaker cooldown
    min_window: int = 8           # post-swap health window (requests)

    @classmethod
    def make(cls, quick: bool = False, seed: int = DEFAULT_SEED, **kw):
        if quick:
            kw.setdefault("n_stencils", 24)
            kw.setdefault("light_requests", 8)
            kw.setdefault("burst_threads", 6)
            kw.setdefault("burst_requests", 6)
        return cls(seed=seed, quick=quick, **kw)


class ChaosRegistry(ModelRegistry):
    """A registry with fault-injection seams.

    ``load_delay_s`` simulates slow artifact materialization (large
    models, cold storage); :meth:`publish_corrupt` lands a version file
    that fails checksum validation; :meth:`tear_latest` forges the torn
    ``LATEST`` states :meth:`~ModelRegistry.latest` must fail closed
    on.  Only the injection is new -- readers exercise the production
    code paths.
    """

    def __init__(self, root):
        super().__init__(root)
        self.load_delay_s = 0.0

    def load(self, name, version=None):
        if self.load_delay_s > 0:
            time.sleep(self.load_delay_s)
        return super().load(name, version)

    def publish_corrupt(self, name: str) -> str:
        """Publish a next version whose document fails validation."""
        d = self.root / name
        d.mkdir(parents=True, exist_ok=True)
        with self._publish_lock:
            existing = self._versions_in(d)
            next_num = 1 + (int(existing[-1][1:]) if existing else 0)
            version = f"v{next_num:06d}"
            atomic_write_text(
                d / f"{version}.json",
                '{"format": 1, "kind": "selector", "note": "bit rot"}',
            )
            atomic_write_text(d / "LATEST", version + "\n")
        return version

    def tear_latest(self, name: str, text: str = "") -> None:
        """Overwrite the ``LATEST`` tag with a torn/garbage value."""
        atomic_write_text(self.root / name / "LATEST", text)


class _Staller:
    """Wrap a batch function with a settable pre-compute stall."""

    def __init__(self, fn):
        self.fn = fn
        self.stall_s = 0.0

    def __call__(self, values):
        if self.stall_s > 0:
            time.sleep(self.stall_s)
        return self.fn(values)


class _PoisonedModel:
    """A model that throws at answer time (post-deserialization rot)."""

    def predict(self, *a, **kw):
        raise RuntimeError("chaos: poisoned model")


class _Outcomes:
    """Thread-safe per-phase outcome and latency accounting."""

    CLASSES = ("ok", "shed", "deadline", "client_error", "error")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts = dict.fromkeys(self.CLASSES, 0)
        self.ok_latencies_s: "list[float]" = []
        self.sources: dict[str, int] = {}

    def record(self, outcome: str, latency_s: float = 0.0,
               source: "str | None" = None) -> None:
        with self._lock:
            self.counts[outcome] += 1
            if outcome == "ok":
                self.ok_latencies_s.append(latency_s)
            if source is not None:
                self.sources[source] = self.sources.get(source, 0) + 1

    def p99_ms(self) -> float:
        with self._lock:
            lat = sorted(self.ok_latencies_s)
        if not lat:
            return 0.0
        return lat[min(len(lat) - 1, int(0.99 * len(lat)))] * 1e3

    def summary(self) -> dict:
        with self._lock:
            doc = dict(self.counts)
            doc["requests"] = sum(self.counts.values())
            doc["sources"] = dict(self.sources)
        doc["p99_ok_ms"] = self.p99_ms()
        return doc


def _one_request(service: PredictionService, stencil, i: int, cfg: ChaosConfig,
                 out: _Outcomes, budget_s=None, select_only: bool = False):
    """Fire one request through the batched front door and classify it."""
    t0 = time.perf_counter()
    try:
        if select_only or i % 2 == 0:
            r = service.select(stencil, cfg.gpu, budget_s=budget_s)
            src = f"{r.source}:{r.rung}" if r.rung else r.source
            out.record("ok", time.perf_counter() - t0, source=src)
        else:
            service.predict(stencil, "naive", ParamSetting(), cfg.gpu,
                            budget_s=budget_s)
            out.record("ok", time.perf_counter() - t0, source="model")
    except OverloadError as e:
        out.record("deadline" if e.kind == "deadline" else "shed")
    except ReproError:
        out.record("client_error")
    except Exception:  # noqa: BLE001 - chaos must count, not crash
        out.record("error")


def _drive(service, stencils, n, cfg, out, budget_s=None,
           select_only=False) -> None:
    for i in range(n):
        _one_request(service, stencils[i % len(stencils)], i, cfg, out,
                     budget_s=budget_s, select_only=select_only)


def _burst(service, stencils, cfg, out) -> None:
    """Open-loop burst: every thread fires its requests immediately."""
    barrier = threading.Barrier(cfg.burst_threads)

    def worker(k: int) -> None:
        barrier.wait()
        for i in range(cfg.burst_requests):
            _one_request(
                service, stencils[(k * 31 + i) % len(stencils)], i, cfg,
                out, budget_s=cfg.budget_ms / 1e3, select_only=True,
            )

    pool = [
        threading.Thread(target=worker, args=(k,), daemon=True)
        for k in range(cfg.burst_threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()


def _traffic_until(service, stencils, cfg, out, stop: threading.Event):
    """Background traffic threads that run until *stop* is set."""

    def worker(k: int) -> None:
        i = 0
        while not stop.is_set():
            _one_request(
                service, stencils[(k * 17 + i) % len(stencils)], i, cfg, out
            )
            i += 1

    pool = [
        threading.Thread(target=worker, args=(k,), daemon=True)
        for k in range(cfg.swap_threads)
    ]
    for t in pool:
        t.start()
    return pool


def run_chaos(selector, predictor, cfg: ChaosConfig, workdir) -> dict:
    """Run the scripted chaos scenario; returns the report document.

    *selector* and *predictor* are trained :class:`ModelArtifact`
    objects (see :func:`repro.serve.bench._train_artifacts` for the
    conventional small ones); *workdir* hosts the scratch registry.
    """
    registry = ChaosRegistry(workdir)
    v1 = registry.publish(selector, SELECTOR_NAME)
    registry.publish(predictor, PREDICTOR_NAME)

    service = PredictionService(
        feature_cache=FeatureCache(MAX_ORDER),
        max_batch=8,
        max_wait_s=0.001,
        admission=AdmissionPolicy(max_queue=cfg.max_queue, retry_after_s=0.01),
    )
    staller = _Staller(service.select_many)
    service._select_batcher.batch_fn = staller
    reloader = ModelReloader(
        service,
        registry,
        policy=ReloadPolicy(
            failure_threshold=2,
            cooldown_s=cfg.cooldown_s,
            min_window=cfg.min_window,
            max_degraded_rate=0.5,
        ),
    )
    events = [{"phase": "prime", **e} for e in reloader.prime()]
    stencils = generate_population(
        cfg.ndim, cfg.n_stencils, max_order=MAX_ORDER, seed=cfg.seed + 7
    )
    phases: dict[str, _Outcomes] = {}

    def out(phase: str) -> _Outcomes:
        return phases.setdefault(phase, _Outcomes())

    # Phase 1: light baseline traffic.
    _drive(service, stencils, cfg.light_requests, cfg, out("light"))

    # Phase 2: overload burst against a stalled worker.
    staller.stall_s = cfg.stall_s
    _burst(service, stencils, cfg, out("overload"))
    staller.stall_s = 0.0

    # Phase 3: two corrupt publishes; the second opens the breaker.
    for _ in range(2):
        registry.publish_corrupt(SELECTOR_NAME)
        events += [{"phase": "corrupt_publish", **e}
                   for e in reloader.check_once()]
    _drive(service, stencils, cfg.light_requests, cfg,
           out("corrupt_publish"), select_only=True)

    # Phase 4: torn LATEST tag; polls fail closed, the pin holds.
    registry.tear_latest(SELECTOR_NAME)
    events += [{"phase": "torn_latest", **e} for e in reloader.check_once()]
    _drive(service, stencils, cfg.light_requests, cfg,
           out("torn_latest"), select_only=True)
    pinned_label = f"{SELECTOR_NAME}@{v1}"
    pinned_last_good = (
        service._selectors[(cfg.ndim, cfg.gpu)].label == pinned_label
        and out("torn_latest").counts["ok"] == cfg.light_requests
    )

    # Phase 5: good publish, slow load, hot swap under live traffic.
    registry.load_delay_s = cfg.slow_load_s
    v_good = registry.publish(selector, SELECTOR_NAME)
    time.sleep(cfg.cooldown_s * 1.5)  # let the breaker reach half-open
    stop = threading.Event()
    pool = _traffic_until(service, stencils, cfg, out("swap"), stop)
    swap_events = reloader.check_once()
    stop.set()
    for t in pool:
        t.join()
    registry.load_delay_s = 0.0
    events += [{"phase": "swap", **e} for e in swap_events]
    swapped = any(
        e["action"] == "swapped" and e["version"] == v_good
        for e in swap_events
    )
    zero_failed_during_swap = (
        swapped and out("swap").counts["error"] == 0
        and out("swap").counts["client_error"] == 0
    )

    # Phase 6: poison the live model; health window trips -> rollback.
    service._selectors[(cfg.ndim, cfg.gpu)].artifact.model = _PoisonedModel()
    n_poison = cfg.min_window + 2 * out("swap").summary()["requests"]
    _drive(service, stencils, n_poison, cfg, out("poison"), select_only=True)
    events += [{"phase": "poison", **e} for e in reloader.check_once()]
    rolled_back = any(
        e["phase"] == "poison" and e["action"] == "rollback" for e in events
    )
    # While the model was poisoned, degraded answers must have come from
    # the analytical rung (the heuristic ladder is only the last resort).
    poison_sources = out("poison").summary()["sources"]
    analytical_engaged = poison_sources.get("fallback:analytical", 0) > 0

    # Phase 7: one more good publish; swap in and survive the window.
    v_final = registry.publish(selector, SELECTOR_NAME)
    time.sleep(cfg.cooldown_s * 1.5)
    events += [{"phase": "recovery", **e} for e in reloader.check_once()]
    _drive(service, stencils, max(cfg.light_requests, cfg.min_window + 1),
           cfg, out("recovery"), select_only=True)
    events += [{"phase": "recovery", **e} for e in reloader.check_once()]
    reload_snap = reloader.snapshot()[SELECTOR_NAME]
    recovered = (
        reload_snap["installed"] == v_final
        and reload_snap["breaker"]["state"] == "closed"
        and out("recovery").sources.get("model", 0) > 0
    )

    # ------------------------------------------------------------------
    phase_docs = {name: o.summary() for name, o in phases.items()}
    totals = dict.fromkeys(_Outcomes.CLASSES, 0)
    for doc in phase_docs.values():
        for k in totals:
            totals[k] += doc[k]
    n_total = sum(totals.values())
    n_shed = totals["shed"] + totals["deadline"]
    answered = n_total - n_shed
    return {
        "config": asdict(cfg),
        "phases": phase_docs,
        "totals": {**totals, "requests": n_total},
        "availability": totals["ok"] / n_total if n_total else 0.0,
        "availability_excluding_shed": (
            totals["ok"] / answered if answered else 0.0
        ),
        "non_503_errors": totals["client_error"] + totals["error"],
        "p99_under_overload_ms": out("overload").p99_ms(),
        "breaker": {
            "opened": reload_snap["breaker"]["opens"] >= 1,
            "pinned_last_good": pinned_last_good,
            "recovered": recovered,
            "final_state": reload_snap["breaker"]["state"],
        },
        "reload": {
            "swaps": reload_snap["swaps"],
            "rollbacks": reload_snap["rollbacks"],
            "rejected": reload_snap["rejected"],
            "load_failures": reload_snap["load_failures"],
        },
        "zero_failed_during_swap": zero_failed_during_swap,
        "analytical_rung_engaged": analytical_engaged,
        "fallback_rungs": service.stats_snapshot()["fallback_rungs"],
        "events": events,
        "stats": service.stats_snapshot(),
    }


def chaos_passed(report: dict) -> "list[str]":
    """The CI gate: the list of violated invariants (empty = pass)."""
    problems = []
    if report["non_503_errors"] != 0:
        problems.append(
            f"non-503 errors: {report['non_503_errors']} (want 0)"
        )
    b = report["breaker"]
    if not b["opened"]:
        problems.append("breaker never opened on corrupt publishes")
    if not b["pinned_last_good"]:
        problems.append("last-good model was not pinned through faults")
    if not b["recovered"]:
        problems.append("service did not recover after the good publish")
    if not report["zero_failed_during_swap"]:
        problems.append("requests failed during the hot swap")
    if report["reload"]["rollbacks"] < 1:
        problems.append("poisoned model was not rolled back")
    if not report.get("analytical_rung_engaged", False):
        problems.append(
            "analytical fallback rung never served degraded requests "
            "while the model was poisoned"
        )
    return problems
