"""Hot model reload with a circuit breaker and automatic rollback.

The train -> publish -> serve loop only works unattended if the serving
tier picks up new artifacts on its own *and* survives bad ones.  The
:class:`ModelReloader` closes that loop:

- **Watch**: each poll (:meth:`check_once`, or the background thread
  started by :meth:`start`) reads every watched name's ``LATEST`` tag.
- **Load off the hot path**: a changed tag is loaded and validated in
  the watcher, never in a request thread -- checksum verification via
  :func:`~repro.serve.artifacts.load_artifact`, then a smoke
  ``select_many``/``predict_many`` against a pinned probe set on a
  scratch service sharing the feature cache.
- **Atomic swap**: a validated artifact replaces the served one with a
  single slot assignment; in-flight batches keep the artifact object
  they already resolved, so no request ever observes a half-swap.
- **Circuit breaker**: repeated bad loads (corrupt publish, torn tag,
  failed smoke test) trip the per-name breaker ``closed -> open``; the
  last-good model stays pinned, load attempts stop for ``cooldown_s``,
  then one ``half-open`` probe decides between ``closed`` (good
  publish landed) and ``open`` again.  Breaker state is surfaced in
  ``/stats`` under ``reload``.
- **Rollback**: after a swap the reloader watches the service's
  degradation counters (fallbacks + model failures + errors); if the
  rate over the post-swap window jumps past the policy bar, the
  previous artifact is reinstalled, the new version is marked rejected
  (never auto-retried), and the breaker records the failure.

Every decision is driven by an injectable clock, so breaker timing and
rollback windows are deterministic under test.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import ArtifactError, ReproError
from ..gpu.specs import GPU_ORDER
from ..optimizations.params import ParamSetting
from ..stencil import library
from .artifacts import ModelArtifact
from .registry import ModelRegistry

#: Default pinned probe stencils per dimensionality: small, always in
#: the library, and cheap to featurize.  A candidate artifact must
#: answer all of them through the real service path before it swaps in.
DEFAULT_PROBES = {
    2: ("star2d1r", "star2d2r", "box2d1r"),
    3: ("star3d1r", "box3d1r"),
}


@dataclass(frozen=True)
class ReloadPolicy:
    """Breaker and rollback parameters.

    ``failure_threshold`` consecutive bad loads open the breaker;
    ``cooldown_s`` later one half-open probe is allowed.  After a
    successful swap the reloader waits for ``min_window`` requests and
    rolls back if the degraded-answer rate (fallbacks + model failures
    + errors, as a fraction of requests) exceeds
    ``max_degraded_rate``.
    """

    failure_threshold: int = 3
    cooldown_s: float = 30.0
    min_window: int = 20
    max_degraded_rate: float = 0.5


class CircuitBreaker:
    """Classic closed / open / half-open breaker on an injected clock."""

    def __init__(self, policy: ReloadPolicy, clock=time.monotonic):
        self.policy = policy
        self.clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: "float | None" = None
        self.opens = 0

    def allow(self) -> bool:
        """May a load be attempted now?  (open -> half-open on cooldown)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self.opened_at >= self.policy.cooldown_s:
                self.state = "half_open"
                return True
            return False
        # half_open: a probe is already in flight this poll cycle.
        return True

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == "half_open"
            or self.consecutive_failures >= self.policy.failure_threshold
        ):
            if self.state != "open":
                self.opens += 1
            self.state = "open"
            self.opened_at = self.clock()

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = None

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
        }


@dataclass
class _NameState:
    """Per-artifact-name reloader bookkeeping."""

    breaker: CircuitBreaker
    version: "str | None" = None
    artifact: "ModelArtifact | None" = None
    label: str = ""
    last_good_version: "str | None" = None
    last_good_artifact: "ModelArtifact | None" = None
    rejected: set = field(default_factory=set)
    swaps: int = 0
    rollbacks: int = 0
    load_failures: int = 0
    last_error: "str | None" = None
    swap_mark: "dict | None" = None  # stats totals at swap time


def _degradation_mark(stats) -> dict:
    """Stats totals the rollback monitor diffs against."""
    snap = stats.snapshot()
    return {
        "requests": snap["requests_total"],
        "degraded": (
            snap["fallbacks"] + snap["model_failures"] + snap["errors_total"]
        ),
    }


class ModelReloader:
    """Keep a :class:`PredictionService` on the latest *good* artifacts.

    Parameters
    ----------
    service:
        The live service; swaps go through ``service.install``.
    registry:
        The registry to watch (any :class:`ModelRegistry`).
    names:
        Artifact names to watch; default: every name in the registry at
        each poll (new names are picked up automatically).
    policy:
        :class:`ReloadPolicy` breaker/rollback parameters.
    probes:
        ``{ndim: (stencil_name, ...)}`` smoke-test inputs (default
        :data:`DEFAULT_PROBES`).
    clock:
        Monotonic clock for breaker cooldowns (injectable for tests).
    """

    def __init__(
        self,
        service,
        registry: ModelRegistry,
        names: "list[str] | None" = None,
        policy: "ReloadPolicy | None" = None,
        probes: "dict | None" = None,
        clock=time.monotonic,
    ):
        self.service = service
        self.registry = registry
        self.names = list(names) if names is not None else None
        self.policy = policy or ReloadPolicy()
        self.probes = dict(DEFAULT_PROBES if probes is None else probes)
        self.clock = clock
        self._states: dict[str, _NameState] = {}
        self._lock = threading.Lock()
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        service.reloader = self

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    def _watched_names(self) -> "list[str]":
        if self.names is not None:
            return self.names
        try:
            return self.registry.names()
        except OSError:
            return list(self._states)

    def _state(self, name: str) -> _NameState:
        st = self._states.get(name)
        if st is None:
            st = self._states[name] = _NameState(
                breaker=CircuitBreaker(self.policy, self.clock)
            )
        return st

    def prime(self) -> "list[dict]":
        """Initial load of every watched name (same path as a reload)."""
        return self.check_once()

    def check_once(self) -> "list[dict]":
        """One synchronous poll; returns the list of event documents.

        Event ``action`` values: ``swapped``, ``rollback``,
        ``load-failed``, ``poll-failed``, ``breaker-open``.  A poll
        with nothing to do returns no events.
        """
        events: "list[dict]" = []
        with self._lock:
            for name in self._watched_names():
                st = self._state(name)
                events.extend(self._check_health(name, st))
                events.extend(self._check_version(name, st))
        return events

    # ------------------------------------------------------------------
    def _check_health(self, name: str, st: _NameState) -> "list[dict]":
        """Post-swap rollback monitor: degraded-rate over the window."""
        if st.swap_mark is None or st.last_good_artifact is None:
            return []
        now = _degradation_mark(self.service.stats)
        window = now["requests"] - st.swap_mark["requests"]
        if window < self.policy.min_window:
            return []
        rate = (now["degraded"] - st.swap_mark["degraded"]) / window
        if rate <= self.policy.max_degraded_rate:
            # The swapped-in version held up over the window; it becomes
            # the new last-good and monitoring stops.
            st.last_good_version = st.version
            st.last_good_artifact = st.artifact
            st.swap_mark = None
            return []
        bad_version, bad_rate = st.version, rate
        self.service.install(
            st.last_good_artifact, f"{name}@{st.last_good_version}"
        )
        st.rejected.add(bad_version)
        st.version = st.last_good_version
        st.artifact = st.last_good_artifact
        st.label = f"{name}@{st.last_good_version}"
        st.swap_mark = None
        st.rollbacks += 1
        st.last_error = (
            f"rolled back {bad_version}: degraded-answer rate "
            f"{bad_rate:.2f} over {window} requests"
        )
        st.breaker.record_failure()
        return [{
            "name": name,
            "action": "rollback",
            "from": bad_version,
            "to": st.version,
            "degraded_rate": bad_rate,
        }]

    def _check_version(self, name: str, st: _NameState) -> "list[dict]":
        try:
            latest = self.registry.latest(name)
        except (ArtifactError, OSError) as e:
            # A torn/empty tag or unreadable directory: fail closed on
            # the pinned artifact and count it against the breaker.
            st.load_failures += 1
            st.last_error = str(e)
            st.breaker.record_failure()
            return [{"name": name, "action": "poll-failed", "error": str(e)}]
        if latest == st.version or latest in st.rejected:
            return []
        if not st.breaker.allow():
            return [{
                "name": name,
                "action": "breaker-open",
                "skipped": latest,
            }]
        try:
            artifact = self.registry.load(name, latest)
            self._validate(artifact)
        except (ReproError, OSError) as e:
            st.load_failures += 1
            st.last_error = str(e)
            st.breaker.record_failure()
            return [{
                "name": name,
                "action": "load-failed",
                "version": latest,
                "error": str(e),
                "breaker": st.breaker.state,
            }]
        # Swap: a single install is atomic for request threads (they
        # resolve the slot once per batch).
        previous = (st.version, st.artifact)
        self.service.install(artifact, f"{name}@{latest}")
        if st.artifact is not None:
            st.last_good_version, st.last_good_artifact = previous
            st.swap_mark = _degradation_mark(self.service.stats)
        else:
            # First install: nothing to roll back to yet.
            st.last_good_version, st.last_good_artifact = latest, artifact
            st.swap_mark = None
        st.version, st.artifact, st.label = latest, artifact, f"{name}@{latest}"
        st.swaps += 1
        st.breaker.record_success()
        return [{"name": name, "action": "swapped", "version": latest}]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self, artifact: ModelArtifact) -> None:
        """Smoke-test a candidate against the pinned probe set.

        Runs the *real* service paths on a scratch service (sharing the
        feature cache, so probes also pre-warm it for live traffic) and
        fails closed with :class:`ArtifactError` on any answer that is
        not a clean model answer.
        """
        from .service import (
            PredictionService,
            PredictRequest,
            SelectRequest,
        )
        from .admission import AdmissionPolicy

        names = self.probes.get(artifact.ndim, ())
        probes = [library.get(n) for n in names]
        if not probes:
            raise ArtifactError(
                f"no probe stencils configured for {artifact.ndim}d "
                f"artifacts; cannot smoke-test {artifact.describe()}"
            )
        scratch = PredictionService(
            feature_cache=self.service.cache,
            max_order=artifact.max_order,
            admission=AdmissionPolicy(max_queue=0),
        )
        scratch.install(artifact, "candidate")
        if artifact.kind == "selector":
            results = scratch.select_many(
                [SelectRequest(p, artifact.gpu) for p in probes]
            )
            bad = [r for r in results if r.source != "model"]
            if bad:
                raise ArtifactError(
                    f"smoke validation failed: {len(bad)}/{len(results)} "
                    f"probe selections did not come from the model "
                    f"(model error or out-of-range class)"
                )
        else:
            gpu = artifact.gpu or GPU_ORDER[0]
            times = scratch.predict_many(
                [PredictRequest(p, "naive", ParamSetting(), gpu) for p in probes]
            )
            import math

            if not all(math.isfinite(t) for t in times):
                raise ArtifactError(
                    f"smoke validation failed: non-finite probe "
                    f"predictions {times}"
                )

    # ------------------------------------------------------------------
    # background watching
    # ------------------------------------------------------------------
    def start(self, interval_s: float = 2.0) -> None:
        """Poll every ``interval_s`` on a daemon thread until `stop`."""
        if self._thread is not None:
            raise RuntimeError("reloader already started")
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.check_once()
                except Exception:  # noqa: BLE001 - watcher must survive
                    pass

        self._thread = threading.Thread(
            target=_loop, name="model-reloader", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Per-name reload/breaker state (the ``/stats`` ``reload`` key)."""
        with self._lock:
            return {
                name: {
                    "installed": st.version,
                    "last_good": st.last_good_version,
                    "swaps": st.swaps,
                    "rollbacks": st.rollbacks,
                    "load_failures": st.load_failures,
                    "rejected": sorted(st.rejected),
                    "last_error": st.last_error,
                    "breaker": st.breaker.snapshot(),
                }
                for name, st in sorted(self._states.items())
            }
