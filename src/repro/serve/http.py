"""Stdlib-only JSON-over-HTTP front end for the prediction service.

Protocol (all bodies are JSON):

- ``GET /healthz`` -> ``{"ok": true}``
- ``GET /stats`` -> the :meth:`PredictionService.stats_snapshot` body
- ``POST /v1/select`` with ``{"stencil": <stencil>, "gpu": "V100"}``
  -> ``{"oc": ..., "source": "model"|"fallback", ...}``; or
  ``{"requests": [...]}`` -> ``{"results": [...]}``
- ``POST /v1/predict`` with ``{"stencil": <stencil>, "oc": "ST_RT",
  "setting": {...}, "gpu": "V100"}`` -> ``{"time_ms": ...}``; batched
  form as above.

``<stencil>`` is either a library name (``"star2d2r"``) or an inline
``{"ndim": ..., "offsets": [[...], ...]}`` document (the campaign
storage format).  Single-item bodies may carry ``"budget_ms"``, a
per-request deadline budget forwarded to the admission controller.

Status mapping:

- Client errors (bad payloads, unknown GPUs/OCs) -> 400.
- A missing or oversized ``Content-Length`` -> 413; a malformed
  (non-integer) one -> 400.  Bodies are read only after the bound
  check, so an abusive client cannot make a handler thread buffer
  gigabytes.
- A shed request (:class:`~repro.errors.OverloadError`: admission
  queue full, or deadline expired before compute) -> 503 with a
  ``Retry-After`` header -- the client-visible half of load shedding.
- Unexpected failures -> 500.
- ``/healthz`` stays 200 while the process can answer at all, but its
  ``status`` field degrades to ``"overloaded"`` before requests are
  hard-shed (see :meth:`PredictionService.health`).

Requests are served on a thread per connection
(``ThreadingHTTPServer``), which is exactly the concurrency the
service's micro-batcher coalesces.  The server counts in-flight
connections so a draining shutdown can wait for them.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import OverloadError, ReproError, ServiceError
from ..profiling.storage import stencil_from_dict
from ..stencil import library
from ..stencil.stencil import Stencil
from .admission import _UNSET
from .service import PredictionService, setting_from_dict

#: Largest accepted request body; a service endpoint is not a file drop.
MAX_BODY_BYTES = 4 * 1024 * 1024


class _HttpError(Exception):
    """A request rejected before (or instead of) service dispatch."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _budget_s(doc: dict):
    """The request's deadline budget in seconds (unset -> policy default)."""
    raw = doc.get("budget_ms")
    if raw is None:
        return _UNSET
    try:
        return float(raw) / 1e3
    except (TypeError, ValueError):
        raise ServiceError(
            f"budget_ms must be a number, got {raw!r}"
        ) from None


def parse_stencil(doc) -> Stencil:
    """A stencil from its request form: library name or inline offsets."""
    if isinstance(doc, str):
        try:
            return library.get(doc)
        except (KeyError, ReproError):
            raise ServiceError(f"unknown stencil name {doc!r}") from None
    if isinstance(doc, dict):
        try:
            return stencil_from_dict(doc)
        except ReproError as e:
            raise ServiceError(f"bad stencil document: {e}") from None
    raise ServiceError(
        "stencil must be a library name or an {ndim, offsets} object"
    )


def _select_payload(service: PredictionService, doc: dict) -> dict:
    from .service import SelectRequest

    if "requests" in doc:
        reqs = [
            SelectRequest(parse_stencil(r.get("stencil")), str(r.get("gpu")))
            for r in doc["requests"]
        ]
        results = service.select_many(reqs)
        return {"results": [_select_result(r) for r in results]}
    result = service.select(
        parse_stencil(doc.get("stencil")),
        str(doc.get("gpu")),
        budget_s=_budget_s(doc),
    )
    return _select_result(result)


def _select_result(r) -> dict:
    return {
        "oc": r.oc,
        "source": r.source,
        "class": r.cls,
        "artifact": r.artifact,
        "rung": r.rung,
    }


def _predict_payload(service: PredictionService, doc: dict) -> dict:
    from .service import PredictRequest

    if "requests" in doc:
        reqs = [
            PredictRequest(
                parse_stencil(r.get("stencil")),
                str(r.get("oc")),
                setting_from_dict(r.get("setting")),
                str(r.get("gpu")),
            )
            for r in doc["requests"]
        ]
        times = service.predict_many(reqs)
        return {"results": [{"time_ms": t} for t in times]}
    t = service.predict(
        parse_stencil(doc.get("stencil")),
        str(doc.get("oc")),
        setting_from_dict(doc.get("setting")),
        str(doc.get("gpu")),
        budget_s=_budget_s(doc),
    )
    return {"time_ms": t}


class ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to a service via the server object."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> PredictionService:
        return self.server.service  # type: ignore[attr-defined]

    # Quiet by default: the service keeps structured telemetry instead
    # of an access log; opt back in with server.verbose = True.
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _send_json(
        self, status: int, payload: dict,
        headers: "dict[str, str] | None" = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            # Without a declared length the only safe read bound is the
            # connection itself; reject instead of buffering blind.
            raise _HttpError(
                413, "missing Content-Length header (chunked or unbounded "
                     "bodies are not accepted)"
            )
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(
                400, f"malformed Content-Length header {raw_length!r}"
            ) from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body of {length} bytes exceeds the "
                     f"{MAX_BODY_BYTES} byte limit"
            )
        if length <= 0:
            raise ServiceError("missing request body")
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as e:
            raise ServiceError(f"request body is not valid JSON: {e}") from None
        if not isinstance(doc, dict):
            raise ServiceError("request body must be a JSON object")
        return doc

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, self.service.health())
        elif self.path == "/stats":
            self._send_json(200, self.service.stats_snapshot())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        handlers = {"/v1/select": _select_payload, "/v1/predict": _predict_payload}
        handler = handlers.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        endpoint = self.path.rsplit("/", 1)[-1]
        try:
            doc = self._read_body()
            self._send_json(200, handler(self.service, doc))
        except _HttpError as e:
            self.service.stats.count_error(endpoint)
            self._send_json(e.status, {"error": str(e)})
        except OverloadError as e:
            # Shed, not failed: the admission controller already counted
            # it; tell the client when to come back.
            self._send_json(
                503,
                {"error": str(e), "kind": e.kind},
                headers={"Retry-After": f"{e.retry_after_s:.3f}"},
            )
        except ReproError as e:
            self.service.stats.count_error(endpoint)
            self._send_json(400, {"error": str(e)})
        except Exception as e:  # noqa: BLE001 - last-resort 500
            self.service.stats.count_error(endpoint)
            self._send_json(500, {"error": f"internal error: {e}"})


class ServeServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: PredictionService,
                 verbose: bool = False):
        super().__init__(address, ServeHandler)
        self.service = service
        self.verbose = verbose
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()

    # ------------------------------------------------------------------
    def finish_request(self, request, client_address) -> None:
        """Handle one connection, counted for draining shutdowns."""
        with self._in_flight_lock:
            self._in_flight += 1
        try:
            super().finish_request(request, client_address)
        finally:
            with self._in_flight_lock:
                self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        """Connections currently being handled (drain watches this)."""
        with self._in_flight_lock:
            return self._in_flight


def make_server(
    service: PredictionService, host: str = "127.0.0.1", port: int = 0,
    verbose: bool = False,
) -> ServeServer:
    """Bind a server (``port=0`` picks a free ephemeral port)."""
    return ServeServer((host, port), service, verbose=verbose)


def drain(server: ServeServer, timeout_s: float = 5.0) -> bool:
    """Graceful shutdown: stop accepting, wait out in-flight work.

    Returns ``True`` when every in-flight connection finished within
    *timeout_s*; the server socket is closed either way (a drain
    timeout abandons the stragglers rather than hanging shutdown).
    """
    import time

    server.shutdown()  # stops serve_forever: no new connections accepted
    deadline = time.monotonic() + max(0.0, timeout_s)
    while server.in_flight > 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    drained = server.in_flight == 0
    server.server_close()
    return drained
