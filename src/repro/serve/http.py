"""Stdlib-only JSON-over-HTTP front end for the prediction service.

Protocol (all bodies are JSON):

- ``GET /healthz`` -> ``{"ok": true}``
- ``GET /stats`` -> the :meth:`PredictionService.stats_snapshot` body
- ``POST /v1/select`` with ``{"stencil": <stencil>, "gpu": "V100"}``
  -> ``{"oc": ..., "source": "model"|"fallback", ...}``; or
  ``{"requests": [...]}`` -> ``{"results": [...]}``
- ``POST /v1/predict`` with ``{"stencil": <stencil>, "oc": "ST_RT",
  "setting": {...}, "gpu": "V100"}`` -> ``{"time_ms": ...}``; batched
  form as above.

``<stencil>`` is either a library name (``"star2d2r"``) or an inline
``{"ndim": ..., "offsets": [[...], ...]}`` document (the campaign
storage format).  Client errors (bad payloads, unknown GPUs/OCs) map to
HTTP 400 with ``{"error": ...}``; unexpected failures to 500.  Requests
are served on a thread per connection (``ThreadingHTTPServer``), which
is exactly the concurrency the service's micro-batcher coalesces.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError, ServiceError
from ..profiling.storage import stencil_from_dict
from ..stencil import library
from ..stencil.stencil import Stencil
from .service import PredictionService, setting_from_dict

#: Largest accepted request body; a service endpoint is not a file drop.
MAX_BODY_BYTES = 4 * 1024 * 1024


def parse_stencil(doc) -> Stencil:
    """A stencil from its request form: library name or inline offsets."""
    if isinstance(doc, str):
        try:
            return library.get(doc)
        except (KeyError, ReproError):
            raise ServiceError(f"unknown stencil name {doc!r}") from None
    if isinstance(doc, dict):
        try:
            return stencil_from_dict(doc)
        except ReproError as e:
            raise ServiceError(f"bad stencil document: {e}") from None
    raise ServiceError(
        "stencil must be a library name or an {ndim, offsets} object"
    )


def _select_payload(service: PredictionService, doc: dict) -> dict:
    from .service import SelectRequest

    if "requests" in doc:
        reqs = [
            SelectRequest(parse_stencil(r.get("stencil")), str(r.get("gpu")))
            for r in doc["requests"]
        ]
        results = service.select_many(reqs)
        return {"results": [_select_result(r) for r in results]}
    result = service.select(parse_stencil(doc.get("stencil")), str(doc.get("gpu")))
    return _select_result(result)


def _select_result(r) -> dict:
    return {
        "oc": r.oc,
        "source": r.source,
        "class": r.cls,
        "artifact": r.artifact,
    }


def _predict_payload(service: PredictionService, doc: dict) -> dict:
    from .service import PredictRequest

    if "requests" in doc:
        reqs = [
            PredictRequest(
                parse_stencil(r.get("stencil")),
                str(r.get("oc")),
                setting_from_dict(r.get("setting")),
                str(r.get("gpu")),
            )
            for r in doc["requests"]
        ]
        times = service.predict_many(reqs)
        return {"results": [{"time_ms": t} for t in times]}
    t = service.predict(
        parse_stencil(doc.get("stencil")),
        str(doc.get("oc")),
        setting_from_dict(doc.get("setting")),
        str(doc.get("gpu")),
    )
    return {"time_ms": t}


class ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to a service via the server object."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> PredictionService:
        return self.server.service  # type: ignore[attr-defined]

    # Quiet by default: the service keeps structured telemetry instead
    # of an access log; opt back in with server.verbose = True.
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("missing request body")
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES} byte limit"
            )
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as e:
            raise ServiceError(f"request body is not valid JSON: {e}") from None
        if not isinstance(doc, dict):
            raise ServiceError("request body must be a JSON object")
        return doc

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == "/stats":
            self._send_json(200, self.service.stats_snapshot())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        handlers = {"/v1/select": _select_payload, "/v1/predict": _predict_payload}
        handler = handlers.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        endpoint = self.path.rsplit("/", 1)[-1]
        try:
            doc = self._read_body()
            self._send_json(200, handler(self.service, doc))
        except ReproError as e:
            self.service.stats.count_error(endpoint)
            self._send_json(400, {"error": str(e)})
        except Exception as e:  # noqa: BLE001 - last-resort 500
            self.service.stats.count_error(endpoint)
            self._send_json(500, {"error": f"internal error: {e}"})


class ServeServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: PredictionService,
                 verbose: bool = False):
        super().__init__(address, ServeHandler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: PredictionService, host: str = "127.0.0.1", port: int = 0,
    verbose: bool = False,
) -> ServeServer:
    """Bind a server (``port=0`` picks a free ephemeral port)."""
    return ServeServer((host, port), service, verbose=verbose)
