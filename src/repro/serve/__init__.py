"""Model registry and online prediction service.

Everything upstream of this package *trains* models; everything in it
*serves* them.  The pieces, bottom to top:

- :mod:`~repro.serve.artifacts` -- versioned, checksummed JSON
  serialization for trained selectors/predictors (save -> load round
  trips reproduce predictions bit-identically).
- :mod:`~repro.serve.registry` -- a directory-backed
  :class:`ModelRegistry` with atomic publishes and ``latest`` tagging.
- :mod:`~repro.serve.service` -- the :class:`PredictionService`: raw
  stencils in, OC selections / time predictions out, through a
  content-keyed feature cache and the models' vectorized predict paths,
  degrading to a heuristic selector when artifacts are missing or bad.
- :mod:`~repro.serve.http` / :mod:`~repro.serve.client` -- a
  stdlib-only JSON-over-HTTP front end and its retrying client.
- :mod:`~repro.serve.telemetry` -- request counters, cache hit rates,
  fallback counts and latency histograms exposed on ``/stats``.
- :mod:`~repro.serve.admission` -- bounded-queue admission control:
  load shedding (503 + ``Retry-After``), per-request deadlines, and
  degraded ``/healthz`` before hard failure.
- :mod:`~repro.serve.reload` -- hot model reload: a registry watcher
  that validates and atomically swaps new artifacts, with a circuit
  breaker pinning the last good model through bad publishes and
  automatic rollback of models that degrade after the swap.
- :mod:`~repro.serve.chaos` -- the chaos harness driving all of the
  above through scripted faults (``repro serve-chaos``).
"""

from .admission import AdmissionController, AdmissionPolicy
from .artifacts import (
    SERVE_FORMAT_VERSION,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from .batching import MicroBatcher
from .chaos import ChaosConfig, ChaosRegistry, chaos_passed, run_chaos
from .client import ClientRetryPolicy, ServeClient
from .fallback import HeuristicSelector
from .features import FeatureCache
from .registry import ModelRegistry
from .reload import CircuitBreaker, ModelReloader, ReloadPolicy
from .service import PredictionService, SelectRequest, SelectResult
from .telemetry import LatencyHistogram, ServiceStats

__all__ = [
    "SERVE_FORMAT_VERSION",
    "AdmissionController",
    "AdmissionPolicy",
    "ChaosConfig",
    "ChaosRegistry",
    "CircuitBreaker",
    "ClientRetryPolicy",
    "FeatureCache",
    "HeuristicSelector",
    "LatencyHistogram",
    "MicroBatcher",
    "ModelArtifact",
    "ModelRegistry",
    "ModelReloader",
    "PredictionService",
    "ReloadPolicy",
    "SelectRequest",
    "SelectResult",
    "ServeClient",
    "ServiceStats",
    "chaos_passed",
    "load_artifact",
    "run_chaos",
    "save_artifact",
]
