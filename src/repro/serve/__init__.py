"""Model registry and online prediction service.

Everything upstream of this package *trains* models; everything in it
*serves* them.  The pieces, bottom to top:

- :mod:`~repro.serve.artifacts` -- versioned, checksummed JSON
  serialization for trained selectors/predictors (save -> load round
  trips reproduce predictions bit-identically).
- :mod:`~repro.serve.registry` -- a directory-backed
  :class:`ModelRegistry` with atomic publishes and ``latest`` tagging.
- :mod:`~repro.serve.service` -- the :class:`PredictionService`: raw
  stencils in, OC selections / time predictions out, through a
  content-keyed feature cache and the models' vectorized predict paths,
  degrading to a heuristic selector when artifacts are missing or bad.
- :mod:`~repro.serve.http` / :mod:`~repro.serve.client` -- a
  stdlib-only JSON-over-HTTP front end and its client.
- :mod:`~repro.serve.telemetry` -- request counters, cache hit rates,
  fallback counts and latency histograms exposed on ``/stats``.
"""

from .artifacts import (
    SERVE_FORMAT_VERSION,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from .batching import MicroBatcher
from .fallback import HeuristicSelector
from .features import FeatureCache
from .registry import ModelRegistry
from .service import PredictionService, SelectRequest, SelectResult
from .telemetry import LatencyHistogram, ServiceStats

__all__ = [
    "SERVE_FORMAT_VERSION",
    "FeatureCache",
    "HeuristicSelector",
    "LatencyHistogram",
    "MicroBatcher",
    "ModelArtifact",
    "ModelRegistry",
    "PredictionService",
    "SelectRequest",
    "SelectResult",
    "ServiceStats",
    "load_artifact",
    "save_artifact",
]
