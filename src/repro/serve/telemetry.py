"""Service telemetry: counters, cache hit rates, latency histograms.

All state is in-process and thread-safe; ``/stats`` and the service
logs read the same :meth:`ServiceStats.snapshot`.  Latencies go into
fixed geometric buckets (factor 2 from 1 microsecond to ~100 seconds),
so recording is O(1), memory is constant, and p50/p95/p99 come from the
cumulative bucket counts with linear interpolation inside the bucket --
the standard monitoring-histogram trade-off (quantile error bounded by
the bucket ratio, here at most 2x).
"""

from __future__ import annotations

import math
import threading

#: Histogram bucket geometry: upper bounds in seconds, factor-2 ladder.
_BUCKET_START_S = 1e-6
_N_BUCKETS = 28  # 1 us .. ~134 s


def _bucket_bounds() -> "list[float]":
    return [_BUCKET_START_S * (2.0 ** i) for i in range(_N_BUCKETS)]


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation."""

    def __init__(self) -> None:
        self._bounds = _bucket_bounds()
        self._counts = [0] * (_N_BUCKETS + 1)  # +1 overflow bucket
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        s = max(0.0, float(seconds))
        if s <= _BUCKET_START_S:
            idx = 0
        else:
            idx = min(
                _N_BUCKETS,
                int(math.ceil(math.log2(s / _BUCKET_START_S))),
            )
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.total_s += s
            if s > self.max_s:
                self.max_s = s

    # ------------------------------------------------------------------
    def percentile(self, p: float) -> float:
        """Estimated latency (seconds) at percentile ``p`` in [0, 100]."""
        with self._lock:
            if self.count == 0:
                return 0.0
            target = (p / 100.0) * self.count
            acc = 0
            for idx, n in enumerate(self._counts):
                if n == 0:
                    continue
                if acc + n >= target:
                    hi = (
                        self._bounds[idx]
                        if idx < _N_BUCKETS
                        else self.max_s
                    )
                    lo = self._bounds[idx - 1] if idx > 0 else 0.0
                    frac = (target - acc) / n
                    return min(lo + frac * (hi - lo), self.max_s)
                acc += n
            return self.max_s

    def summary(self) -> dict:
        """Count, mean and tail percentiles, in milliseconds."""
        p50, p95, p99 = (self.percentile(p) for p in (50, 95, 99))
        with self._lock:
            count, total, mx = self.count, self.total_s, self.max_s
        return {
            "count": count,
            "mean_ms": (total / count * 1e3) if count else 0.0,
            "p50_ms": p50 * 1e3,
            "p95_ms": p95 * 1e3,
            "p99_ms": p99 * 1e3,
            "max_ms": mx * 1e3,
        }


class ServiceStats:
    """Aggregated counters for one :class:`PredictionService`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: dict[str, int] = {}
        self.errors: dict[str, int] = {}
        self.fallbacks = 0
        self.fallback_rungs: dict[str, int] = {}
        self.model_hits = 0
        self.model_failures = 0
        self.shed = 0
        self.deadline_misses = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.latency: dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    def count_request(self, endpoint: str, n: int = 1) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + n

    def count_error(self, endpoint: str) -> None:
        with self._lock:
            self.errors[endpoint] = self.errors.get(endpoint, 0) + 1

    def count_fallback(self, n: int = 1, rung: "str | None" = None) -> None:
        """A degraded answer; *rung* names which ladder rung served it."""
        with self._lock:
            self.fallbacks += n
            if rung is not None:
                self.fallback_rungs[rung] = self.fallback_rungs.get(rung, 0) + n

    def count_model_hit(self, n: int = 1) -> None:
        with self._lock:
            self.model_hits += n

    def count_model_failure(self, n: int = 1) -> None:
        """A loaded model failed at answer time (served by fallback)."""
        with self._lock:
            self.model_failures += n

    def count_shed(self, n: int = 1) -> None:
        """Requests rejected at admission (queue full -> 503)."""
        with self._lock:
            self.shed += n

    def count_deadline_miss(self, n: int = 1) -> None:
        """Requests shed after queueing (deadline expired -> 503)."""
        with self._lock:
            self.deadline_misses += n

    def count_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            if size > self.max_batch:
                self.max_batch = size

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            hist = self.latency.get(endpoint)
            if hist is None:
                hist = self.latency[endpoint] = LatencyHistogram()
        hist.record(seconds)

    # ------------------------------------------------------------------
    def snapshot(self, cache_info: "dict | None" = None) -> dict:
        """One JSON-ready view of everything (the ``/stats`` body)."""
        with self._lock:
            requests = dict(self.requests)
            errors = dict(self.errors)
            fallbacks = self.fallbacks
            fallback_rungs = dict(self.fallback_rungs)
            model_hits = self.model_hits
            model_failures = self.model_failures
            shed = self.shed
            deadline_misses = self.deadline_misses
            batches = self.batches
            batched = self.batched_requests
            max_batch = self.max_batch
            hists = dict(self.latency)
        doc = {
            "requests": requests,
            "requests_total": sum(requests.values()),
            "errors": errors,
            "errors_total": sum(errors.values()),
            "fallbacks": fallbacks,
            "fallback_rungs": fallback_rungs,
            "model_hits": model_hits,
            "model_failures": model_failures,
            "shed": shed,
            "deadline_misses": deadline_misses,
            "batches": {
                "count": batches,
                "requests": batched,
                "max_size": max_batch,
                "mean_size": (batched / batches) if batches else 0.0,
            },
            "latency": {name: h.summary() for name, h in hists.items()},
        }
        if cache_info is not None:
            doc["feature_cache"] = cache_info
        return doc
