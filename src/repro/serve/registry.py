"""Directory-backed model registry with ``latest`` tagging.

Layout (one subdirectory per artifact name)::

    <root>/
        select-gbdt-V100/
            v000001.json
            v000002.json
            LATEST          # text file: "v000002"

Every write is atomic (tmp + ``os.replace``, the PR 1 storage
primitive): a publish first lands the immutable version file, then
moves the ``LATEST`` pointer, so readers observe either the old or the
new tag -- never a tag pointing at a half-written artifact.  Version
files are never rewritten; history stays queryable.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path

from ..errors import ArtifactError
from ..profiling.storage import atomic_write_text
from .artifacts import ModelArtifact, load_artifact, save_artifact

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_RE = re.compile(r"^v(\d{6})\.json$")
_LATEST = "LATEST"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ArtifactError(
            f"bad artifact name {name!r}: use letters, digits, '.', '_', "
            f"'-' (no path separators)"
        )
    return name


class ModelRegistry:
    """Publish/resolve/load versioned model artifacts under one root."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Serializes in-process publishes so concurrent publishers never
        # race for the same next version number.  (Cross-process safety
        # comes from the atomic file moves: readers always observe a
        # complete version file and a complete tag.)
        self._publish_lock = threading.Lock()

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Artifact names with at least one published version."""
        out = []
        for p in sorted(self.root.iterdir()):
            if p.is_dir() and self._versions_in(p):
                out.append(p.name)
        return out

    def versions(self, name: str) -> list[str]:
        """Published versions of *name*, oldest first (e.g. ``v000001``)."""
        d = self.root / _check_name(name)
        if not d.is_dir():
            raise ArtifactError(f"no artifact named {name!r} in {self.root}")
        return self._versions_in(d)

    @staticmethod
    def _versions_in(d: Path) -> list[str]:
        found = []
        for p in d.iterdir():
            m = _VERSION_RE.match(p.name)
            if m:
                found.append(f"v{m.group(1)}")
        return sorted(found)

    def latest(self, name: str) -> str:
        """The version the ``LATEST`` tag points at.

        Fails closed with a descriptive :class:`ArtifactError` on every
        torn state a reader can observe: an empty or garbled tag, a tag
        naming a version whose file was deleted, or a directory with no
        published versions at all.  A reader racing a concurrent
        :meth:`publish` sees either the old tag or the new one -- both
        valid -- because the version file always lands before the tag
        moves.
        """
        d = self.root / _check_name(name)
        tag = d / _LATEST
        versions = self.versions(name)
        if tag.exists():
            try:
                v = tag.read_text().strip()
            except OSError as e:
                raise ArtifactError(
                    f"{name}: cannot read LATEST tag: {e}"
                ) from None
            if v in versions:
                return v
            raise ArtifactError(
                f"{name}: LATEST tag points at {v!r} but published "
                f"versions are {versions} (torn tag, or the version "
                f"file was deleted)"
            )
        # Tag missing (e.g. hand-pruned registry): newest published wins.
        if not versions:
            raise ArtifactError(
                f"{name}: no published versions in {self.root}"
            )
        return versions[-1]

    # ------------------------------------------------------------------
    # publish / load
    # ------------------------------------------------------------------
    def publish(self, artifact: ModelArtifact, name: str) -> str:
        """Write *artifact* as the next version of *name*; returns it.

        The version file lands first, the ``LATEST`` tag second; both
        moves are atomic, so a crash between them leaves a fully valid
        registry (the new version exists, the tag still names the old
        one).
        """
        d = self.root / _check_name(name)
        d.mkdir(parents=True, exist_ok=True)
        with self._publish_lock:
            existing = self._versions_in(d)
            next_num = 1 + (int(existing[-1][1:]) if existing else 0)
            version = f"v{next_num:06d}"
            save_artifact(artifact, d / f"{version}.json")
            atomic_write_text(d / _LATEST, version + "\n")
        return version

    def path(self, name: str, version: "str | None" = None) -> Path:
        """Filesystem path of a published artifact document."""
        version = version or self.latest(name)
        p = self.root / _check_name(name) / f"{version}.json"
        if not p.exists():
            raise ArtifactError(
                f"{name}@{version} not found in {self.root} "
                f"(published: {self.versions(name)})"
            )
        return p

    def load(self, name: str, version: "str | None" = None) -> ModelArtifact:
        """Load and checksum-verify ``name@version`` (default latest)."""
        return load_artifact(self.path(name, version))


def default_artifact_name(kind: str, method: str, gpu: "str | None",
                          ndim: int) -> str:
    """The conventional registry name for a trained model.

    Selectors are per-GPU (``select-gbdt-V100-2d``); cross-architecture
    predictors use ``all`` in the GPU slot.
    """
    stem = "select" if kind == "selector" else "predict"
    return f"{stem}-{method}-{gpu or 'all'}-{ndim}d"
