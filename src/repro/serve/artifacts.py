"""Versioned, checksummed model artifacts.

An artifact is one JSON document holding a trained estimator plus the
metadata needed to serve it without the training campaign in hand:
task kind, method, dimensionality, target GPU, feature schema, and --
for selectors -- the merged-class representative OCs the class indices
decode to.

Integrity contract:

- ``format`` follows the PR 1 storage convention: documents written by
  a newer library version are rejected with a message naming both
  versions; anything else malformed raises :class:`ArtifactError`.
- ``checksum`` is a BLAKE2b digest over the canonical JSON encoding of
  the whole payload (sorted keys, no whitespace).  A flipped bit in a
  weight matrix, an edited metadata field or a truncated file all fail
  closed at load time.
- The embedded model uses :mod:`repro.ml.serialize`, so a loaded
  artifact predicts bit-identically to the in-memory model it was saved
  from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..config import MAX_ORDER
from ..errors import ArtifactError
from ..ml.serialize import model_from_state, model_state
from ..profiling.storage import atomic_write_text
from ..stencil.features import feature_names

#: Format version written into every artifact document.
SERVE_FORMAT_VERSION = 1

#: Artifact kinds: OC selection (classifier) or time prediction
#: (regressor).
KINDS = ("selector", "predictor")


def _canonical_json(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checksum_payload(payload: dict) -> str:
    """BLAKE2b hex digest of the canonical JSON encoding of *payload*."""
    data = _canonical_json(payload).encode("utf-8")
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def check_artifact_version(doc: dict) -> None:
    """PR 1 convention: newer documents name both versions, everything
    else malformed is rejected outright."""
    fmt = doc.get("format")
    if isinstance(fmt, int) and fmt > SERVE_FORMAT_VERSION:
        raise ArtifactError(
            f"artifact document has format_version {fmt}, newer than the "
            f"supported SERVE_FORMAT_VERSION {SERVE_FORMAT_VERSION}; "
            f"upgrade the library to read it"
        )
    if fmt != SERVE_FORMAT_VERSION:
        raise ArtifactError(f"unsupported artifact format: {fmt!r}")


@dataclass
class ModelArtifact:
    """A trained model plus everything needed to serve it.

    ``gpu`` is the target GPU for selectors; predictors trained across
    architectures record their training GPUs in ``meta`` and keep
    ``gpu`` as ``None``.  ``representatives`` decodes selector class
    indices to OC names; it is empty for predictors.
    """

    kind: str
    method: str
    ndim: int
    model: object
    gpu: "str | None" = None
    max_order: int = MAX_ORDER
    representatives: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ArtifactError(
                f"unknown artifact kind {self.kind!r}; known: {KINDS}"
            )
        if self.kind == "selector" and not self.representatives:
            raise ArtifactError("selector artifacts need representatives")

    # ------------------------------------------------------------------
    @property
    def feature_schema(self) -> list[str]:
        """Names of the flat feature vector this model consumes."""
        return feature_names(self.max_order)

    def describe(self) -> str:
        target = self.gpu or "cross-arch"
        return f"{self.kind}/{self.method} ({self.ndim}d, {target})"

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready document, checksummed over every other field."""
        payload = {
            "format": SERVE_FORMAT_VERSION,
            "kind": self.kind,
            "method": self.method,
            "ndim": self.ndim,
            "gpu": self.gpu,
            "max_order": self.max_order,
            "representatives": list(self.representatives),
            "feature_schema": self.feature_schema,
            "meta": dict(self.meta),
            "model": model_state(self.model),
        }
        return {**payload, "checksum": checksum_payload(payload)}

    @classmethod
    def from_dict(cls, doc: dict) -> "ModelArtifact":
        """Validate and rebuild an artifact from :meth:`to_dict` output."""
        if not isinstance(doc, dict):
            raise ArtifactError(
                f"artifact document must be an object, got {type(doc).__name__}"
            )
        check_artifact_version(doc)
        recorded = doc.get("checksum")
        payload = {k: v for k, v in doc.items() if k != "checksum"}
        actual = checksum_payload(payload)
        if recorded != actual:
            raise ArtifactError(
                f"artifact checksum mismatch: recorded {recorded!r}, "
                f"computed {actual!r} (corrupt or hand-edited document)"
            )
        try:
            return cls(
                kind=str(doc["kind"]),
                method=str(doc["method"]),
                ndim=int(doc["ndim"]),
                gpu=doc["gpu"],
                max_order=int(doc["max_order"]),
                representatives=[str(r) for r in doc["representatives"]],
                meta=dict(doc.get("meta", {})),
                model=model_from_state(doc["model"]),
            )
        except KeyError as e:
            raise ArtifactError(f"malformed artifact: missing {e}") from None


def save_artifact(artifact: ModelArtifact, path: "str | Path") -> None:
    """Write an artifact to *path* atomically (tmp + rename, PR 1 style)."""
    atomic_write_text(path, json.dumps(artifact.to_dict()))


def load_artifact(path: "str | Path") -> ModelArtifact:
    """Read, checksum-verify and rebuild an artifact from *path*."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as e:
        raise ArtifactError(f"cannot read artifact {path}: {e}") from None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        raise ArtifactError(
            f"artifact {path} is not valid JSON ({e}); the file is "
            f"corrupt or was not written by save_artifact"
        ) from None
    return ModelArtifact.from_dict(doc)
