"""Admission control for the prediction service.

The serving tier must keep answering when offered load exceeds what the
model path can clear.  Unbounded queueing is the classic failure mode:
latency grows without bound, every request eventually times out
client-side, and the service does work nobody is waiting for anymore.
The admission controller replaces that with three explicit mechanisms:

- **Bounded queue**: at most ``max_queue`` requests may be queued or in
  flight across the service's micro-batchers.  A request arriving past
  the bound is *shed* immediately with :class:`OverloadError` -- the
  HTTP layer turns that into ``503`` + ``Retry-After`` -- instead of
  joining a queue it would never clear.
- **Deadlines**: every admitted request carries a deadline (per-request
  budget, or the policy default).  Work whose deadline expired while it
  waited is shed *before* compute -- the batch leader drops it when
  forming a batch -- so a stalled worker does not burn model time on
  answers nobody will read.
- **Degraded health**: ``/healthz`` reports ``"overloaded"`` once the
  queue passes ``overload_threshold`` of its bound, before requests are
  actually shed, so load balancers can rebalance ahead of hard 503s.

All accounting is O(1) per request and shared by the select and predict
batchers: one bound protects the whole service.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..errors import OverloadError

#: Sentinel distinguishing "no budget given, use the policy default"
#: from an explicit ``None`` ("no deadline for this request").
_UNSET = object()


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the bounded-queue admission controller.

    ``max_queue <= 0`` disables the bound (admit everything) -- useful
    for offline batch replays where shedding would only lose work.
    ``default_budget_s`` of ``None`` means admitted requests have no
    deadline unless the caller supplies one.
    """

    max_queue: int = 256
    default_budget_s: "float | None" = None
    overload_threshold: float = 0.5
    retry_after_s: float = 0.05


class AdmissionController:
    """Bounded admission with deadline bookkeeping and health status.

    ``depth`` counts requests admitted but not yet answered (queued or
    in a running batch); the micro-batchers call :meth:`admit` on
    submit and :meth:`release` when an item completes or is shed.  The
    clock is injectable so deadline behaviour is testable without real
    waits.
    """

    def __init__(
        self,
        policy: "AdmissionPolicy | None" = None,
        stats=None,
        clock=time.monotonic,
    ):
        self.policy = policy or AdmissionPolicy()
        self.stats = stats
        self.clock = clock
        self._lock = threading.Lock()
        self.depth = 0
        self.peak_depth = 0
        self.shed_total = 0

    # ------------------------------------------------------------------
    # queue accounting
    # ------------------------------------------------------------------
    def admit(self) -> None:
        """Reserve a queue slot or shed with :class:`OverloadError`."""
        p = self.policy
        with self._lock:
            if 0 < p.max_queue <= self.depth:
                self.shed_total += 1
                depth = self.depth
                if self.stats is not None:
                    self.stats.count_shed()
                raise OverloadError(
                    f"request queue full ({depth}/{p.max_queue} in "
                    f"flight); retry after {p.retry_after_s}s",
                    retry_after_s=p.retry_after_s,
                    kind="queue_full",
                )
            self.depth += 1
            if self.depth > self.peak_depth:
                self.peak_depth = self.depth

    def release(self, n: int = 1) -> None:
        """Return *n* slots after their requests completed or were shed."""
        with self._lock:
            self.depth = max(0, self.depth - n)

    # ------------------------------------------------------------------
    # deadlines
    # ------------------------------------------------------------------
    def deadline_for(self, budget_s=_UNSET) -> "float | None":
        """Absolute deadline for a request entering now (None = none)."""
        if budget_s is _UNSET:
            budget_s = self.policy.default_budget_s
        if budget_s is None:
            return None
        return self.clock() + float(budget_s)

    def expired(self, deadline: "float | None") -> bool:
        return deadline is not None and self.clock() > deadline

    def shed_expired(self) -> None:
        """Record one deadline miss (the batcher already holds the item)."""
        with self._lock:
            self.shed_total += 1
        if self.stats is not None:
            self.stats.count_deadline_miss()

    def deadline_error(self) -> OverloadError:
        return OverloadError(
            "deadline expired while the request waited for a batch slot",
            retry_after_s=self.policy.retry_after_s,
            kind="deadline",
        )

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def status(self) -> str:
        """``"ok"`` or ``"overloaded"`` (queue past the threshold)."""
        p = self.policy
        if p.max_queue <= 0:
            return "ok"
        with self._lock:
            depth = self.depth
        if depth >= max(1.0, p.overload_threshold * p.max_queue):
            return "overloaded"
        return "ok"

    def snapshot(self) -> dict:
        """Queue-state document merged into ``/stats``."""
        with self._lock:
            depth, peak, shed = self.depth, self.peak_depth, self.shed_total
        return {
            "queue_depth": depth,
            "queue_depth_peak": peak,
            "max_queue": self.policy.max_queue,
            "shed_total": shed,
            "status": self.status(),
            "default_budget_s": self.policy.default_budget_s,
        }
