"""Serving-throughput benchmark (the load generator behind
``tools/bench_serve.py`` and ``benchmarks/test_serve_throughput.py``).

The serving stack's headline claim is that micro-batching pays: a
stream of single-stencil requests funneled into one vectorized model
call clears several times the throughput of answering each request
with its own model call.  This bench trains real (small) selector and
predictor artifacts, replays the same request stream through

- the **per-request** path (``select_one`` / ``predict_one``: one model
  call per request, the no-batching reference),
- the **batched** path (``select_many`` / ``predict_many`` in
  max-batch-sized chunks: what the micro-batcher converges to under
  load), and
- the **concurrent** path (worker threads submitting through the real
  :class:`MicroBatcher`, the HTTP server's request shape),

and records throughput, speedups, and p50/p95/p99 latencies as one
JSON document (``BENCH_serve.json`` at the repo root by convention).
The feature cache is pre-warmed and shared across phases so every
number isolates model-call batching, not representation extraction.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..config import DEFAULT_SEED, MAX_ORDER
from ..optimizations.combos import ALL_OCS
from ..optimizations.params import sample_setting
from ..profiling import run_campaign
from ..profiling.train import train_predictor_artifact, train_selector_artifact
from ..stencil.generator import generate_population
from .features import FeatureCache
from .service import PredictionService, PredictRequest, SelectRequest

_GPU = "V100"
_NDIM = 2


def _train_artifacts(quick: bool, seed: int):
    n_stencils = 6 if quick else 10
    pop = generate_population(_NDIM, n_stencils, seed=seed)
    campaign = run_campaign(pop, gpus=(_GPU, "A100"), n_settings=3, seed=seed)
    selector = train_selector_artifact(campaign, _GPU, seed=seed)
    predictor = train_predictor_artifact(campaign, seed=seed)
    return selector, predictor


def train_bench_artifacts(quick: bool = False, seed: int = DEFAULT_SEED):
    """Small real selector/predictor artifacts for benches and chaos."""
    return _train_artifacts(quick, seed)


def _make_requests(quick: bool, seed: int):
    n = 64 if quick else 256
    stencils = generate_population(_NDIM, n, max_order=MAX_ORDER, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    selects = [SelectRequest(s, _GPU) for s in stencils]
    predicts = []
    for i, s in enumerate(stencils):
        oc = ALL_OCS[i % len(ALL_OCS)]
        setting = sample_setting(oc, s.ndim, rng)
        predicts.append(PredictRequest(s, oc.name, setting, _GPU))
    return selects, predicts


class _Harness:
    """Fresh service per phase over shared artifacts + a warm cache."""

    def __init__(self, selector, predictor, max_batch: int):
        self.selector = selector
        self.predictor = predictor
        self.max_batch = max_batch
        self.cache = FeatureCache(MAX_ORDER)

    def service(self) -> PredictionService:
        svc = PredictionService(
            feature_cache=self.cache, max_batch=self.max_batch
        )
        svc.install(self.selector, "bench-selector")
        svc.install(self.predictor, "bench-predictor")
        return svc


def _phase_doc(seconds: float, n: int, latency: "dict | None") -> dict:
    doc = {
        "seconds": seconds,
        "requests": n,
        "requests_per_sec": n / seconds if seconds > 0 else float("inf"),
    }
    if latency is not None:
        doc["latency_ms"] = {
            k: latency[k] for k in ("p50_ms", "p95_ms", "p99_ms", "mean_ms")
        }
    return doc


def _bench_endpoint(
    harness: _Harness, endpoint: str, requests: list, one, many
) -> dict:
    """Per-request loop vs chunked batch calls for one endpoint.

    *one* is called as ``one(service, request)``; *many* as
    ``many(service, requests)``.  Both paths answer the identical
    stream, so throughput differences are purely batching.
    """
    svc = harness.service()
    start = time.perf_counter()
    for r in requests:
        one(svc, r)
    loop_s = time.perf_counter() - start
    loop_lat = svc.stats.snapshot()["latency"][endpoint]

    svc = harness.service()
    chunk = harness.max_batch
    start = time.perf_counter()
    for i in range(0, len(requests), chunk):
        many(svc, requests[i : i + chunk])
    batch_s = time.perf_counter() - start

    return {
        "per_request": _phase_doc(loop_s, len(requests), loop_lat),
        "batched": {
            **_phase_doc(batch_s, len(requests), None),
            "chunk_size": chunk,
        },
        "batched_speedup": loop_s / batch_s if batch_s > 0 else float("inf"),
    }


def _bench_concurrent(
    harness: _Harness, requests: "list[SelectRequest]", threads: int
) -> dict:
    """Worker threads through the real micro-batcher (the HTTP shape)."""
    svc = harness.service()
    shards = [requests[i::threads] for i in range(threads)]
    barrier = threading.Barrier(threads + 1)

    def worker(shard):
        barrier.wait()
        for r in shard:
            svc.select(r.stencil, r.gpu)

    pool = [
        threading.Thread(target=worker, args=(s,), daemon=True)
        for s in shards
    ]
    for t in pool:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in pool:
        t.join()
    seconds = time.perf_counter() - start
    snap = svc.stats.snapshot()
    doc = _phase_doc(seconds, len(requests), snap["latency"]["select"])
    doc["threads"] = threads
    doc["batches"] = snap["batches"]
    return doc


def run_serve_bench(
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    max_batch: int = 64,
    threads: int = 8,
) -> dict:
    """Train artifacts, replay the request stream, return the document."""
    selector, predictor = _train_artifacts(quick, seed)
    selects, predicts = _make_requests(quick, seed)
    harness = _Harness(selector, predictor, max_batch)

    # Warm the shared feature cache and the NumPy dispatch paths once so
    # every timed phase measures model-call batching only.
    warm = harness.service()
    warm.select_many(selects)
    warm.predict_many(predicts)

    return {
        "quick": quick,
        "seed": seed,
        "gpu": _GPU,
        "ndim": _NDIM,
        "n_requests": len(selects),
        "max_batch": max_batch,
        "selector": selector.describe(),
        "predictor": predictor.describe(),
        "select": _bench_endpoint(
            harness,
            "select",
            selects,
            lambda svc, r: svc.select_one(r.stencil, r.gpu),
            lambda svc, rs: svc.select_many(rs),
        ),
        "predict": _bench_endpoint(
            harness,
            "predict",
            predicts,
            lambda svc, r: svc.predict_one(r.stencil, r.oc, r.setting, r.gpu),
            lambda svc, rs: svc.predict_many(rs),
        ),
        "concurrent_select": _bench_concurrent(harness, selects, threads),
    }
