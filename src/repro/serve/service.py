"""The online prediction service.

Raw stencils in, answers out:

- **select**: which OC should this stencil use on this GPU?  Served by
  a selector artifact's classifier when one is installed for the
  (ndim, GPU) pair, decoded through the artifact's representative OCs;
  otherwise the fallback ladder answers -- the analytical selector
  (static perfmodel argmin) first, the heuristic ladder as the total
  last rung -- and the event is counted as a fallback attributed to
  its rung.
- **predict**: how long will this (stencil, OC, setting) run on this
  GPU?  Served by a predictor artifact (cross-architecture: the GPU is
  a model input, so one artifact covers every known GPU).

Per-stencil representation work flows through a content-keyed
:class:`FeatureCache`; batched entry points stack cached rows and make
one vectorized model call.  Concurrent single requests (the HTTP front
end) are funneled through :class:`MicroBatcher` instances onto the same
batch paths.  Every answer is counted in :class:`ServiceStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import MAX_ORDER
from ..errors import ArtifactError, OverloadError, ServiceError
from ..gpu.specs import ALL_GPU_ORDER, hardware_features
from ..ml.analytical import AnalyticalSelector
from ..ml.preprocess import LogTimeTransform, augment_features
from ..optimizations.combos import OC_BY_NAME
from ..optimizations.params import PARAM_NAMES, ParamSetting
from ..profiling.dataset import oc_flags
from ..stencil.stencil import Stencil
from .admission import _UNSET, AdmissionController, AdmissionPolicy
from .artifacts import ModelArtifact
from .batching import MicroBatcher
from .fallback import HeuristicSelector
from .features import FeatureCache
from .registry import ModelRegistry
from .telemetry import ServiceStats

#: Selector methods whose input is the assignment tensor (the rest use
#: the flat Table II feature vector).
_TENSOR_METHODS = {"convnet", "fcnet", "convmlp"}


@dataclass(frozen=True)
class SelectRequest:
    """One OC-selection query."""

    stencil: Stencil
    gpu: str


@dataclass(frozen=True)
class PredictRequest:
    """One execution-time query."""

    stencil: Stencil
    oc: str
    setting: ParamSetting
    gpu: str


@dataclass
class SelectResult:
    """Answer to a :class:`SelectRequest`."""

    oc: str
    source: str  # "model" | "fallback"
    cls: "int | None" = None
    artifact: "str | None" = None
    #: Which degradation-ladder rung answered a fallback request
    #: ("analytical" | "heuristic-ladder"); ``None`` for model answers.
    rung: "str | None" = None


@dataclass
class _Installed:
    artifact: ModelArtifact
    label: str


def _check_gpu(gpu: str) -> str:
    if gpu not in ALL_GPU_ORDER:
        raise ServiceError(
            f"unknown GPU {gpu!r}; known: {list(ALL_GPU_ORDER)}"
        )
    return gpu


def setting_from_dict(doc: "dict | None") -> ParamSetting:
    """Build a :class:`ParamSetting` from a request's JSON object."""
    if not doc:
        return ParamSetting()
    bad = sorted(set(doc) - set(PARAM_NAMES))
    if bad:
        raise ServiceError(
            f"unknown setting parameter(s) {bad}; known: {list(PARAM_NAMES)}"
        )
    try:
        return ParamSetting(**{k: int(v) for k, v in doc.items()})
    except (TypeError, ValueError) as e:
        raise ServiceError(f"bad setting values: {e}") from None


class PredictionService:
    """Serve OC selections and time predictions from model artifacts."""

    def __init__(
        self,
        registry: "ModelRegistry | None" = None,
        fallback: "HeuristicSelector | None" = None,
        analytical: "AnalyticalSelector | None" = None,
        feature_cache: "FeatureCache | None" = None,
        stats: "ServiceStats | None" = None,
        max_order: int = MAX_ORDER,
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        admission: "AdmissionPolicy | None" = None,
        clock=None,
    ):
        self.stats = stats or ServiceStats()
        self.cache = feature_cache or FeatureCache(max_order)
        self.fallback = fallback or HeuristicSelector()
        self.analytical = analytical or AnalyticalSelector()
        self.max_order = int(max_order)
        self._selectors: dict[tuple[int, str], _Installed] = {}
        self._predictors: dict[int, _Installed] = {}
        self.degraded: list[dict] = []
        #: Attached by :class:`repro.serve.reload.ModelReloader`; its
        #: breaker/swap state then shows up in :meth:`stats_snapshot`.
        self.reloader = None
        self.admission = AdmissionController(
            admission or AdmissionPolicy(),
            stats=self.stats,
            clock=clock or time.monotonic,
        )
        self._select_batcher = MicroBatcher(
            self.select_many,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            on_batch=self.stats.count_batch,
            admission=self.admission,
        )
        self._predict_batcher = MicroBatcher(
            self.predict_many,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            on_batch=self.stats.count_batch,
            admission=self.admission,
        )
        if registry is not None:
            self.load_registry(registry)

    # ------------------------------------------------------------------
    # artifact installation
    # ------------------------------------------------------------------
    def install(self, artifact: ModelArtifact, label: str = "") -> None:
        """Install a loaded artifact; later installs win per slot."""
        label = label or artifact.describe()
        slot = _Installed(artifact, label)
        if artifact.kind == "selector":
            if artifact.gpu is None:
                raise ArtifactError("selector artifacts must name a GPU")
            self._selectors[(artifact.ndim, artifact.gpu)] = slot
        else:
            self._predictors[artifact.ndim] = slot

    def load_registry(self, registry: ModelRegistry) -> None:
        """Install the latest version of every artifact in *registry*.

        Unreadable artifacts (corrupt, newer format, ...) do not raise:
        the failure is recorded in :attr:`degraded` -- visible in
        ``/stats`` -- and requests that would have used the artifact
        fall back instead.  That is the degradation contract: a bad
        publish never takes the service down.
        """
        for name in registry.names():
            try:
                version = registry.latest(name)
                self.install(registry.load(name, version), f"{name}@{version}")
            except ArtifactError as e:
                self.degraded.append({"artifact": name, "error": str(e)})

    def capabilities(self) -> dict:
        """What the service can currently answer (for ``/stats``)."""
        return {
            "selectors": {
                f"{ndim}d/{gpu}": slot.label
                for (ndim, gpu), slot in sorted(self._selectors.items())
            },
            "predictors": {
                f"{ndim}d": slot.label
                for ndim, slot in sorted(self._predictors.items())
            },
            "degraded": list(self.degraded),
        }

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def _fallback_select(
        self, stencils: "list[Stencil]", gpu: str
    ) -> "list[tuple[str, str]]":
        """Degraded-path selection through the fallback ladder.

        Two rungs below the ML model: the analytical selector (static
        perfmodel argmin, no artifact needed) answers first; if its
        estimation fails for a stencil, the heuristic ladder -- total by
        construction -- answers last.  Each answer is attributed to its
        rung in the stats, so ``/stats`` shows *how* degraded traffic
        was served, not just that it was.
        """
        out: "list[tuple[str, str]]" = []
        for s in stencils:
            try:
                pick = (self.analytical.select(s, gpu), "analytical")
            except Exception:  # noqa: BLE001 - last rung must answer
                pick = (self.fallback.select(s, gpu), self.fallback.name)
            self.stats.count_fallback(rung=pick[1])
            out.append(pick)
        return out

    def select(self, stencil: Stencil, gpu: str, budget_s=_UNSET) -> SelectResult:
        """One selection, through the micro-batcher (the service's
        per-request front door).

        ``budget_s`` is this request's deadline budget: unset uses the
        admission policy default, ``None`` disables the deadline.  May
        raise :class:`~repro.errors.OverloadError` (shed, not failed).
        """
        t0 = time.perf_counter()
        try:
            result = self._select_batcher.submit(
                SelectRequest(stencil, gpu),
                deadline=self.admission.deadline_for(budget_s),
            )
        except OverloadError:
            # Sheds are overload protection working as designed; they
            # are counted by the admission controller, not as errors.
            raise
        except Exception:
            self.stats.count_error("select")
            raise
        finally:
            self.stats.observe_latency("select", time.perf_counter() - t0)
        return result

    def select_one(self, stencil: Stencil, gpu: str) -> SelectResult:
        """One selection on the unbatched path (reference/benchmark)."""
        t0 = time.perf_counter()
        try:
            result = self.select_many([SelectRequest(stencil, gpu)])[0]
        except Exception:
            self.stats.count_error("select")
            raise
        finally:
            self.stats.observe_latency("select", time.perf_counter() - t0)
        return result

    def select_many(
        self, requests: "list[SelectRequest]"
    ) -> "list[SelectResult]":
        """Vectorized selection: one model call per (ndim, GPU) group."""
        self.stats.count_request("select", len(requests))
        out: "list[SelectResult | None]" = [None] * len(requests)
        groups: dict[tuple[int, str], list[int]] = {}
        for i, r in enumerate(requests):
            _check_gpu(r.gpu)
            if r.stencil.order > self.max_order:
                raise ServiceError(
                    f"stencil order {r.stencil.order} exceeds the service "
                    f"max order {self.max_order}"
                )
            groups.setdefault((r.stencil.ndim, r.gpu), []).append(i)
        for (ndim, gpu), idxs in groups.items():
            slot = self._selectors.get((ndim, gpu))
            stencils = [requests[i].stencil for i in idxs]
            if slot is None:
                for i, (oc, rung) in zip(idxs, self._fallback_select(stencils, gpu)):
                    out[i] = SelectResult(oc=oc, source="fallback", rung=rung)
                continue
            art = slot.artifact
            try:
                if art.method == "analytical":
                    # The analytical family consumes raw stencils, not
                    # feature matrices: extraction needs actual source.
                    decoded = list(art.model.select_many(stencils, gpu))
                    classes = np.array(
                        [art.representatives.index(oc) for oc in decoded],
                        dtype=np.int64,
                    )
                else:
                    X = (
                        self.cache.tensors(stencils)
                        if art.method in _TENSOR_METHODS
                        else self.cache.features(stencils)
                    )
                    classes = np.asarray(art.model.predict(X), dtype=np.int64)
                    decoded = [art.representatives[int(c)] for c in classes]
            except Exception:  # noqa: BLE001 - degrade, never 500
                # A model that misbehaves at answer time (garbage
                # classes, shape drift after a bad publish, ...) is a
                # degradation, not an outage: the fallback ladder
                # answers and the failure is counted so the reloader's
                # health check can roll the artifact back.
                self.stats.count_model_failure(len(idxs))
                for i, (oc, rung) in zip(idxs, self._fallback_select(stencils, gpu)):
                    out[i] = SelectResult(oc=oc, source="fallback", rung=rung)
                continue
            self.stats.count_model_hit(len(idxs))
            for i, cls, oc in zip(idxs, classes, decoded):
                out[i] = SelectResult(
                    oc=oc,
                    source="model",
                    cls=int(cls),
                    artifact=slot.label,
                )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # time prediction
    # ------------------------------------------------------------------
    def predict(
        self, stencil: Stencil, oc: str, setting: ParamSetting, gpu: str,
        budget_s=_UNSET,
    ) -> float:
        """One time prediction through the micro-batcher."""
        t0 = time.perf_counter()
        try:
            result = self._predict_batcher.submit(
                PredictRequest(stencil, oc, setting, gpu),
                deadline=self.admission.deadline_for(budget_s),
            )
        except OverloadError:
            raise
        except Exception:
            self.stats.count_error("predict")
            raise
        finally:
            self.stats.observe_latency("predict", time.perf_counter() - t0)
        return result

    def predict_one(
        self, stencil: Stencil, oc: str, setting: ParamSetting, gpu: str
    ) -> float:
        """One prediction on the unbatched path (reference/benchmark)."""
        t0 = time.perf_counter()
        try:
            result = self.predict_many(
                [PredictRequest(stencil, oc, setting, gpu)]
            )[0]
        except Exception:
            self.stats.count_error("predict")
            raise
        finally:
            self.stats.observe_latency("predict", time.perf_counter() - t0)
        return result

    def predict_many(
        self, requests: "list[PredictRequest]"
    ) -> "list[float]":
        """Vectorized time prediction, one model call per ndim group."""
        self.stats.count_request("predict", len(requests))
        out = [0.0] * len(requests)
        groups: dict[int, list[int]] = {}
        for i, r in enumerate(requests):
            _check_gpu(r.gpu)
            if r.oc not in OC_BY_NAME:
                raise ServiceError(
                    f"unknown OC {r.oc!r}; known: {sorted(OC_BY_NAME)}"
                )
            groups.setdefault(r.stencil.ndim, []).append(i)
        for ndim, idxs in groups.items():
            slot = self._predictors.get(ndim)
            if slot is None:
                raise ServiceError(
                    f"no {ndim}d predictor artifact installed "
                    f"(capabilities: {self.capabilities()['predictors']})"
                )
            art = slot.artifact
            sub = [requests[i] for i in idxs]
            aux = np.stack(
                [
                    np.concatenate(
                        [
                            oc_flags(r.oc),
                            r.setting.encode(),
                            np.asarray(hardware_features(r.gpu)),
                        ]
                    )
                    for r in sub
                ]
            )
            stencils = [r.stencil for r in sub]
            if art.method == "convmlp":
                tensors = self.cache.tensors(stencils)
                times = art.model.predict(tensors, aux)
            elif art.method == "analytical":
                times = art.model.predict_requests(
                    [(r.stencil, OC_BY_NAME[r.oc], r.setting, r.gpu) for r in sub]
                )
            else:
                feats = self.cache.features(stencils)
                X = np.concatenate([feats, aux], axis=1)
                if art.method == "hybrid":
                    from ..analysis.perfmodel import analytical_features

                    X = augment_features(
                        X,
                        np.stack(
                            [
                                analytical_features(
                                    r.stencil, OC_BY_NAME[r.oc], r.setting, r.gpu
                                )
                                for r in sub
                            ]
                        ),
                    )
                if art.method in ("gbr", "hybrid"):
                    times = LogTimeTransform.inverse(art.model.predict(X))
                else:
                    times = art.model.predict(X)
            self.stats.count_model_hit(len(idxs))
            for i, t in zip(idxs, times):
                out[i] = float(t)
        return out

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` body: alive, but possibly ``overloaded``.

        ``status`` degrades to ``"overloaded"`` once the admission
        queue crosses its threshold -- before requests are hard-shed --
        so load balancers see trouble coming while the service still
        answers.
        """
        adm = self.admission.snapshot()
        return {
            "ok": True,
            "status": adm["status"],
            "queue_depth": adm["queue_depth"],
        }

    def stats_snapshot(self) -> dict:
        """Counters + capabilities, the ``/stats`` response body."""
        doc = self.stats.snapshot(cache_info=self.cache.info())
        doc["capabilities"] = self.capabilities()
        doc["admission"] = self.admission.snapshot()
        if self.reloader is not None:
            doc["reload"] = self.reloader.snapshot()
        return doc
