"""Stdlib client for the serve HTTP protocol (used by ``repro query``).

Thin urllib wrapper; raises :class:`ServiceError` with the server's
``error`` field for 4xx/5xx responses so callers see one exception
type for "the service said no".
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from ..errors import ServiceError


class ServeClient:
    """Talk to a running serve endpoint."""

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------
    def _request(self, path: str, payload: "dict | None" = None) -> dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as e:
            try:
                detail = json.loads(e.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - body may be anything
                detail = ""
            raise ServiceError(
                f"{path} failed with HTTP {e.code}: {detail or e.reason}"
            ) from None
        except urllib.error.URLError as e:
            raise ServiceError(f"cannot reach {url}: {e.reason}") from None

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def select(self, stencil, gpu: str) -> dict:
        """One selection; *stencil* is a name or an offsets document."""
        return self._request("/v1/select", {"stencil": stencil, "gpu": gpu})

    def select_batch(self, requests: "list[dict]") -> "list[dict]":
        return self._request("/v1/select", {"requests": requests})["results"]

    def predict(self, stencil, oc: str, gpu: str,
                setting: "dict | None" = None) -> float:
        doc = {"stencil": stencil, "oc": oc, "gpu": gpu}
        if setting:
            doc["setting"] = setting
        return float(self._request("/v1/predict", doc)["time_ms"])

    def predict_batch(self, requests: "list[dict]") -> "list[float]":
        out = self._request("/v1/predict", {"requests": requests})["results"]
        return [float(r["time_ms"]) for r in out]
